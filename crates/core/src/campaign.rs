//! Rolling update campaigns: drain-aware, canaried, checkpoint-resumable
//! fleet updates.
//!
//! A campaign walks a live fleet through a package update in *waves*.
//! Each wave's cohort is **drained** first — the scheduler stops placing
//! work on the cohort, running jobs get a grace window to finish, and
//! leftovers are requeued losslessly — then updated in parallel, probed
//! for **version-skew** solvability against every database state still
//! live in the fleet, and brought back online. Wave 0 is the **canary**:
//! if its health check fails (failed node updates, unsolvable skew, or a
//! raised canary fault), the campaign halts or rolls the canary back
//! instead of marching on.
//!
//! Progress persists in a [`CampaignCheckpoint`]. A `campaign.drain`
//! fault aborts the campaign *between* waves — before any wave work or
//! simulator advancement — so a resumed run replays the remaining waves
//! byte-identically: resumed trace events are the exact suffix the
//! uninterrupted run would have produced.
//!
//! Determinism: every per-node update uses its own [`xcbc_fault::FaultInjector`]
//! (fault decisions depend only on the `(point, key, hit)` triple), and
//! worker results merge in node order — so the campaign trace is
//! byte-identical at any `threads` setting.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use xcbc_fault::{CampaignCheckpoint, FaultPlan, InjectionPoint};
use xcbc_rpm::{RpmDb, TransactionError};
use xcbc_sched::{JobRequest, ResourceManager};
use xcbc_sim::TraceEvent;
use xcbc_yum::{solve_across_skew, Fnv64, Repository, SolveCache, SolveRequest, YumConfig};

/// Trace source for every event a campaign emits.
pub const CAMPAIGN_TRACE_SOURCE: &str = "campaign";

/// What the fleet is updating *to*: the repositories, engine config, and
/// the typed solve request every node must satisfy.
#[derive(Debug, Clone)]
pub struct CampaignTarget {
    pub repos: Vec<Repository>,
    pub config: YumConfig,
    pub request: SolveRequest,
}

/// Keep the long-running spine of an open-loop `(arrival_s, request)`
/// stream — e.g. from `xcbc_sched::WorkloadSpec::stream` — as a
/// campaign's background workload: only jobs running at least
/// `min_runtime_s` survive, and each keeps walltime headroom of at
/// least 4× its runtime so a drain requeue never pushes it past the
/// limit mid-campaign.
pub fn background_workload(
    jobs: impl IntoIterator<Item = (f64, JobRequest)>,
    min_runtime_s: f64,
) -> Vec<JobRequest> {
    jobs.into_iter()
        .filter(|(_, req)| req.runtime_s >= min_runtime_s)
        .map(|(_, mut req)| {
            req.walltime_s = req.walltime_s.max(4.0 * req.runtime_s);
            req
        })
        .collect()
}

/// What to do when the canary wave's health check fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CanaryAction {
    /// Stop the campaign; canary nodes keep whatever state they reached
    /// (failed ones stay offline) so an operator can inspect them.
    #[default]
    Halt,
    /// Restore every canary node's pre-update database and bring the
    /// cohort back online on the old package set.
    Rollback,
}

/// Test-only behavioral mutations, used by the soak harness to prove its
/// campaign invariants can actually fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignMutation {
    /// Cancel (lose) jobs evicted by a drain instead of requeueing them.
    DropJobOnDrain,
    /// Skip the post-wave version-skew solve probe.
    SkipSkewSolve,
}

/// Campaign shape and safety knobs.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Canary cohort size (wave 0). Clamped to the fleet size.
    pub canary: usize,
    /// Total wave count including the canary wave.
    pub waves: usize,
    /// Worker threads for per-node updates within a wave.
    pub threads: usize,
    /// Seconds a drained cohort gets to finish running jobs before
    /// leftovers are requeued.
    pub drain_grace_s: f64,
    /// Canary failure policy.
    pub on_canary_failure: CanaryAction,
    /// Attempts per node before a scriptlet-failing update is abandoned.
    pub retry_budget: u32,
    /// Soak-harness mutation hook; `None` in production.
    pub mutation: Option<CampaignMutation>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            canary: 1,
            waves: 3,
            threads: 1,
            drain_grace_s: 120.0,
            on_canary_failure: CanaryAction::Halt,
            retry_budget: 3,
            mutation: None,
        }
    }
}

/// How a finished (not aborted) campaign ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignOutcome {
    /// Every wave ran; nodes that exhausted their retry budget or failed
    /// to solve are reported in the checkpoint, not panicked over.
    Completed,
    /// The canary health check failed and policy was [`CanaryAction::Halt`].
    HaltedAtCanary { reason: String },
    /// The canary health check failed and the cohort was restored to its
    /// pre-update package set.
    RolledBack { reason: String },
}

/// One wave's outcome.
#[derive(Debug, Clone)]
pub struct WaveReport {
    pub index: usize,
    pub canary: bool,
    /// Cohort node names, sorted.
    pub nodes: Vec<String>,
    /// Jobs requeued off the cohort after the grace window.
    pub requeued_jobs: usize,
    pub updated: Vec<String>,
    /// `(node, reason)` for nodes the wave could not update.
    pub failed: Vec<(String, String)>,
    /// Rendered skew-probe summary, when the probe ran.
    pub skew: Option<String>,
    pub start_s: f64,
    pub end_s: f64,
}

/// Full result of a campaign run (or resumed run).
#[derive(Debug, Clone)]
pub struct CampaignReport {
    pub waves: Vec<WaveReport>,
    pub outcome: CampaignOutcome,
    /// Final checkpoint — persist it to resume a later campaign, audit
    /// which nodes updated, or read per-node failure reasons.
    pub checkpoint: CampaignCheckpoint,
    /// Campaign-source trace events emitted by *this* run (a resumed run
    /// carries only its own suffix).
    pub trace: Vec<TraceEvent>,
    /// Wave index this run started from (`> 0` after a resume).
    pub resumed_from_wave: usize,
}

impl CampaignReport {
    /// The campaign trace as byte-stable JSONL.
    pub fn trace_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.trace {
            out.push_str(&ev.to_jsonl());
            out.push('\n');
        }
        out
    }

    /// Human summary, one wave per line plus the verdict.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for w in &self.waves {
            out.push_str(&format!(
                "wave {}{}: {} nodes, {} updated, {} failed, {} requeued{}\n",
                w.index,
                if w.canary { " (canary)" } else { "" },
                w.nodes.len(),
                w.updated.len(),
                w.failed.len(),
                w.requeued_jobs,
                match &w.skew {
                    Some(s) => format!(" | {s}"),
                    None => String::new(),
                },
            ));
        }
        match &self.outcome {
            CampaignOutcome::Completed => {
                out.push_str(&format!(
                    "campaign complete: {} updated, {} failed\n",
                    self.checkpoint.updated_nodes().count(),
                    self.checkpoint.failed_count(),
                ));
                for (node, reason) in self.checkpoint.failed() {
                    out.push_str(&format!("  not converged: {node}: {reason}\n"));
                }
            }
            CampaignOutcome::HaltedAtCanary { reason } => {
                out.push_str(&format!("campaign HALTED at canary: {reason}\n"));
            }
            CampaignOutcome::RolledBack { reason } => {
                out.push_str(&format!("canary ROLLED BACK: {reason}\n"));
            }
        }
        out
    }
}

/// Why a campaign run could not produce a [`CampaignReport`].
#[derive(Debug)]
pub enum CampaignError {
    /// A `campaign.drain` fault fired between waves. The checkpoint and
    /// the trace-so-far are handed back so the caller can persist them
    /// and resume; no wave-`wave` work happened and the simulator did
    /// not advance, so a resume replays the remainder exactly.
    Aborted {
        wave: usize,
        checkpoint: CampaignCheckpoint,
        trace: Vec<TraceEvent>,
    },
    /// The resume checkpoint was recorded for a different campaign
    /// (different target, fleet, or wave shape).
    CheckpointMismatch { expected: String, found: String },
    /// No nodes to update.
    EmptyFleet,
    /// Nonsensical shape (zero waves, zero canary...).
    BadConfig(String),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Aborted { wave, .. } => {
                write!(f, "campaign aborted before wave {wave} (power/drain fault)")
            }
            CampaignError::CheckpointMismatch { expected, found } => write!(
                f,
                "checkpoint belongs to a different campaign (expected digest {expected}, found {found})"
            ),
            CampaignError::EmptyFleet => write!(f, "campaign has no nodes"),
            CampaignError::BadConfig(msg) => write!(f, "bad campaign config: {msg}"),
        }
    }
}

impl std::error::Error for CampaignError {}

/// Split sorted `nodes` into the campaign's wave cohorts: the first
/// `canary` nodes form wave 0, the remainder spreads evenly over the
/// other `waves - 1` waves (earlier waves take the remainder). Trailing
/// empty waves are dropped.
pub fn plan_waves(nodes: &[String], canary: usize, waves: usize) -> Vec<Vec<String>> {
    let canary = canary.clamp(1, nodes.len().max(1)).min(nodes.len());
    let mut plan = vec![nodes[..canary].to_vec()];
    let rest = &nodes[canary..];
    if rest.is_empty() {
        return plan;
    }
    let chunks = waves.saturating_sub(1).max(1);
    let base = rest.len() / chunks;
    let extra = rest.len() % chunks;
    let mut at = 0;
    for i in 0..chunks {
        let take = base + usize::from(i < extra);
        if take == 0 {
            break;
        }
        plan.push(rest[at..at + take].to_vec());
        at += take;
    }
    plan
}

/// Digest binding a checkpoint to one campaign: target request, fleet
/// membership, and wave shape.
pub fn campaign_digest(
    target: &CampaignTarget,
    nodes: &[String],
    config: &CampaignConfig,
) -> String {
    let mut h = Fnv64::new();
    h.write_u64(target.request.digest());
    for n in nodes {
        h.write_str(n);
    }
    h.write_u64(config.canary as u64)
        .write_u64(config.waves as u64);
    format!("{:016x}", h.finish())
}

/// Per-node update outcome computed off-thread, merged in node order.
#[derive(Debug)]
enum NodeUpdate {
    Updated {
        db: RpmDb,
        dur_s: f64,
        tx_ops: usize,
    },
    Failed {
        reason: String,
        dur_s: f64,
    },
}

/// Attempt one node's update with its own fault oracle. Pure function of
/// `(target, db, faults, retry_budget, cache)` — safe to run on any
/// worker thread without affecting the campaign trace.
fn update_node(
    target: &CampaignTarget,
    db: &RpmDb,
    faults: &FaultPlan,
    retry_budget: u32,
    cache: &Arc<SolveCache>,
) -> NodeUpdate {
    let solution = match cache.get_or_solve(&target.repos, &target.config, db, &target.request) {
        Ok(s) => s,
        Err(e) => {
            return NodeUpdate::Failed {
                reason: format!("solve: {e}"),
                dur_s: 30.0,
            }
        }
    };
    if solution.is_empty() {
        // already converged — a no-op "update" still costs a reboot-ish
        // window
        return NodeUpdate::Updated {
            db: db.clone(),
            dur_s: 30.0,
            tx_ops: 0,
        };
    }
    let mut injector = faults.injector();
    let mut new_db = db.clone();
    let ops = solution.len();
    for attempt in 0..retry_budget.max(1) {
        let tx = (*solution).clone().into_transaction();
        match tx.run_injected(&mut new_db, &mut injector) {
            Ok(_) => {
                return NodeUpdate::Updated {
                    db: new_db,
                    dur_s: 30.0 + 5.0 * ops as f64 + 10.0 * attempt as f64,
                    tx_ops: ops,
                }
            }
            Err(TransactionError::ScriptletFailed { .. }) => continue,
            Err(e) => {
                return NodeUpdate::Failed {
                    reason: format!("transaction: {e}"),
                    dur_s: 30.0,
                }
            }
        }
    }
    NodeUpdate::Failed {
        reason: format!(
            "rpm.scriptlet: retry budget exhausted after {} attempts",
            retry_budget.max(1)
        ),
        dur_s: 30.0 + 10.0 * retry_budget.max(1) as f64,
    }
}

/// Run (or resume) a rolling update campaign against a live fleet.
///
/// * `dbs` — per-node package databases, mutated in place as nodes
///   update. Node *i* of `rm`'s simulator is the *i*-th key in sorted
///   order; `rm` must have at least `dbs.len()` nodes.
/// * `rm` — the live scheduler frontend (Torque, SLURM, or SGE façade);
///   its simulator keeps running jobs through the campaign.
/// * `faults` — fault plan; `campaign.drain` aborts between waves,
///   `campaign.canary` fails the canary health check, `rpm.scriptlet`
///   fails node updates (per-node oracles).
/// * `resume_from` — a checkpoint from a previous [`CampaignError::Aborted`];
///   completed waves are skipped and the drain oracle is not re-consulted
///   for the first resumed wave (the fault that aborted us already fired).
#[allow(clippy::too_many_arguments)]
pub fn run_campaign(
    target: &CampaignTarget,
    dbs: &mut BTreeMap<String, RpmDb>,
    rm: &mut dyn ResourceManager,
    faults: &FaultPlan,
    cache: &Arc<SolveCache>,
    config: &CampaignConfig,
    resume_from: Option<&CampaignCheckpoint>,
) -> Result<CampaignReport, CampaignError> {
    if dbs.is_empty() {
        return Err(CampaignError::EmptyFleet);
    }
    if config.waves == 0 {
        return Err(CampaignError::BadConfig("waves must be >= 1".into()));
    }
    let nodes: Vec<String> = dbs.keys().cloned().collect();
    let digest = campaign_digest(target, &nodes, config);
    let mut checkpoint = match resume_from {
        Some(cp) => {
            if cp.digest() != digest {
                return Err(CampaignError::CheckpointMismatch {
                    expected: digest,
                    found: cp.digest().to_string(),
                });
            }
            cp.clone()
        }
        None => CampaignCheckpoint::new(&digest),
    };
    let start_wave = checkpoint.waves_completed();
    let plan = plan_waves(&nodes, config.canary, config.waves);
    let index_of: BTreeMap<&str, usize> = nodes
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();

    let mut trace: Vec<TraceEvent> = Vec::new();
    let mut waves_out: Vec<WaveReport> = Vec::new();
    let mut main_injector = faults.injector();
    let mut outcome = CampaignOutcome::Completed;

    for (k, cohort) in plan.iter().enumerate().skip(start_wave) {
        // Between-waves drain/power oracle. Consulted before ANY wave-k
        // work or simulator advancement so the resumed run's trace is the
        // exact suffix of the uninterrupted one. Skipped for the first
        // resumed wave: the fault that aborted us already "happened".
        let resuming_this_wave = resume_from.is_some() && k == start_wave;
        if !resuming_this_wave
            && main_injector
                .should_fault(InjectionPoint::CampaignDrain, &format!("wave-{k}"))
                .is_some()
        {
            return Err(CampaignError::Aborted {
                wave: k,
                checkpoint,
                trace,
            });
        }

        let wave_start = rm.sim().now();
        let canary_wave = k == 0;

        // Drain: stop placements on the cohort, give running jobs the
        // grace window, then requeue leftovers losslessly.
        for node in cohort {
            trace.push(TraceEvent::mark(
                wave_start,
                CAMPAIGN_TRACE_SOURCE,
                format!("drain {node}"),
            ));
            rm.offline_node(index_of[node.as_str()]);
        }
        rm.advance_to(wave_start + config.drain_grace_s);
        let t_drained = rm.sim().now();
        let mut requeued_jobs = 0usize;
        for node in cohort {
            let idx = index_of[node.as_str()];
            if !rm.node_idle(idx) {
                let victims = rm.requeue_node(idx);
                requeued_jobs += victims.len();
                if config.mutation == Some(CampaignMutation::DropJobOnDrain) {
                    for id in victims {
                        rm.sim_mut().cancel(id);
                    }
                }
            }
        }

        // Snapshot for canary rollback before any database changes.
        let snapshots: Option<BTreeMap<String, RpmDb>> =
            if canary_wave && config.on_canary_failure == CanaryAction::Rollback {
                Some(cohort.iter().map(|n| (n.clone(), dbs[n].clone())).collect())
            } else {
                None
            };

        for node in cohort {
            trace.push(TraceEvent::mark(
                t_drained,
                CAMPAIGN_TRACE_SOURCE,
                format!("update {node}"),
            ));
        }

        // Parallel per-node updates: worker pool with order-independent
        // work (per-node injectors) merged back in cohort order.
        let outcomes: Vec<NodeUpdate> = {
            let slots: Vec<Mutex<Option<NodeUpdate>>> =
                cohort.iter().map(|_| Mutex::new(None)).collect();
            let next = AtomicUsize::new(0);
            let workers = config.threads.clamp(1, cohort.len().max(1));
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= cohort.len() {
                            break;
                        }
                        let result = update_node(
                            target,
                            &dbs[&cohort[i]],
                            faults,
                            config.retry_budget,
                            cache,
                        );
                        *slots[i].lock().unwrap() = Some(result);
                    });
                }
            });
            slots
                .into_iter()
                .map(|s| s.into_inner().unwrap().expect("worker filled every slot"))
                .collect()
        };

        let mut wave_dur = 0.0f64;
        let mut updated: Vec<String> = Vec::new();
        let mut failed: Vec<(String, String)> = Vec::new();
        for (node, result) in cohort.iter().zip(outcomes) {
            match result {
                NodeUpdate::Updated { db, dur_s, tx_ops } => {
                    trace.push(
                        TraceEvent::span(
                            t_drained,
                            CAMPAIGN_TRACE_SOURCE,
                            format!("install {node}"),
                            dur_s,
                        )
                        .with_field("ops", tx_ops),
                    );
                    wave_dur = wave_dur.max(dur_s);
                    dbs.insert(node.clone(), db);
                    updated.push(node.clone());
                }
                NodeUpdate::Failed { reason, dur_s } => {
                    trace.push(
                        TraceEvent::span(
                            t_drained,
                            CAMPAIGN_TRACE_SOURCE,
                            format!("install {node}"),
                            dur_s,
                        )
                        .with_field("error", reason.as_str()),
                    );
                    wave_dur = wave_dur.max(dur_s);
                    failed.push((node.clone(), reason));
                }
            }
        }
        rm.advance_to(t_drained + wave_dur);
        let wave_end = rm.sim().now();

        // Version-skew probe: the target must still solve against every
        // distinct database state now live in the fleet.
        let skew = if config.mutation == Some(CampaignMutation::SkipSkewSolve) {
            None
        } else {
            let report =
                solve_across_skew(cache, &target.repos, &target.config, dbs, &target.request);
            trace.push(
                TraceEvent::mark(wave_end, CAMPAIGN_TRACE_SOURCE, "skew probe")
                    .with_field("states", report.group_count())
                    .with_field("nodes", report.node_count())
                    .with_field("unsolvable", report.unsolvable_nodes().len()),
            );
            Some(report)
        };
        let skew_ok = skew.as_ref().map(|r| r.is_solvable()).unwrap_or(true);

        // Canary verdict, before anything is committed to the checkpoint.
        let canary_failure: Option<String> = if canary_wave {
            if let Some(kind) = main_injector.should_fault(InjectionPoint::CampaignCanary, "canary")
            {
                Some(format!("canary fault injected ({})", kind.as_str()))
            } else if !failed.is_empty() {
                Some(format!(
                    "{} of {} canary nodes failed to update ({})",
                    failed.len(),
                    cohort.len(),
                    failed[0].1
                ))
            } else if !skew_ok {
                Some("target no longer solves across the skew window".to_string())
            } else {
                None
            }
        } else {
            None
        };

        let mut wave_report = WaveReport {
            index: k,
            canary: canary_wave,
            nodes: cohort.clone(),
            requeued_jobs,
            updated: updated.clone(),
            failed: failed.clone(),
            skew: skew.as_ref().map(|r| r.render()),
            start_s: wave_start,
            end_s: wave_end,
        };

        if let Some(reason) = canary_failure {
            match config.on_canary_failure {
                CanaryAction::Halt => {
                    // Failed nodes stay offline for inspection; record
                    // them so the report names every unconverged node.
                    for (node, why) in &failed {
                        trace.push(TraceEvent::mark(
                            wave_end,
                            CAMPAIGN_TRACE_SOURCE,
                            format!("fail {node}"),
                        ));
                        checkpoint.record_failed(node, why);
                    }
                    trace.push(TraceEvent::mark(
                        wave_end,
                        CAMPAIGN_TRACE_SOURCE,
                        "canary halt",
                    ));
                    outcome = CampaignOutcome::HaltedAtCanary { reason };
                    waves_out.push(wave_report);
                    break;
                }
                CanaryAction::Rollback => {
                    let snapshots = snapshots.expect("rollback snapshots taken for canary wave");
                    for node in cohort {
                        trace.push(TraceEvent::mark(
                            wave_end,
                            CAMPAIGN_TRACE_SOURCE,
                            format!("rollback {node}"),
                        ));
                        dbs.insert(node.clone(), snapshots[node].clone());
                        trace.push(TraceEvent::mark(
                            wave_end,
                            CAMPAIGN_TRACE_SOURCE,
                            format!("online {node}"),
                        ));
                        rm.online_node(index_of[node.as_str()]);
                    }
                    outcome = CampaignOutcome::RolledBack { reason };
                    wave_report.updated.clear();
                    waves_out.push(wave_report);
                    break;
                }
            }
        }

        // Commit the wave: successes come back online, failures stay
        // offline and are named in the checkpoint with their reason.
        for node in &updated {
            trace.push(TraceEvent::mark(
                wave_end,
                CAMPAIGN_TRACE_SOURCE,
                format!("online {node}"),
            ));
            rm.online_node(index_of[node.as_str()]);
            checkpoint.record_updated(node);
        }
        for (node, why) in &failed {
            trace.push(TraceEvent::mark(
                wave_end,
                CAMPAIGN_TRACE_SOURCE,
                format!("fail {node}"),
            ));
            checkpoint.record_failed(node, why);
        }
        checkpoint.mark_wave_completed(k);
        waves_out.push(wave_report);
    }

    Ok(CampaignReport {
        waves: waves_out,
        outcome,
        checkpoint,
        trace,
        resumed_from_wave: start_wave,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xcbc_rpm::PackageBuilder;
    use xcbc_sched::{JobRequest, TorqueServer};

    fn target() -> CampaignTarget {
        let mut repo = Repository::new("xsede", "XSEDE repo");
        repo.add_package(
            PackageBuilder::new("gromacs", "4.6.5", "2.el6")
                .requires_simple("openmpi")
                .build(),
        );
        repo.add_package(PackageBuilder::new("openmpi", "1.6.5", "1.el6").build());
        CampaignTarget {
            repos: vec![repo],
            config: YumConfig::default(),
            request: SolveRequest::install(["gromacs"]),
        }
    }

    fn fleet(n: usize) -> BTreeMap<String, RpmDb> {
        (0..n)
            .map(|i| {
                let mut db = RpmDb::new();
                db.install(PackageBuilder::new("base", "1.0", "1.el6").build());
                (format!("compute-{i:02}"), db)
            })
            .collect()
    }

    fn run_simple(
        faults: &FaultPlan,
        config: &CampaignConfig,
        n: usize,
    ) -> (
        Result<CampaignReport, CampaignError>,
        BTreeMap<String, RpmDb>,
    ) {
        let target = target();
        let mut dbs = fleet(n);
        let mut rm = TorqueServer::with_maui("head", n, 2);
        let cache = Arc::new(SolveCache::new());
        let r = run_campaign(&target, &mut dbs, &mut rm, faults, &cache, config, None);
        (r, dbs)
    }

    #[test]
    fn happy_path_updates_every_node() {
        let (r, dbs) = run_simple(&FaultPlan::new(1), &CampaignConfig::default(), 5);
        let report = r.unwrap();
        assert_eq!(report.outcome, CampaignOutcome::Completed);
        assert_eq!(report.checkpoint.updated_nodes().count(), 5);
        assert_eq!(report.checkpoint.failed_count(), 0);
        assert_eq!(report.waves.len(), 3, "canary + 2 rollout waves");
        assert!(report.waves[0].canary && report.waves[0].nodes.len() == 1);
        for db in dbs.values() {
            assert!(db.is_installed("gromacs") && db.is_installed("openmpi"));
        }
        // skew probe ran after every wave and stayed solvable
        assert!(report.waves.iter().all(|w| w
            .skew
            .as_deref()
            .is_some_and(|s| s.contains("all solvable"))));
    }

    #[test]
    fn generated_stream_supplies_background_workload() {
        let stream = xcbc_sched::WorkloadSpec::campus_research().generate(5, 2, 2, 30);
        let workload = background_workload(stream, 1500.0);
        assert!(!workload.is_empty());
        assert!(workload
            .iter()
            .all(|j| j.runtime_s >= 1500.0 && j.walltime_s >= 4.0 * j.runtime_s));

        let target = target();
        let mut dbs = fleet(3);
        let mut rm = TorqueServer::with_maui("head", 3, 2);
        for req in &workload {
            rm.sim_mut().submit(req.clone());
        }
        rm.advance_to(5.0);
        let cache = Arc::new(SolveCache::new());
        let report = run_campaign(
            &target,
            &mut dbs,
            &mut rm,
            &FaultPlan::new(4),
            &cache,
            &CampaignConfig::default(),
            None,
        )
        .unwrap();
        assert_eq!(report.outcome, CampaignOutcome::Completed);
        // the campaign drained around the generated jobs without losing any
        rm.drain();
        assert_eq!(rm.metrics().jobs_finished, workload.len());
    }

    #[test]
    fn drain_waits_then_requeues() {
        let target = target();
        let mut dbs = fleet(2);
        let mut rm = TorqueServer::with_maui("head", 2, 2);
        // long job on node 0 (the canary) outlives the grace window
        rm.sim_mut()
            .submit(JobRequest::new("stubborn", 1, 2, 10_000.0, 9_000.0));
        rm.advance_to(1.0);
        let cache = Arc::new(SolveCache::new());
        let report = run_campaign(
            &target,
            &mut dbs,
            &mut rm,
            &FaultPlan::new(2),
            &cache,
            &CampaignConfig {
                drain_grace_s: 50.0,
                ..CampaignConfig::default()
            },
            None,
        )
        .unwrap();
        assert_eq!(report.waves[0].requeued_jobs, 1);
        // the job was requeued, not lost: it eventually completes
        rm.drain();
        assert_eq!(rm.metrics().jobs_finished, 1);
    }

    #[test]
    fn canary_fault_halts_campaign() {
        let faults = FaultPlan::parse("seed=7; campaign.canary").unwrap();
        let (r, dbs) = run_simple(&faults, &CampaignConfig::default(), 4);
        let report = r.unwrap();
        assert!(matches!(
            report.outcome,
            CampaignOutcome::HaltedAtCanary { .. }
        ));
        assert_eq!(report.waves.len(), 1, "only the canary wave ran");
        // later cohorts untouched
        assert!(!dbs["compute-03"].is_installed("gromacs"));
    }

    #[test]
    fn canary_scriptlet_failure_rolls_back() {
        // every scriptlet attempt faults → canary node exhausts its budget
        let faults = FaultPlan::parse("seed=3; rpm.scriptlet on=always").unwrap();
        let config = CampaignConfig {
            on_canary_failure: CanaryAction::Rollback,
            ..CampaignConfig::default()
        };
        let target = target();
        let mut dbs = fleet(3);
        let before = dbs.clone();
        let mut rm = TorqueServer::with_maui("head", 3, 2);
        let cache = Arc::new(SolveCache::new());
        let report =
            run_campaign(&target, &mut dbs, &mut rm, &faults, &cache, &config, None).unwrap();
        assert!(matches!(report.outcome, CampaignOutcome::RolledBack { .. }));
        // canary restored byte-for-byte; nothing recorded as updated
        assert_eq!(
            xcbc_yum::db_fingerprint(&dbs["compute-00"]),
            xcbc_yum::db_fingerprint(&before["compute-00"])
        );
        assert!(report.checkpoint.updated_nodes().count() == 0);
        // canary node is back in service
        assert!(!rm.sim().is_offline(0));
    }

    #[test]
    fn retry_budget_exhaustion_degrades_to_partial_rollout() {
        // scriptlets fail only for the second node's first 10 attempts —
        // campaign completes with that node reported, not a panic
        let faults = FaultPlan::parse("seed=9; rpm.scriptlet key=openmpi on=first:10").unwrap();
        let config = CampaignConfig {
            canary: 1,
            waves: 2,
            retry_budget: 2,
            ..CampaignConfig::default()
        };
        // canary will also fail (per-node injectors both see first:10) —
        // use Halt? No: prove partial rollout on a non-canary wave via a
        // plan keyed to a package only some nodes need.
        let mut repo = Repository::new("xsede", "XSEDE repo");
        repo.add_package(PackageBuilder::new("tool", "2.0", "1.el6").build());
        let target = CampaignTarget {
            repos: vec![repo],
            config: YumConfig::default(),
            request: SolveRequest::install(["tool"]),
        };
        let mut dbs = fleet(4);
        // canary node already has the tool → empty solution, no scriptlets
        dbs.get_mut("compute-00")
            .unwrap()
            .install(PackageBuilder::new("tool", "2.0", "1.el6").build());
        let faults = {
            let _ = faults;
            FaultPlan::parse("seed=9; rpm.scriptlet key=tool on=always").unwrap()
        };
        let mut rm = TorqueServer::with_maui("head", 4, 2);
        let cache = Arc::new(SolveCache::new());
        let report =
            run_campaign(&target, &mut dbs, &mut rm, &faults, &cache, &config, None).unwrap();
        assert_eq!(report.outcome, CampaignOutcome::Completed);
        assert_eq!(report.checkpoint.updated_nodes().count(), 1, "canary only");
        assert_eq!(report.checkpoint.failed_count(), 3);
        for (_, reason) in report.checkpoint.failed() {
            assert!(reason.contains("retry budget exhausted"), "{reason}");
        }
        // failed nodes remain offline, named, and unconverged
        assert!(rm.sim().is_offline(1));
    }

    #[test]
    fn empty_fleet_and_zero_waves_are_typed_errors() {
        let target = target();
        let mut rm = TorqueServer::with_maui("head", 1, 2);
        let cache = Arc::new(SolveCache::new());
        let err = run_campaign(
            &target,
            &mut BTreeMap::new(),
            &mut rm,
            &FaultPlan::new(0),
            &cache,
            &CampaignConfig::default(),
            None,
        )
        .unwrap_err();
        assert!(matches!(err, CampaignError::EmptyFleet));
        let err = run_campaign(
            &target,
            &mut fleet(1),
            &mut rm,
            &FaultPlan::new(0),
            &cache,
            &CampaignConfig {
                waves: 0,
                ..CampaignConfig::default()
            },
            None,
        )
        .unwrap_err();
        assert!(matches!(err, CampaignError::BadConfig(_)));
    }

    #[test]
    fn abort_and_resume_matches_uninterrupted_run() {
        let config = CampaignConfig {
            waves: 3,
            ..CampaignConfig::default()
        };
        let target = target();
        let cache = Arc::new(SolveCache::new());

        // Uninterrupted baseline.
        let mut dbs_a = fleet(5);
        let mut rm_a = TorqueServer::with_maui("head", 5, 2);
        let full = run_campaign(
            &target,
            &mut dbs_a,
            &mut rm_a,
            &FaultPlan::new(11),
            &cache,
            &config,
            None,
        )
        .unwrap();

        // Faulted run: power dies before wave 1.
        let faults = FaultPlan::parse("seed=11; campaign.drain key=wave-1").unwrap();
        let mut dbs_b = fleet(5);
        let mut rm_b = TorqueServer::with_maui("head", 5, 2);
        let err = run_campaign(
            &target, &mut dbs_b, &mut rm_b, &faults, &cache, &config, None,
        )
        .unwrap_err();
        let CampaignError::Aborted {
            wave,
            checkpoint,
            trace,
        } = err
        else {
            panic!("expected abort");
        };
        assert_eq!(wave, 1);

        // Persist + reload the checkpoint, then resume against the same
        // live fleet state.
        let reloaded = CampaignCheckpoint::parse(&checkpoint.to_text()).unwrap();
        let resumed = run_campaign(
            &target,
            &mut dbs_b,
            &mut rm_b,
            &faults,
            &cache,
            &config,
            Some(&reloaded),
        )
        .unwrap();
        assert_eq!(resumed.resumed_from_wave, 1);
        assert_eq!(resumed.outcome, CampaignOutcome::Completed);

        // Same final databases...
        for (node, db) in &dbs_a {
            assert_eq!(
                xcbc_yum::db_fingerprint(db),
                xcbc_yum::db_fingerprint(&dbs_b[node]),
                "{node} diverged"
            );
        }
        // ...and pre-abort trace + resumed trace is byte-identical to the
        // uninterrupted trace.
        let mut stitched = String::new();
        for ev in trace.iter().chain(resumed.trace.iter()) {
            stitched.push_str(&ev.to_jsonl());
            stitched.push('\n');
        }
        assert_eq!(stitched, full.trace_jsonl());
    }

    #[test]
    fn resume_rejects_foreign_checkpoint() {
        let target = target();
        let mut dbs = fleet(2);
        let mut rm = TorqueServer::with_maui("head", 2, 2);
        let cache = Arc::new(SolveCache::new());
        let foreign = CampaignCheckpoint::new("deadbeefdeadbeef");
        let err = run_campaign(
            &target,
            &mut dbs,
            &mut rm,
            &FaultPlan::new(0),
            &cache,
            &CampaignConfig::default(),
            Some(&foreign),
        )
        .unwrap_err();
        assert!(matches!(err, CampaignError::CheckpointMismatch { .. }));
    }

    #[test]
    fn trace_is_identical_at_any_thread_count() {
        let faults = FaultPlan::parse("seed=5; rpm.scriptlet key=openmpi on=nth:1").unwrap();
        let mut traces = Vec::new();
        for threads in [1usize, 2, 7] {
            let config = CampaignConfig {
                threads,
                waves: 3,
                ..CampaignConfig::default()
            };
            let (r, _) = run_simple(&faults, &config, 9);
            traces.push(r.unwrap().trace_jsonl());
        }
        assert_eq!(traces[0], traces[1]);
        assert_eq!(traces[0], traces[2]);
    }

    #[test]
    fn drop_job_mutation_loses_the_job() {
        let target = target();
        let mut dbs = fleet(2);
        let mut rm = TorqueServer::with_maui("head", 2, 2);
        rm.sim_mut()
            .submit(JobRequest::new("victim", 2, 2, 10_000.0, 9_000.0));
        rm.advance_to(1.0);
        let cache = Arc::new(SolveCache::new());
        let config = CampaignConfig {
            drain_grace_s: 10.0,
            mutation: Some(CampaignMutation::DropJobOnDrain),
            ..CampaignConfig::default()
        };
        run_campaign(
            &target,
            &mut dbs,
            &mut rm,
            &FaultPlan::new(4),
            &cache,
            &config,
            None,
        )
        .unwrap();
        rm.drain();
        use xcbc_sched::JobState;
        let states: Vec<_> = rm.sim().jobs().map(|j| j.state.clone()).collect();
        assert!(
            states.iter().any(|s| matches!(s, JobState::Cancelled)),
            "mutation lost the job: {states:?}"
        );
        assert!(
            !states
                .iter()
                .any(|s| matches!(s, JobState::Completed { .. })),
            "job must not complete after the drop mutation: {states:?}"
        );
    }

    #[test]
    fn wave_planning_shapes() {
        let nodes: Vec<String> = (0..7).map(|i| format!("n{i}")).collect();
        let plan = plan_waves(&nodes, 1, 3);
        assert_eq!(plan.iter().map(Vec::len).collect::<Vec<_>>(), vec![1, 3, 3]);
        let plan = plan_waves(&nodes, 2, 2);
        assert_eq!(plan.iter().map(Vec::len).collect::<Vec<_>>(), vec![2, 5]);
        // more waves than nodes: trailing empties dropped
        let two: Vec<String> = (0..2).map(|i| format!("n{i}")).collect();
        let plan = plan_waves(&two, 1, 6);
        assert_eq!(plan.iter().map(Vec::len).collect::<Vec<_>>(), vec![1, 1]);
    }
}
