//! XNIT — the XSEDE National Integration Toolkit Yum repository.
//!
//! §1: "XNIT includes all of the software included in the standard XCBC
//! build, and more ... XNIT and the Yum repository make it easy for
//! campus cluster administrators to do one-time installations of any
//! particular software capability they want."
//!
//! §3 gives the two setup methods this module implements:
//! 1. "download and install the XSEDE repo RPM from the XSEDE Yum
//!    repository", or
//! 2. "install the yum-plugin-priorities package, then create the file
//!    /etc/yum.repos.d/xsede.repo with the lines specified in the ...
//!    README".

use crate::catalog::xcbc_catalog;
use xcbc_rpm::{PackageBuilder, PackageGroup, RpmDb, TransactionSet};
use xcbc_yum::{parse_repo_file, Repository, Yum, XSEDE_REPO_FILE};

/// Extra software XNIT carries beyond the basic XCBC build ("software
/// not included in the basic XCBC build – this will be increased over
/// time in response to community requests").
pub fn xnit_extras() -> Vec<xcbc_rpm::Package> {
    vec![
        PackageBuilder::new("paraview", "4.1.0", "1.el6")
            .group(PackageGroup::ScientificApplications)
            .summary("Parallel visualization (community request)")
            .size_mb(180)
            .file("/usr/bin/paraview")
            .build(),
        PackageBuilder::new("visit", "2.7.2", "1.el6")
            .group(PackageGroup::ScientificApplications)
            .summary("VisIt visualization (community request)")
            .size_mb(160)
            .file("/usr/bin/visit")
            .build(),
        PackageBuilder::new("wrf", "3.5.1", "1.el6")
            .group(PackageGroup::ScientificApplications)
            .summary("Weather Research and Forecasting model (community request)")
            .requires_simple("netcdf")
            .requires_simple("openmpi")
            .size_mb(140)
            .file("/usr/bin/wrf.exe")
            .build(),
        PackageBuilder::new("amber-tools", "14", "1.el6")
            .group(PackageGroup::ScientificApplications)
            .summary("AmberTools MD utilities (community request)")
            .size_mb(120)
            .file("/usr/bin/tleap")
            .build(),
    ]
}

/// The `xsede-release` repo RPM (setup method 1): installing it drops the
/// `.repo` file and pulls in `yum-plugin-priorities`.
pub fn xsede_release_rpm() -> xcbc_rpm::Package {
    PackageBuilder::new("xsede-release", "1", "3.el6")
        .group(PackageGroup::Basics)
        .summary("XSEDE repository configuration")
        .requires_simple("yum-plugin-priorities")
        .file("/etc/yum.repos.d/xsede.repo")
        .build()
}

/// The priorities plugin package itself.
pub fn yum_plugin_priorities() -> xcbc_rpm::Package {
    PackageBuilder::new("yum-plugin-priorities", "1.1.30", "30.el6")
        .group(PackageGroup::Basics)
        .summary("Yum priorities plugin")
        .file("/usr/lib/yum-plugins/priorities.py")
        .build()
}

/// Build the XNIT repository: the full XCBC catalog plus the extras,
/// plus the repo-RPM bootstrap packages, at the README's priority (50).
pub fn xnit_repository() -> Repository {
    let mut repo = Repository::new("xsede", "XSEDE National Integration Toolkit")
        .with_baseurl("http://cb-repo.iu.xsede.org/xsederepo/")
        .with_priority(50);
    repo.gpgcheck = false; // matches the published repo file
    repo.add_packages(xcbc_catalog());
    repo.add_packages(xnit_extras());
    repo.add_package(xsede_release_rpm());
    repo.add_package(yum_plugin_priorities());
    repo
}

/// How a site enables XNIT.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XnitSetupMethod {
    /// Install the `xsede-release` RPM.
    RepoRpm,
    /// Install `yum-plugin-priorities`, then hand-write
    /// `/etc/yum.repos.d/xsede.repo` per the README.
    ManualRepoFile,
}

impl XnitSetupMethod {
    /// Steps an administrator performs for this method.
    pub fn steps(&self) -> Vec<&'static str> {
        match self {
            XnitSetupMethod::RepoRpm => vec![
                "download xsede-release RPM from cb-repo.iu.xsede.org",
                "rpm -i xsede-release (pulls in yum-plugin-priorities)",
            ],
            XnitSetupMethod::ManualRepoFile => vec![
                "yum install yum-plugin-priorities",
                "create /etc/yum.repos.d/xsede.repo per readme.xsederepo",
            ],
        }
    }
}

/// Enable XNIT on an existing host: performs the chosen setup method
/// against the host's RPM database and registers the repository with its
/// yum. Returns the repository id.
pub fn enable_xnit(
    yum: &mut Yum,
    db: &mut RpmDb,
    method: XnitSetupMethod,
) -> Result<String, xcbc_rpm::TransactionError> {
    match method {
        XnitSetupMethod::RepoRpm => {
            let mut tx = TransactionSet::new();
            if !db.is_installed("yum-plugin-priorities") {
                tx.add_install(yum_plugin_priorities());
            }
            if !db.is_installed("xsede-release") {
                tx.add_install(xsede_release_rpm());
            }
            if !tx.is_empty() {
                tx.run(db)?;
            }
        }
        XnitSetupMethod::ManualRepoFile => {
            let mut tx = TransactionSet::new();
            if !db.is_installed("yum-plugin-priorities") {
                tx.add_install(yum_plugin_priorities());
                tx.run(db)?;
            }
            // the admin writes the file by hand; we validate it parses
            let parsed = parse_repo_file(XSEDE_REPO_FILE).expect("README repo file is valid");
            debug_assert_eq!(parsed[0].id, "xsede");
        }
    }
    yum.add_repository(xnit_repository());
    Ok("xsede".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use xcbc_yum::YumConfig;

    #[test]
    fn repository_superset_of_xcbc() {
        let repo = xnit_repository();
        // "XNIT includes all of the software included in the standard
        // XCBC build, and more"
        let catalog_count = xcbc_catalog().len();
        assert!(repo.package_count() > catalog_count);
        assert!(repo.newest("paraview").is_some(), "extras present");
        assert!(repo.newest("gromacs").is_some(), "XCBC software present");
        assert_eq!(repo.priority, 50);
        assert!(repo.baseurl.contains("cb-repo.iu.xsede.org"));
    }

    #[test]
    fn both_setup_methods_enable_the_repo() {
        for method in [XnitSetupMethod::RepoRpm, XnitSetupMethod::ManualRepoFile] {
            let mut yum = Yum::new(YumConfig::default());
            let mut db = RpmDb::new();
            let id = enable_xnit(&mut yum, &mut db, method).unwrap();
            assert_eq!(id, "xsede");
            assert!(yum.repository("xsede").is_some());
            assert!(db.is_installed("yum-plugin-priorities"), "{method:?}");
        }
    }

    #[test]
    fn repo_rpm_method_installs_release_package() {
        let mut yum = Yum::new(YumConfig::default());
        let mut db = RpmDb::new();
        enable_xnit(&mut yum, &mut db, XnitSetupMethod::RepoRpm).unwrap();
        assert!(db.is_installed("xsede-release"));
        assert!(
            db.whatprovides(&xcbc_rpm::Dependency::parse("/etc/yum.repos.d/xsede.repo"))
                .len()
                == 1
        );
    }

    #[test]
    fn manual_method_does_not_install_release_package() {
        let mut yum = Yum::new(YumConfig::default());
        let mut db = RpmDb::new();
        enable_xnit(&mut yum, &mut db, XnitSetupMethod::ManualRepoFile).unwrap();
        assert!(!db.is_installed("xsede-release"));
    }

    #[test]
    fn one_time_install_of_a_capability() {
        // "one-time installations of any particular software capability
        // they want within the suite of the XNIT set"
        let mut yum = Yum::new(YumConfig::default());
        let mut db = RpmDb::new();
        enable_xnit(&mut yum, &mut db, XnitSetupMethod::RepoRpm).unwrap();
        yum.install(&mut db, &["gromacs"]).unwrap();
        assert!(db.is_installed("gromacs"));
        assert!(
            db.is_installed("openmpi"),
            "dependencies resolved from XNIT"
        );
        assert!(db.verify().is_empty());
    }

    #[test]
    fn setup_steps_documented() {
        assert_eq!(XnitSetupMethod::RepoRpm.steps().len(), 2);
        assert!(XnitSetupMethod::ManualRepoFile.steps()[1].contains("xsede.repo"));
    }

    #[test]
    fn extras_install_against_catalog_deps() {
        let mut yum = Yum::new(YumConfig::default());
        let mut db = RpmDb::new();
        enable_xnit(&mut yum, &mut db, XnitSetupMethod::RepoRpm).unwrap();
        yum.install(&mut db, &["wrf"]).unwrap();
        assert!(
            db.is_installed("netcdf"),
            "wrf pulls netcdf from the catalog"
        );
    }
}
