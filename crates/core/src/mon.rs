//! The `xcbc mon` telemetry pipeline: trace → gmond → gmetad → alerts
//! → exposition.
//!
//! [`monitor_run`] replays a finished [`DayOneRun`]'s merged trace
//! through the event-driven gmond array
//! ([`TelemetrySink`]) and a per-source
//! span-latency [`HistogramSink`], evaluates the stock alert rules
//! sample-by-sample on the shared clock, folds in the fault layer's
//! quarantine verdicts, and registers everything — node gauges,
//! heartbeats, alert totals, latency histograms, solve-cache counters,
//! scheduler workload metrics — into one [`MetricRegistry`].
//!
//! The result renders four ways, all byte-deterministic for a fixed
//! seed: a Ganglia-faithful XML dump, Prometheus text exposition, the
//! raw JSONL timeline (now including the fired `mon.alert` events), and
//! a terminal dashboard with sparkline rings.

use crate::scenario::DayOneRun;
use xcbc_cluster::{
    Alert, AlertRule, ClusterMonitor, MetricKind, RrdConfig, TelemetryConfig, TelemetrySink,
};
use xcbc_sim::{
    analyze, events_to_jsonl, Analysis, FlightRecorder, HistogramSink, MetricRegistry, SimTime,
    TraceEvent, TraceSink, FLIGHT_RECORDER_CAPACITY,
};

/// Everything the telemetry pipeline derived from one run.
#[derive(Debug)]
pub struct MonReport {
    /// Scenario name (doubles as the Ganglia cluster name).
    pub scenario: String,
    /// The fault-plan seed the run replayed under.
    pub seed: u64,
    /// The site gmetad: every node's retained metric series.
    pub monitor: ClusterMonitor,
    /// Alerts fired during the replay, in firing order.
    pub alerts: Vec<Alert>,
    /// Per-source span latency histograms.
    pub histograms: HistogramSink,
    /// The registry every layer exported into.
    pub registry: MetricRegistry,
    /// The merged timeline, now including the fired `mon.alert` events
    /// and the analyser's `trace.analyze` summary marks.
    pub events: Vec<TraceEvent>,
    /// Causal analysis of the run's trace (critical path, lanes).
    pub analysis: Analysis,
    /// The bounded last-N-events recorder, with overflow counters.
    pub flight: FlightRecorder,
    /// The instant the run ended.
    pub end: SimTime,
}

/// Run the full telemetry pipeline over a finished day-one replay,
/// evaluating `rules` (pass [`xcbc_cluster::default_alert_rules`] for
/// the stock set).
pub fn monitor_run(run: &DayOneRun, rules: Vec<AlertRule>) -> MonReport {
    let end = run.end();
    let monitor = ClusterMonitor::with_config(RrdConfig::default());
    let mut telemetry = TelemetrySink::new(
        monitor.clone(),
        TelemetryConfig::new(run.frontend.clone(), run.hosts.clone()),
        rules,
    );
    let mut histograms = HistogramSink::new();
    // batched ingest: one monitor-lock acquisition for the whole
    // stream instead of one per derived sample
    telemetry.accept_batch(&run.events);
    histograms.accept_batch(&run.events);

    // causal analysis of the same trace; its summary marks flow back
    // through the gmond array like any other layer's events
    let analysis = analyze(&run.events);
    let marks = analysis.analysis_marks();
    telemetry.accept_batch(&marks);
    let flight = FlightRecorder::from_events(FLIGHT_RECORDER_CAPACITY, &run.events);

    for (node, _reason) in &run.quarantined {
        telemetry.note_quarantined(end, node);
    }
    telemetry.finish(end);
    let (_, engine) = telemetry.into_parts();

    let mut registry = MetricRegistry::new();
    let base: &[(&str, &str)] = &[("cluster", &run.scenario)];
    monitor.register_into(&mut registry, base);
    engine.register_into(&mut registry, base);
    histograms.register_into(&mut registry);
    run.solve_cache.register_metrics(&mut registry);
    run.sched_metrics.register_into(&mut registry);
    analysis.register_into(&mut registry);
    flight.register_into(&mut registry);

    let mut events = run.events.clone();
    events.extend(engine.events());
    events.extend(marks);
    events.sort_by_key(|e| e.t);

    MonReport {
        scenario: run.scenario.clone(),
        seed: run.seed,
        monitor,
        alerts: engine.into_alerts(),
        histograms,
        registry,
        events,
        analysis,
        flight,
        end,
    }
}

impl MonReport {
    /// Prometheus text exposition of the whole registry.
    pub fn prometheus(&self) -> String {
        self.registry.render_prometheus()
    }

    /// Ganglia-faithful gmetad XML dump.
    pub fn ganglia_xml(&self) -> String {
        self.monitor.ganglia_xml(&self.scenario, self.end)
    }

    /// The merged timeline (alerts included) as deterministic JSONL.
    pub fn jsonl(&self) -> String {
        events_to_jsonl(&self.events)
    }

    /// The terminal dashboard: per-node sparkline rings, the alert log,
    /// and the span-latency table.
    pub fn dashboard(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "== xcbc mon: {} (fault plan seed {}) ==\n",
            self.scenario, self.seed
        ));
        out.push_str(&format!(
            "{} hosts, {} events, ended at {}\n",
            self.monitor.hosts().len(),
            self.events.len(),
            self.end
        ));
        let path = &self.analysis.path;
        if let Some(terminal) = path.segments.last() {
            out.push_str(&format!(
                "critical path: {} segment(s), busy {}s + blocked {}s = makespan {}s, bounded by {}\n",
                path.segments.len(),
                xcbc_sim::analyze::fmt_secs(path.busy()),
                xcbc_sim::analyze::fmt_secs(path.blocked()),
                xcbc_sim::analyze::fmt_secs(self.analysis.makespan),
                terminal.label
            ));
        }
        out.push_str(&format!(
            "flight recorder: {} of {} event(s) retained ({} dropped)\n\n",
            self.flight.len(),
            self.flight.seen(),
            self.flight.dropped()
        ));

        out.push_str(&format!(
            "{:<13} {:<18} {:<18} {:<18} {:>10}\n",
            "host", "cpu%", "load1", "net B/s", "last seen"
        ));
        for host in self.monitor.hosts() {
            let row = self
                .monitor
                .with_node(&host, |n| {
                    let seen = match n.last_seen() {
                        Some(t) => t.to_string(),
                        None => "never".to_string(),
                    };
                    format!(
                        "{:<13} {:<18} {:<18} {:<18} {:>10}\n",
                        n.hostname,
                        sparkline(n.ring(MetricKind::CpuPercent).iter().map(|s| s.value)),
                        sparkline(n.ring(MetricKind::LoadOne).iter().map(|s| s.value)),
                        sparkline(n.ring(MetricKind::NetBytesPerSec).iter().map(|s| s.value)),
                        seen
                    )
                })
                .unwrap_or_default();
            out.push_str(&row);
        }

        out.push_str(&format!("\nalerts ({}):\n", self.alerts.len()));
        if self.alerts.is_empty() {
            out.push_str("  (none fired)\n");
        }
        for alert in &self.alerts {
            out.push_str(&format!("  {}\n", alert.render()));
        }

        out.push_str(&format!(
            "\n{:<16} {:>7} {:>10} {:>10} {:>10}\n",
            "span latency", "count", "p50 (s)", "p95 (s)", "p99 (s)"
        ));
        for (source, hist) in self.histograms.sources() {
            out.push_str(&format!(
                "{:<16} {:>7} {:>10} {:>10} {:>10}\n",
                source,
                hist.count(),
                quantile_cell(hist.p50()),
                quantile_cell(hist.p95()),
                quantile_cell(hist.p99()),
            ));
        }
        out
    }
}

fn quantile_cell(q: Option<f64>) -> String {
    match q {
        Some(v) if v.is_finite() => format!("{v}"),
        Some(_) => "+Inf".to_string(),
        None => "-".to_string(),
    }
}

/// Render samples as a fixed-alphabet sparkline (oldest → newest),
/// normalised to the window's own max. Empty rings render as `-`.
pub fn sparkline(values: impl Iterator<Item = f64>) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let vals: Vec<f64> = values.collect();
    if vals.is_empty() {
        return "-".to_string();
    }
    let max = vals.iter().cloned().fold(0.0_f64, f64::max);
    vals.iter()
        .map(|v| {
            if max <= 0.0 {
                LEVELS[0]
            } else {
                let idx = ((v / max) * (LEVELS.len() - 1) as f64).round() as usize;
                LEVELS[idx.min(LEVELS.len() - 1)]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::littlefe_day_one;
    use xcbc_cluster::default_alert_rules;
    use xcbc_fault::FaultPlan;

    fn mon(seed: u64) -> MonReport {
        let run = littlefe_day_one(&FaultPlan::new(seed)).unwrap();
        monitor_run(&run, default_alert_rules())
    }

    #[test]
    fn clean_run_exposition_has_all_families() {
        let report = mon(42);
        let prom = report.prometheus();
        for needle in [
            "xcbc_node_cpu_percent",
            "xcbc_node_heartbeat_seconds",
            "xcbc_span_seconds_bucket",
            "xcbc_solvecache_hits_total 4",
            "xcbc_sched_jobs_finished_total",
            "xcbc_alerts_fired_total",
        ] {
            assert!(prom.contains(needle), "missing {needle} in:\n{prom}");
        }
    }

    #[test]
    fn exposition_is_byte_deterministic() {
        let a = mon(42);
        let b = mon(42);
        assert_eq!(a.prometheus(), b.prometheus());
        assert_eq!(a.ganglia_xml(), b.ganglia_xml());
        assert_eq!(a.jsonl(), b.jsonl());
        assert_eq!(a.dashboard(), b.dashboard());
    }

    #[test]
    fn faulty_run_fires_alerts_and_marks_absences() {
        let run =
            littlefe_day_one(&FaultPlan::parse("seed=11; node.boot key=compute-0-2").unwrap())
                .unwrap();
        let report = monitor_run(&run, default_alert_rules());
        assert!(
            report
                .alerts
                .iter()
                .any(|a| a.rule == "node-quarantined" && a.host == "compute-0-2"),
            "{:?}",
            report.alerts
        );
        assert!(
            report.events.iter().any(|e| e.source == "mon.alert"),
            "alerts land back on the timeline"
        );
        let dash = report.dashboard();
        assert!(dash.contains("node-quarantined"), "{dash}");
    }

    #[test]
    fn sparkline_shapes() {
        assert_eq!(sparkline(std::iter::empty()), "-");
        assert_eq!(sparkline([0.0, 0.0].into_iter()), "▁▁");
        let line = sparkline([1.0, 4.0, 8.0].into_iter());
        assert_eq!(line.chars().count(), 3);
        assert!(line.ends_with('█'));
    }
}
