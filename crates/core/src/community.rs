//! The community-request pipeline.
//!
//! §1: XCBC/XNIT content is steered by "two very important groups of
//! community representatives": the XSEDE Campus Champions ("more than
//! 250 individuals at more than 200 institutions") and ACI-REF. §2:
//! XNIT software "continues to evolve in response to community
//! requests." This module models that pipeline: requests arrive from
//! champions, get triaged, and accepted ones land in the XNIT repo as
//! new packages — growing the toolkit exactly the way the paper
//! describes.

use serde::Serialize;
use xcbc_rpm::{Package, PackageBuilder, PackageGroup};
use xcbc_yum::Repository;

/// Who asked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum RequesterGroup {
    CampusChampion,
    AciRef,
    SiteAdministrator,
}

/// Lifecycle of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum RequestState {
    Submitted,
    Accepted,
    Rejected { reason: RejectReason },
    Shipped { in_release: u32 },
}

/// Why a request is declined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum RejectReason {
    /// Already in the XCBC catalog or XNIT.
    AlreadyAvailable,
    /// Licensing prevents redistribution (the toolkit is open source).
    NotOpenSource,
    /// Does not build on the CentOS 6 baseline.
    DoesNotBuild,
}

/// One software request.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SoftwareRequest {
    pub id: u32,
    pub package_name: String,
    pub version: String,
    pub requester: RequesterGroup,
    pub institution: String,
    pub open_source: bool,
    pub builds_on_el6: bool,
    pub state: RequestState,
}

/// The pipeline: triage requests against a repo, ship accepted ones.
#[derive(Debug, Default)]
pub struct RequestPipeline {
    requests: Vec<SoftwareRequest>,
    next_id: u32,
    releases_shipped: u32,
}

impl RequestPipeline {
    pub fn new() -> Self {
        Self::default()
    }

    /// File a new request.
    pub fn submit(
        &mut self,
        package_name: &str,
        version: &str,
        requester: RequesterGroup,
        institution: &str,
        open_source: bool,
        builds_on_el6: bool,
    ) -> u32 {
        self.next_id += 1;
        self.requests.push(SoftwareRequest {
            id: self.next_id,
            package_name: package_name.to_string(),
            version: version.to_string(),
            requester,
            institution: institution.to_string(),
            open_source,
            builds_on_el6,
            state: RequestState::Submitted,
        });
        self.next_id
    }

    pub fn requests(&self) -> &[SoftwareRequest] {
        &self.requests
    }

    /// Triage everything submitted: reject duplicates/closed-source/
    /// non-building, accept the rest.
    pub fn triage(&mut self, repo: &Repository) {
        for r in &mut self.requests {
            if r.state != RequestState::Submitted {
                continue;
            }
            r.state = if repo.newest(&r.package_name).is_some() {
                RequestState::Rejected {
                    reason: RejectReason::AlreadyAvailable,
                }
            } else if !r.open_source {
                RequestState::Rejected {
                    reason: RejectReason::NotOpenSource,
                }
            } else if !r.builds_on_el6 {
                RequestState::Rejected {
                    reason: RejectReason::DoesNotBuild,
                }
            } else {
                RequestState::Accepted
            };
        }
    }

    /// Ship a release: package every accepted request into `repo`.
    /// Returns the packages added.
    pub fn ship_release(&mut self, repo: &mut Repository) -> Vec<Package> {
        self.releases_shipped += 1;
        let release = self.releases_shipped;
        let mut shipped = Vec::new();
        for r in &mut self.requests {
            if r.state == RequestState::Accepted {
                let pkg = PackageBuilder::new(&r.package_name, &r.version, "1.el6")
                    .group(PackageGroup::ScientificApplications)
                    .summary(format!("community request from {}", r.institution))
                    .file(format!("/usr/bin/{}", r.package_name))
                    .build();
                repo.add_package(pkg.clone());
                shipped.push(pkg);
                r.state = RequestState::Shipped {
                    in_release: release,
                };
            }
        }
        shipped
    }

    /// Requests by state, for the status report.
    pub fn count_by<F>(&self, f: F) -> usize
    where
        F: Fn(&RequestState) -> bool,
    {
        self.requests.iter().filter(|r| f(&r.state)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xnit::xnit_repository;

    fn pipeline_with_requests() -> (RequestPipeline, Repository) {
        let mut p = RequestPipeline::new();
        p.submit(
            "openfoam",
            "2.3.0",
            RequesterGroup::CampusChampion,
            "Marshall University",
            true,
            true,
        );
        p.submit(
            "gromacs",
            "4.6.5",
            RequesterGroup::SiteAdministrator,
            "Montana State",
            true,
            true,
        );
        p.submit(
            "matlab",
            "R2014a",
            RequesterGroup::AciRef,
            "University of Hawaii",
            false,
            true,
        );
        p.submit(
            "cuda-ancient",
            "3.0",
            RequesterGroup::CampusChampion,
            "Howard University",
            true,
            false,
        );
        (p, xnit_repository())
    }

    #[test]
    fn triage_classifies_correctly() {
        let (mut p, repo) = pipeline_with_requests();
        p.triage(&repo);
        let by_name = |n: &str| p.requests().iter().find(|r| r.package_name == n).unwrap();
        assert_eq!(by_name("openfoam").state, RequestState::Accepted);
        assert_eq!(
            by_name("gromacs").state,
            RequestState::Rejected {
                reason: RejectReason::AlreadyAvailable
            }
        );
        assert_eq!(
            by_name("matlab").state,
            RequestState::Rejected {
                reason: RejectReason::NotOpenSource
            }
        );
        assert_eq!(
            by_name("cuda-ancient").state,
            RequestState::Rejected {
                reason: RejectReason::DoesNotBuild
            }
        );
    }

    #[test]
    fn shipping_grows_xnit() {
        let (mut p, mut repo) = pipeline_with_requests();
        let before = repo.package_count();
        p.triage(&repo);
        let shipped = p.ship_release(&mut repo);
        assert_eq!(shipped.len(), 1);
        assert_eq!(repo.package_count(), before + 1);
        assert!(repo.newest("openfoam").is_some());
        // the request is marked shipped in release 1
        assert!(p
            .requests()
            .iter()
            .any(|r| r.state == RequestState::Shipped { in_release: 1 }));
    }

    #[test]
    fn second_release_does_not_reship() {
        let (mut p, mut repo) = pipeline_with_requests();
        p.triage(&repo);
        p.ship_release(&mut repo);
        let again = p.ship_release(&mut repo);
        assert!(again.is_empty());
    }

    #[test]
    fn duplicate_request_after_shipping_rejected() {
        let (mut p, mut repo) = pipeline_with_requests();
        p.triage(&repo);
        p.ship_release(&mut repo);
        p.submit(
            "openfoam",
            "2.3.1",
            RequesterGroup::AciRef,
            "Kean University",
            true,
            true,
        );
        p.triage(&repo);
        let last = p.requests().last().unwrap();
        assert_eq!(
            last.state,
            RequestState::Rejected {
                reason: RejectReason::AlreadyAvailable
            }
        );
    }

    #[test]
    fn counts() {
        let (mut p, repo) = pipeline_with_requests();
        p.triage(&repo);
        assert_eq!(p.count_by(|s| *s == RequestState::Accepted), 1);
        assert_eq!(
            p.count_by(|s| matches!(s, RequestState::Rejected { .. })),
            3
        );
    }
}
