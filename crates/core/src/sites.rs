//! The Table 3 deployment registry.
//!
//! "Deployed XCBC Clusters that had XSEDE Campus Bridging team
//! involvement" — six sites, 304 nodes, 2,708 cores, 49.61 TFLOPS —
//! plus the §4 goal: "By the end of 2020 ... exceed half a PetaFLOPS."

use serde::Serialize;

/// How a site adopted the toolkit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum AdoptionPath {
    /// Built from the ground up with the XCBC Rocks installation media.
    XcbcFromScratch,
    /// Uses the XNIT package repository on an existing system.
    XnitRepository,
}

/// One deployed cluster (a Table 3 row).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Site {
    pub name: &'static str,
    pub nodes: u32,
    pub cores: u32,
    /// Published Rpeak in TFLOPS.
    pub rpeak_tflops: f64,
    pub path: AdoptionPath,
    pub other_info: &'static str,
    /// Minority Serving Institution or EPSCoR-state flag (§8: "all but
    /// one are at universities that are either Minority Serving
    /// Institutions or Institutions in an EPSCoR state").
    pub msi_or_epscor: bool,
}

/// Table 3, row for row.
pub fn deployed_sites() -> Vec<Site> {
    vec![
        Site {
            name: "University of Kansas",
            nodes: 220,
            cores: 1760,
            rpeak_tflops: 26.0,
            path: AdoptionPath::XcbcFromScratch,
            other_info: "Will be in production in summer 2015",
            msi_or_epscor: true, // Kansas is an EPSCoR state
        },
        Site {
            name: "Montana State University",
            nodes: 36,
            cores: 576,
            rpeak_tflops: 11.98,
            path: AdoptionPath::XnitRepository,
            other_info: "300 TB of Lustre storage",
            msi_or_epscor: true, // Montana is an EPSCoR state
        },
        Site {
            name: "Marshall University",
            nodes: 22,
            cores: 264,
            rpeak_tflops: 6.0,
            path: AdoptionPath::XcbcFromScratch,
            other_info: "8 GPU Nodes, 3584 CUDA Cores",
            msi_or_epscor: true, // West Virginia is an EPSCoR state
        },
        Site {
            name: "Pacific Basin Agricultural Research Center (Univ. of Hawaii - Hilo)",
            nodes: 16,
            cores: 80,
            rpeak_tflops: 4.3,
            path: AdoptionPath::XnitRepository,
            other_info: "40TB storage, 60TB scratch",
            msi_or_epscor: true, // Hawaii is EPSCoR; UH-Hilo is an MSI
        },
        Site {
            name: "Indiana University (LittleFe)",
            nodes: 6,
            cores: 12,
            rpeak_tflops: 0.54,
            path: AdoptionPath::XcbcFromScratch,
            other_info: "LittleFe Teaching Cluster",
            msi_or_epscor: false, // the one exception
        },
        Site {
            name: "Indiana University (Limulus)",
            nodes: 4,
            cores: 16,
            rpeak_tflops: 0.79,
            path: AdoptionPath::XnitRepository,
            other_info: "Limulus HPC 200 Cluster",
            msi_or_epscor: false,
        },
    ]
}

/// The Table 3 totals row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FleetTotals {
    pub sites: usize,
    pub nodes: u32,
    pub cores: u32,
    pub rpeak_tflops: f64,
}

/// Aggregate the registry.
pub fn fleet_totals() -> FleetTotals {
    let sites = deployed_sites();
    FleetTotals {
        sites: sites.len(),
        nodes: sites.iter().map(|s| s.nodes).sum(),
        cores: sites.iter().map(|s| s.cores).sum(),
        rpeak_tflops: sites.iter().map(|s| s.rpeak_tflops).sum(),
    }
}

/// Years to the half-petaflop 2020 goal at a given annual growth factor.
/// Returns `None` if growth ≤ 1 never reaches the goal.
pub fn years_to_half_petaflops(current_tflops: f64, annual_growth: f64) -> Option<u32> {
    const GOAL_TFLOPS: f64 = 500.0;
    if current_tflops >= GOAL_TFLOPS {
        return Some(0);
    }
    if annual_growth <= 1.0 {
        return None;
    }
    let years = (GOAL_TFLOPS / current_tflops).ln() / annual_growth.ln();
    Some(years.ceil() as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_table3() {
        let t = fleet_totals();
        assert_eq!(t.sites, 6);
        assert_eq!(t.nodes, 304, "Table 3 total nodes");
        assert_eq!(t.cores, 2708, "Table 3 total cores");
        assert!(
            (t.rpeak_tflops - 49.61).abs() < 1e-9,
            "Table 3 total Rpeak: {}",
            t.rpeak_tflops
        );
    }

    #[test]
    fn adoption_paths_match_section4() {
        // "The first three clusters are built from the ground up with the
        // XCBC Rocks installation media, while those at Montana State
        // University and the University of Hawaii use the package
        // repository."
        let sites = deployed_sites();
        let by_name = |n: &str| sites.iter().find(|s| s.name.contains(n)).unwrap();
        assert_eq!(by_name("Kansas").path, AdoptionPath::XcbcFromScratch);
        assert_eq!(by_name("Marshall").path, AdoptionPath::XcbcFromScratch);
        assert_eq!(by_name("Montana").path, AdoptionPath::XnitRepository);
        assert_eq!(by_name("Hawaii").path, AdoptionPath::XnitRepository);
    }

    #[test]
    fn msi_epscor_all_but_iu() {
        // §8: "all but one are at universities that are either Minority
        // Serving Institutions or Institutions in an EPSCoR state" —
        // the IU systems are the exception (one institution, two rows).
        let sites = deployed_sites();
        let non: Vec<_> = sites.iter().filter(|s| !s.msi_or_epscor).collect();
        assert!(non.iter().all(|s| s.name.contains("Indiana")));
    }

    #[test]
    fn deskside_rows_match_cluster_specs() {
        // Table 3's IU rows equal the Table 4/5 hardware derivations
        let sites = deployed_sites();
        let lf = sites
            .iter()
            .find(|s| s.other_info.contains("LittleFe"))
            .unwrap();
        let spec = xcbc_cluster::specs::littlefe_modified();
        assert_eq!(lf.nodes, spec.node_count() as u32);
        assert_eq!(lf.cores, spec.compute_cores());
        assert!((lf.rpeak_tflops - spec.rpeak_gflops() / 1000.0).abs() < 0.01);

        let lm = sites
            .iter()
            .find(|s| s.other_info.contains("Limulus"))
            .unwrap();
        let spec = xcbc_cluster::specs::limulus_hpc200();
        assert_eq!(lm.nodes, spec.node_count() as u32);
        assert_eq!(lm.cores, spec.compute_cores());
        assert!((lm.rpeak_tflops - spec.rpeak_gflops() / 1000.0).abs() < 0.01);
    }

    #[test]
    fn marshall_gpu_cores_documented() {
        let sites = deployed_sites();
        let marshall = sites.iter().find(|s| s.name.contains("Marshall")).unwrap();
        assert!(marshall.other_info.contains("3584 CUDA"));
        // GPU peak sanity via the cluster crate
        assert!(xcbc_cluster::gpu_peak_gflops(3584, 1.4, 2) > 10_000.0);
    }

    #[test]
    fn half_petaflop_goal_projection() {
        let current = fleet_totals().rpeak_tflops;
        // 49.61 → 500 TF by end of 2020 (5.5 years) needs ~52% annual growth
        let years = years_to_half_petaflops(current, 1.52).unwrap();
        assert!(years <= 6, "{years} years at 52% growth");
        assert!(years_to_half_petaflops(current, 1.0).is_none());
        assert_eq!(years_to_half_petaflops(600.0, 1.1), Some(0));
    }
}
