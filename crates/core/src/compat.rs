//! The XSEDE-compatibility checker.
//!
//! §2's definition of "run-alike" compatibility: "libraries are in the
//! same place as on XSEDE clusters, versions are the same, and commands
//! work as they do on XSEDE-supported clusters." Given a host's RPM
//! database, this module grades it against the Stampede reference
//! profile in [`crate::catalog`].

use crate::catalog::{xsede_reference, CatalogEntry};
use serde::Serialize;
use xcbc_rpm::{Evr, RpmDb};

/// One compatibility deviation.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum CompatIssue {
    /// A reference package is absent.
    Missing { package: String },
    /// Installed at a different version than the reference.
    WrongVersion {
        package: String,
        installed: String,
        reference: String,
    },
    /// A reference path (library location / command) is not provided.
    MissingPath { package: String, path: String },
}

impl std::fmt::Display for CompatIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompatIssue::Missing { package } => write!(f, "{package}: not installed"),
            CompatIssue::WrongVersion {
                package,
                installed,
                reference,
            } => {
                write!(
                    f,
                    "{package}: version {installed} != XSEDE reference {reference}"
                )
            }
            CompatIssue::MissingPath { package, path } => {
                write!(f, "{package}: reference path {path} absent")
            }
        }
    }
}

/// The full report.
#[derive(Debug, Clone, Serialize)]
pub struct CompatReport {
    /// Reference packages checked.
    pub checked: usize,
    /// Fully matching packages.
    pub matching: usize,
    pub issues: Vec<CompatIssue>,
    /// matching / checked.
    pub score: f64,
}

impl CompatReport {
    /// An XSEDE-compatible cluster: every reference package present at
    /// the reference version and paths.
    pub fn is_compatible(&self) -> bool {
        self.issues.is_empty()
    }

    /// Missing package names (the XNIT to-install list).
    pub fn missing(&self) -> Vec<&str> {
        self.issues
            .iter()
            .filter_map(|i| match i {
                CompatIssue::Missing { package } => Some(package.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Human summary.
    pub fn render(&self) -> String {
        let mut out = format!(
            "XSEDE compatibility: {}/{} packages match ({:.1}%)\n",
            self.matching,
            self.checked,
            self.score * 100.0
        );
        for issue in &self.issues {
            out.push_str(&format!("  - {issue}\n"));
        }
        out
    }
}

fn check_entry(db: &RpmDb, entry: &CatalogEntry) -> Vec<CompatIssue> {
    let installed = match db.newest(entry.name) {
        None => {
            return vec![CompatIssue::Missing {
                package: entry.name.to_string(),
            }]
        }
        Some(ip) => ip,
    };
    let mut issues = Vec::new();
    let ref_version = Evr::parse(entry.version);
    let installed_version = Evr::new(0, installed.package.evr().version.clone(), String::new());
    if xcbc_rpm::rpmvercmp(&installed_version.version, &ref_version.version)
        != std::cmp::Ordering::Equal
    {
        issues.push(CompatIssue::WrongVersion {
            package: entry.name.to_string(),
            installed: installed.package.evr().version.clone(),
            reference: entry.version.to_string(),
        });
    }
    for path in entry.paths {
        let provided = db.whatprovides(&xcbc_rpm::Dependency::parse(path));
        if provided.is_empty() {
            issues.push(CompatIssue::MissingPath {
                package: entry.name.to_string(),
                path: path.to_string(),
            });
        }
    }
    issues
}

/// Grade a host against the full XSEDE reference.
pub fn check_compatibility(db: &RpmDb) -> CompatReport {
    check_against(db, &xsede_reference())
}

/// Grade against an arbitrary subset of the reference (e.g. only the
/// packages a site cares about).
pub fn check_against(db: &RpmDb, reference: &[CatalogEntry]) -> CompatReport {
    let mut issues = Vec::new();
    let mut matching = 0;
    for entry in reference {
        let entry_issues = check_entry(db, entry);
        if entry_issues.is_empty() {
            matching += 1;
        }
        issues.extend(entry_issues);
    }
    CompatReport {
        checked: reference.len(),
        matching,
        score: if reference.is_empty() {
            1.0
        } else {
            matching as f64 / reference.len() as f64
        },
        issues,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::xcbc_catalog;
    use xcbc_rpm::{PackageBuilder, TransactionSet};

    fn full_xcbc_db() -> RpmDb {
        let mut db = RpmDb::new();
        let mut tx = TransactionSet::new();
        for p in xcbc_catalog() {
            tx.add_install(p);
        }
        tx.run(&mut db).unwrap();
        db
    }

    #[test]
    fn full_xcbc_install_is_fully_compatible() {
        let report = check_compatibility(&full_xcbc_db());
        assert!(report.is_compatible(), "{}", report.render());
        assert_eq!(report.score, 1.0);
        assert_eq!(report.matching, report.checked);
    }

    #[test]
    fn empty_cluster_scores_zero() {
        let report = check_compatibility(&RpmDb::new());
        assert_eq!(report.score, 0.0);
        assert_eq!(report.missing().len(), report.checked);
    }

    #[test]
    fn wrong_version_detected() {
        let mut db = full_xcbc_db();
        db.erase("gromacs");
        db.install(
            PackageBuilder::new("gromacs", "4.5.0", "1.el6")
                .file("/usr/bin/mdrun")
                .file("/usr/bin/grompp")
                .build(),
        );
        let report = check_compatibility(&db);
        assert!(!report.is_compatible());
        assert!(report.issues.iter().any(|i| matches!(
            i,
            CompatIssue::WrongVersion { package, .. } if package == "gromacs"
        )));
    }

    #[test]
    fn wrong_path_detected() {
        // right version, wrong install location: breaks "libraries are
        // in the same place as on XSEDE clusters"
        let mut db = full_xcbc_db();
        db.erase("gromacs");
        db.install(
            PackageBuilder::new("gromacs", "4.6.5", "1.local")
                .file("/opt/apps/gromacs/bin/mdrun") // local convention
                .build(),
        );
        let report = check_compatibility(&db);
        assert!(report.issues.iter().any(
            |i| matches!(i, CompatIssue::MissingPath { path, .. } if path == "/usr/bin/mdrun")
        ));
    }

    #[test]
    fn missing_lists_feed_xnit() {
        let mut db = RpmDb::new();
        // a Limulus-style cluster with only a scheduler preinstalled
        db.install(
            PackageBuilder::new("slurm", "2.6.5", "1.el6")
                .file("/usr/bin/sbatch")
                .build(),
        );
        let report = check_compatibility(&db);
        let missing = report.missing();
        assert!(missing.contains(&"gromacs"));
        assert!(
            !missing.contains(&"slurm"),
            "slurm is present (version+path match)"
        );
    }

    #[test]
    fn check_against_subset() {
        let mut db = RpmDb::new();
        db.install(
            PackageBuilder::new("gcc", "4.4.7", "17.el6")
                .file("/usr/bin/gcc")
                .build(),
        );
        let subset: Vec<_> = xsede_reference()
            .into_iter()
            .filter(|e| e.name == "gcc")
            .collect();
        let report = check_against(&db, &subset);
        assert!(report.is_compatible(), "{}", report.render());
    }

    #[test]
    fn render_mentions_issues() {
        let report = check_compatibility(&RpmDb::new());
        let text = report.render();
        assert!(text.contains("not installed"));
        assert!(text.contains("0.0%"));
    }

    #[test]
    fn release_differences_do_not_matter() {
        // only version (not release) must match: sites rebuild RPMs
        let mut db = full_xcbc_db();
        db.erase("valgrind");
        db.install(
            PackageBuilder::new("valgrind", "3.8.1", "99.local")
                .file("/usr/bin/valgrind")
                .build(),
        );
        assert!(check_compatibility(&db).is_compatible());
    }
}
