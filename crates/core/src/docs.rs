//! Knowledge-base document generation.
//!
//! The paper cites two IU Knowledge Base articles as the user-facing
//! documentation: "What is the XSEDE Yum Repository, and how do I use
//! it?" (kb.iu.edu/d/bdwx) and "What software is installed on a
//! 'bare-bones' XSEDE-compatible Rocks cluster?" (kb.iu.edu/d/bdww).
//! These renderers produce those documents *from the implementation* —
//! the setup steps from [`crate::xnit`], the software list from
//! [`crate::catalog`] — so the docs can never drift from the code.

use crate::catalog::entries_in;
use crate::xnit::XnitSetupMethod;
use xcbc_rpm::PackageGroup;
use xcbc_yum::XSEDE_REPO_FILE;

/// The bdwx analog: "What is the XSEDE Yum Repository, and how do I use
/// it?"
pub fn render_kb_yum_repository() -> String {
    let mut out = String::from(
        "What is the XSEDE Yum Repository, and how do I use it?\n\
         ======================================================\n\n\
         The XSEDE Yum repository (XNIT) carries the software installed on\n\
         XSEDE-supported clusters, packaged so that an existing CentOS/Scientific\n\
         Linux cluster can add any of it without changing its current setup.\n\n\
         Method 1 — install the repo RPM:\n",
    );
    for step in XnitSetupMethod::RepoRpm.steps() {
        out.push_str(&format!("  * {step}\n"));
    }
    out.push_str("\nMethod 2 — create the repo file by hand:\n");
    for step in XnitSetupMethod::ManualRepoFile.steps() {
        out.push_str(&format!("  * {step}\n"));
    }
    out.push_str("\nThe repo file the README specifies:\n\n");
    for line in XSEDE_REPO_FILE.lines() {
        out.push_str(&format!("    {line}\n"));
    }
    out.push_str(
        "\nAfter setup, `yum install <package>` installs any XNIT package and\n\
         its dependencies; `yum check-update` lists newer versions as they are\n\
         published.\n",
    );
    out
}

/// The bdww analog: "What software is installed on a 'bare-bones'
/// XSEDE-compatible Rocks cluster?"
pub fn render_kb_barebones_software() -> String {
    let mut out = String::from(
        "What software is installed on a \"bare-bones\" XSEDE-compatible Rocks cluster?\n\
         =============================================================================\n\n\
         An XCBC built from the Rocks installation media with the XSEDE roll\n\
         carries the following, kept version- and path-compatible with XSEDE\n\
         systems (Stampede reference):\n\n",
    );
    for group in [
        PackageGroup::CompilersLibraries,
        PackageGroup::ScientificApplications,
        PackageGroup::MiscellaneousTools,
        PackageGroup::SchedulerResourceManager,
        PackageGroup::XsedeTools,
    ] {
        let entries = entries_in(group);
        out.push_str(&format!("{} ({}):\n", group.label(), entries.len()));
        for e in entries {
            out.push_str(&format!(
                "  {:<24} {:<12} {}\n",
                e.name, e.version, e.summary
            ));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yum_kb_covers_both_methods() {
        let doc = render_kb_yum_repository();
        assert!(doc.contains("xsede-release"));
        assert!(doc.contains("yum-plugin-priorities"));
        assert!(doc.contains("baseurl=http://cb-repo.iu.xsede.org/xsederepo/"));
        assert!(doc.contains("check-update"));
    }

    #[test]
    fn barebones_kb_lists_the_catalog() {
        let doc = render_kb_barebones_software();
        assert!(doc.contains("gromacs"));
        assert!(doc.contains("4.6.5"));
        assert!(doc.contains("Globus Connect Server"));
        assert!(
            doc.contains("Scientific Applications (6"),
            "category counts rendered: {}",
            doc.lines()
                .find(|l| l.contains("Scientific Applications"))
                .unwrap_or("")
        );
    }

    #[test]
    fn docs_deterministic() {
        assert_eq!(render_kb_yum_repository(), render_kb_yum_repository());
        assert_eq!(
            render_kb_barebones_software(),
            render_kb_barebones_software()
        );
    }
}
