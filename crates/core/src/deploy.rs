//! The two deployment paths and their comparison.
//!
//! §3: from scratch, "using the XSEDE roll during the Rocks cluster
//! install will add the packages necessary for an XSEDE-compatible basic
//! cluster"; piecemeal, "using XNIT to create an XSEDE-compatible
//! cluster is a fairly easy task". §8 adds the key property of the
//! overlay path: "XNIT in particular enables such compatibility to be
//! added to an existing, operating cluster in part or in whole, without
//! changing the pre-existing cluster setup."

use crate::compat::{check_compatibility, CompatReport};
use crate::roll::xsede_roll;
use crate::xnit::{enable_xnit, XnitSetupMethod};
use std::collections::BTreeMap;
use std::sync::Arc;
use xcbc_cluster::{timeline_from_recorder, ClusterSpec, DegradedCluster, Timeline};
use xcbc_fault::{FaultPlan, InstallCheckpoint, PostMortem};
use xcbc_rocks::{standard_rolls, ClusterInstall, InstallError, ResilienceConfig};
use xcbc_rpm::{PackageBuilder, PackageGroup, RpmDb};
use xcbc_sim::{events_to_jsonl, SpanRecorder, TraceEvent};
use xcbc_yum::{SolveCache, SolveError, Yum, YumConfig};

/// `source` tag on trace events recorded by the XNIT overlay path.
/// (From-scratch deployments carry the installer's own
/// `xcbc_rocks::install::TRACE_SOURCE` spans instead.)
pub const OVERLAY_TRACE_SOURCE: &str = "xnit.overlay";

/// Which way a cluster becomes XSEDE-compatible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeploymentPath {
    /// Bare-metal Rocks install with the XSEDE roll.
    FromScratch,
    /// XNIT overlay on an existing, operating cluster.
    XnitOverlay(XnitSetupMethod),
}

/// The outcome of a deployment.
#[derive(Debug)]
pub struct DeploymentReport {
    pub path: DeploymentPath,
    /// Administrator-visible steps, in order.
    pub admin_steps: Vec<String>,
    /// Wall-clock estimate of the whole deployment (a view over
    /// [`trace`](DeploymentReport::trace)).
    pub timeline: Timeline,
    /// Every span the deployment recorded on the shared simulation
    /// timebase; deterministic for a fixed cluster and fault-plan seed.
    pub trace: Vec<TraceEvent>,
    /// Nodes whose OS was wiped and reinstalled.
    pub nodes_reinstalled: usize,
    /// Did packages present before the deployment survive it?
    pub preexisting_preserved: bool,
    /// Post-deployment compatibility of a representative compute node.
    pub compat: CompatReport,
    /// Per-node package databases after deployment.
    pub node_dbs: BTreeMap<String, RpmDb>,
    /// Resilience telemetry, when the deployment ran under fault
    /// injection (faults, retries, backoff, quarantines).
    pub post_mortem: Option<PostMortem>,
    /// The cluster minus quarantined nodes, when any were quarantined.
    pub degraded: Option<DegradedCluster>,
    /// Final install checkpoint, for resuming an aborted deployment.
    pub checkpoint: Option<InstallCheckpoint>,
}

/// The software a Limulus HPC200 ships with from the factory:
/// Scientific Linux base plus Basement Supercomputing's management
/// stack and a preconfigured SLURM ("delivered with software cluster
/// management utilities off the shelf").
pub fn limulus_factory_image() -> RpmDb {
    let mut db = RpmDb::new();
    for p in [
        PackageBuilder::new("sl-release", "6.5", "1.sl6")
            .group(PackageGroup::Basics)
            .summary("Scientific Linux release")
            .build(),
        PackageBuilder::new("bash", "4.1.2", "15.sl6")
            .group(PackageGroup::Basics)
            .build(),
        PackageBuilder::new("limulus-tools", "2.1", "1")
            .group(PackageGroup::Basics)
            .summary("Basement Supercomputing cluster management utilities")
            .file("/usr/sbin/limulus-power")
            .build(),
        PackageBuilder::new("warewulf-provision", "3.5", "1")
            .group(PackageGroup::Basics)
            .summary("Diskless node provisioning")
            .build(),
        PackageBuilder::new("slurm", "2.6.5", "1.sl6")
            .group(PackageGroup::SchedulerResourceManager)
            .file("/usr/bin/sbatch")
            .file("/usr/sbin/slurmctld")
            .build(),
    ] {
        db.install(p);
    }
    db
}

/// Deploy from scratch: Rocks + XSEDE roll on bare metal.
pub fn deploy_from_scratch(cluster: &ClusterSpec) -> Result<DeploymentReport, InstallError> {
    let mut rolls = standard_rolls();
    rolls.push(xsede_roll());
    let install = ClusterInstall::new(cluster.clone(), rolls);
    let report = install.run()?;

    let compute = report
        .node_dbs
        .iter()
        .find(|(name, _)| name.starts_with("compute-"))
        .map(|(_, db)| db)
        .or_else(|| report.node_dbs.values().next())
        .expect("install produced at least one node");
    let compat = check_compatibility(compute);

    let admin_steps = vec![
        "burn Rocks 6.1.1 + XSEDE roll install media".to_string(),
        "boot frontend from media, answer installer screens".to_string(),
        "select rolls: base kernel os web-server + xsede".to_string(),
        "wait for frontend install".to_string(),
        "run insert-ethers, power nodes on in order".to_string(),
        "wait for compute PXE installs".to_string(),
        "verify with cluster-fork + qsub test job".to_string(),
    ];

    Ok(DeploymentReport {
        path: DeploymentPath::FromScratch,
        admin_steps,
        nodes_reinstalled: report.node_dbs.len(),
        preexisting_preserved: false, // bare metal wipes everything
        compat,
        timeline: report.timeline,
        trace: report.trace,
        node_dbs: report.node_dbs,
        post_mortem: None,
        degraded: None,
        checkpoint: None,
    })
}

/// Deploy from scratch under a fault plan: same Rocks + XSEDE roll
/// install, but every risky step (mirror fetch, DHCP discovery,
/// kickstart generation, RPM scriptlets, node boot) runs behind the
/// retry/checkpoint machinery of [`ClusterInstall::run_resilient`].
///
/// Nodes that exhaust their retry budget are quarantined rather than
/// failing the deployment: the report then carries a [`DegradedCluster`]
/// view of the survivors and a [`PostMortem`] accounting of every fault,
/// retry, and second lost to backoff. A power-loss fault aborts with a
/// checkpoint inside the returned [`InstallError`]; passing that
/// checkpoint back as `resume_from` continues the install without
/// re-provisioning committed nodes.
pub fn deploy_from_scratch_resilient(
    cluster: &ClusterSpec,
    plan: &FaultPlan,
    config: &ResilienceConfig,
    resume_from: InstallCheckpoint,
) -> Result<DeploymentReport, InstallError> {
    let mut rolls = standard_rolls();
    rolls.push(xsede_roll());
    let install = ClusterInstall::new(cluster.clone(), rolls);
    let mut injector = plan.injector();
    let resilient = install.run_resilient(&mut injector, config, resume_from)?;

    let compute = resilient
        .report
        .node_dbs
        .iter()
        .find(|(name, _)| name.starts_with("compute-"))
        .map(|(_, db)| db)
        .or_else(|| resilient.report.node_dbs.values().next())
        .expect("install produced at least one node");
    let compat = check_compatibility(compute);

    let mut admin_steps = vec![
        "burn Rocks 6.1.1 + XSEDE roll install media".to_string(),
        "boot frontend from media, answer installer screens".to_string(),
        "select rolls: base kernel os web-server + xsede".to_string(),
        "wait for frontend install".to_string(),
        "run insert-ethers, power nodes on in order".to_string(),
        "wait for compute PXE installs".to_string(),
        "verify with cluster-fork + qsub test job".to_string(),
    ];

    let degraded = if resilient.quarantined.is_empty() {
        None
    } else {
        for (node, kind) in &resilient.quarantined {
            admin_steps.push(format!(
                "service quarantined node {node} ({}), then reinstall it",
                kind.as_str()
            ));
        }
        Some(DegradedCluster::from_quarantine(
            cluster.clone(),
            resilient.quarantined.iter().map(|(n, k)| (n.as_str(), *k)),
        ))
    };

    // faulted runs carry their last moments: replay the trace through
    // a bounded flight recorder and pin the tail to the post-mortem
    let mut post_mortem = resilient.post_mortem;
    if !post_mortem.is_clean() {
        let flight = xcbc_sim::FlightRecorder::from_events(
            xcbc_sim::FLIGHT_RECORDER_CAPACITY,
            &resilient.report.trace,
        );
        post_mortem.record_flight_tail(
            flight.tail().map(|ev| ev.to_jsonl()),
            flight.seen(),
            flight.dropped(),
        );
    }

    Ok(DeploymentReport {
        path: DeploymentPath::FromScratch,
        admin_steps,
        nodes_reinstalled: resilient.report.node_dbs.len(),
        preexisting_preserved: false, // bare metal wipes everything
        compat,
        timeline: resilient.report.timeline,
        trace: resilient.report.trace,
        node_dbs: resilient.report.node_dbs,
        post_mortem: Some(post_mortem),
        degraded,
        checkpoint: Some(resilient.checkpoint),
    })
}

/// Deploy via XNIT overlay: take existing per-node databases (an
/// operating cluster) and add the full XCBC software set without
/// touching what is already there.
pub fn deploy_xnit_overlay(
    existing: &BTreeMap<String, RpmDb>,
    method: XnitSetupMethod,
) -> Result<DeploymentReport, SolveError> {
    deploy_xnit_overlay_with(existing, method, None)
}

/// [`deploy_xnit_overlay`] with an optional fleet-shared
/// [`SolveCache`]: identical nodes (and identical sites in a fleet)
/// then reuse one memoized depsolve instead of re-walking the closure
/// per node. The cache never changes *what* is installed — the solver
/// is deterministic, so a hit returns exactly the solution a fresh
/// solve would — which keeps the recorded trace byte-identical with
/// and without the cache.
pub fn deploy_xnit_overlay_with(
    existing: &BTreeMap<String, RpmDb>,
    method: XnitSetupMethod,
    solve_cache: Option<Arc<SolveCache>>,
) -> Result<DeploymentReport, SolveError> {
    deploy_xnit_overlay_salted(existing, method, solve_cache, 0)
}

/// [`deploy_xnit_overlay_with`] under a cache-key salt (see
/// [`SolveCache::salted_key`](xcbc_yum::SolveCache::salted_key)). The
/// multi-tenant service passes each tenant's salt here together with
/// that tenant's home cache shard, so overlay solves memoize per tenant
/// without ever serving one tenant a solution another tenant computed.
/// Salt `0` is the fleet-shared (unsalted) behavior of
/// [`deploy_xnit_overlay_with`].
pub fn deploy_xnit_overlay_salted(
    existing: &BTreeMap<String, RpmDb>,
    method: XnitSetupMethod,
    solve_cache: Option<Arc<SolveCache>>,
    cache_salt: u64,
) -> Result<DeploymentReport, SolveError> {
    let mut node_dbs = existing.clone();
    let mut rec = SpanRecorder::new(OVERLAY_TRACE_SOURCE);
    let mut admin_steps: Vec<String> = method.steps().iter().map(|s| s.to_string()).collect();

    rec.record("enable XSEDE yum repository", 300.0);

    let mut preserved = true;
    let mut first = true;
    for (host, db) in node_dbs.iter_mut() {
        let before: Vec<String> = db.names().iter().map(|s| s.to_string()).collect();

        let mut yum = Yum::new(YumConfig::default()).with_cache_salt(cache_salt);
        if let Some(cache) = &solve_cache {
            yum = yum.with_solve_cache(Arc::clone(cache));
        }
        enable_xnit(&mut yum, db, method).map_err(SolveError::Transaction)?;

        // install everything the compat report says is missing
        let missing: Vec<String> = check_compatibility(db)
            .missing()
            .iter()
            .map(|s| s.to_string())
            .collect();
        let refs: Vec<&str> = missing.iter().map(String::as_str).collect();
        let tx_report = yum.install(db, &refs)?;

        // §8's invariant: nothing pre-existing was removed
        for name in &before {
            if !db.is_installed(name) {
                preserved = false;
            }
        }

        let secs = 60.0 + tx_report.installed.len() as f64 * 2.0;
        let label = format!(
            "{host}: yum install of {} packages",
            tx_report.installed.len()
        );
        if first {
            rec.record(label, secs);
            first = false;
        } else {
            rec.record_parallel(label, secs);
        }
    }
    admin_steps.push("yum install <missing packages> across nodes".to_string());
    admin_steps.push("verify with compat checker".to_string());

    let compat = node_dbs
        .values()
        .next()
        .map(check_compatibility)
        .expect("at least one node");

    Ok(DeploymentReport {
        path: DeploymentPath::XnitOverlay(method),
        admin_steps,
        nodes_reinstalled: 0,
        preexisting_preserved: preserved,
        compat,
        timeline: timeline_from_recorder(&rec),
        trace: rec.into_events(),
        node_dbs,
        post_mortem: None,
        degraded: None,
        checkpoint: None,
    })
}

impl DeploymentReport {
    /// The deployment's event log as JSONL, one event per line.
    ///
    /// Byte-deterministic: the same cluster, fault-plan seed, and
    /// resume checkpoint always yield the identical string, which makes
    /// the log diffable across runs and machines (asserted by the
    /// cross-crate property tests).
    pub fn trace_jsonl(&self) -> String {
        events_to_jsonl(&self.trace)
    }

    /// Render the comparison row for this path.
    pub fn render_row(&self) -> String {
        format!(
            "{:<28} steps={:<2} wall={:>6.0}s reinstalls={:<2} preserves-existing={:<5} compat={:>5.1}%",
            match self.path {
                DeploymentPath::FromScratch => "Rocks from-scratch".to_string(),
                DeploymentPath::XnitOverlay(m) => format!("XNIT overlay ({m:?})"),
            },
            self.admin_steps.len(),
            self.timeline.total_seconds(),
            self.nodes_reinstalled,
            self.preexisting_preserved,
            self.compat.score * 100.0
        )
    }

    /// Render the comparison row plus, when the deployment ran under
    /// fault injection, the resilience post-mortem and degraded view.
    pub fn render(&self) -> String {
        let mut out = self.render_row();
        out.push('\n');
        if let Some(pm) = &self.post_mortem {
            out.push_str(&pm.render());
        }
        if let Some(degraded) = &self.degraded {
            let offline = degraded.offline_nodes();
            out.push_str(&format!(
                "degraded view       : {}/{} node(s) usable, offline: [{}], full-linpack: {}\n",
                degraded.usable_nodes().len(),
                degraded.spec.nodes.len(),
                offline.join(", "),
                degraded.can_run_full_linpack()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xcbc_cluster::specs::{limulus_hpc200, littlefe_modified};

    fn limulus_dbs() -> BTreeMap<String, RpmDb> {
        let cluster = limulus_hpc200();
        cluster
            .nodes
            .iter()
            .map(|n| (n.hostname.clone(), limulus_factory_image()))
            .collect()
    }

    #[test]
    fn from_scratch_on_littlefe_reaches_full_compat() {
        let report = deploy_from_scratch(&littlefe_modified()).unwrap();
        assert!(report.compat.is_compatible(), "{}", report.compat.render());
        assert_eq!(report.nodes_reinstalled, 6);
        assert!(
            !report.preexisting_preserved,
            "bare metal wipes the previous system"
        );
        assert!(report.timeline.total_seconds() > 0.0);
    }

    #[test]
    fn from_scratch_on_limulus_fails() {
        // diskless blades: the reason the paper pairs Limulus with XNIT
        assert!(matches!(
            deploy_from_scratch(&limulus_hpc200()).map_err(|e| e.kind),
            Err(xcbc_rocks::InstallErrorKind::NotInstallable(_))
        ));
    }

    #[test]
    fn xnit_overlay_on_limulus_reaches_full_compat() {
        let report = deploy_xnit_overlay(&limulus_dbs(), XnitSetupMethod::RepoRpm).unwrap();
        assert!(report.compat.is_compatible(), "{}", report.compat.render());
        assert_eq!(
            report.nodes_reinstalled, 0,
            "no reinstalls on the overlay path"
        );
    }

    #[test]
    fn overlay_preserves_preexisting_setup() {
        // §8: "without changing the pre-existing cluster setup"
        let report = deploy_xnit_overlay(&limulus_dbs(), XnitSetupMethod::ManualRepoFile).unwrap();
        assert!(report.preexisting_preserved);
        for db in report.node_dbs.values() {
            assert!(db.is_installed("limulus-tools"), "factory tooling survives");
            assert!(db.is_installed("slurm"), "factory scheduler survives");
            assert!(db.is_installed("warewulf-provision"));
        }
    }

    #[test]
    fn overlay_is_incremental_second_run_noop() {
        let first = deploy_xnit_overlay(&limulus_dbs(), XnitSetupMethod::RepoRpm).unwrap();
        let second = deploy_xnit_overlay(&first.node_dbs, XnitSetupMethod::RepoRpm).unwrap();
        assert!(second.compat.is_compatible());
        // nothing left to install: wall time is just repo setup + probes
        assert!(second.timeline.total_seconds() < first.timeline.total_seconds());
    }

    #[test]
    fn overlay_wall_time_beats_reinstall() {
        // "Using XNIT to create an XSEDE-compatible cluster is a fairly
        // easy task" — quantified: fewer reinstalls, less wall time than
        // a from-scratch build of the same scale
        let scratch = deploy_from_scratch(&littlefe_modified()).unwrap();
        let overlay = deploy_xnit_overlay(&limulus_dbs(), XnitSetupMethod::RepoRpm).unwrap();
        assert!(overlay.timeline.total_seconds() < scratch.timeline.total_seconds());
        assert!(overlay.nodes_reinstalled < scratch.nodes_reinstalled);
    }

    #[test]
    fn render_rows() {
        let overlay = deploy_xnit_overlay(&limulus_dbs(), XnitSetupMethod::RepoRpm).unwrap();
        let row = overlay.render_row();
        assert!(row.contains("XNIT overlay"));
        assert!(row.contains("reinstalls=0"));
    }

    #[test]
    fn salted_overlay_deploys_are_tenant_disjoint() {
        let cache = Arc::new(SolveCache::new());
        let salt_a = xcbc_yum::ShardedSolveCache::tenant_salt("campus-a");
        let salt_b = xcbc_yum::ShardedSolveCache::tenant_salt("campus-b");
        let a = deploy_xnit_overlay_salted(
            &limulus_dbs(),
            XnitSetupMethod::RepoRpm,
            Some(Arc::clone(&cache)),
            salt_a,
        )
        .unwrap();
        let after_a = cache.stats();
        assert!(after_a.entries > 0, "overlay solves were memoized");

        // an identical tenant under a different salt must not hit A's entries
        let b = deploy_xnit_overlay_salted(
            &limulus_dbs(),
            XnitSetupMethod::RepoRpm,
            Some(Arc::clone(&cache)),
            salt_b,
        )
        .unwrap();
        let after_b = cache.stats();
        assert_eq!(
            after_b.entries,
            2 * after_a.entries,
            "tenant B re-solved under its own keys"
        );
        assert_eq!(after_b.hits, 2 * after_a.hits, "no cross-tenant hits");
        // the cache never changes *what* is deployed
        assert_eq!(a.node_dbs, b.node_dbs);
        assert_eq!(a.trace_jsonl(), b.trace_jsonl());
    }

    #[test]
    fn resilient_clean_plan_matches_plain_deploy() {
        let plain = deploy_from_scratch(&littlefe_modified()).unwrap();
        let resilient = deploy_from_scratch_resilient(
            &littlefe_modified(),
            &FaultPlan::new(42),
            &ResilienceConfig::default(),
            InstallCheckpoint::new(),
        )
        .unwrap();
        assert_eq!(resilient.node_dbs, plain.node_dbs);
        assert!((resilient.timeline.total_seconds() - plain.timeline.total_seconds()).abs() < 1e-6);
        assert!(resilient.post_mortem.as_ref().unwrap().is_clean());
        assert!(resilient.degraded.is_none());
        assert!(resilient.compat.is_compatible());
    }

    #[test]
    fn resilient_deploy_quarantines_and_reports() {
        use xcbc_fault::{FaultWindow, InjectionPoint};
        let plan = FaultPlan::new(7).fail(
            InjectionPoint::NodeBoot,
            Some("compute-0-2"),
            FaultWindow::Always,
        );
        let report = deploy_from_scratch_resilient(
            &littlefe_modified(),
            &plan,
            &ResilienceConfig::default(),
            InstallCheckpoint::new(),
        )
        .unwrap();

        // deployment completed on the survivors
        assert!(!report.node_dbs.contains_key("compute-0-2"));
        assert_eq!(report.node_dbs.len(), 5);
        assert!(report.compat.is_compatible());

        // the degraded view marks the hung node offline
        let degraded = report.degraded.as_ref().unwrap();
        assert_eq!(degraded.offline_nodes(), vec!["compute-0-2"]);
        assert!(!degraded.can_run_full_linpack());

        // post-mortem + admin steps call out the quarantine
        let pm = report.post_mortem.as_ref().unwrap();
        assert!(!pm.is_clean());
        assert!(pm.render().contains("compute-0-2"));
        assert!(report
            .admin_steps
            .iter()
            .any(|s| s.contains("quarantined node compute-0-2")));
        let rendered = report.render();
        assert!(rendered.contains("degraded view"));
        assert!(rendered.contains("5/6 node(s) usable"));
    }

    #[test]
    fn fixed_seed_resilient_deploy_trace_is_byte_identical() {
        use xcbc_fault::{FaultWindow, InjectionPoint};
        let plan = FaultPlan::new(42)
            .with_rate(InjectionPoint::DhcpDiscover, 0.3)
            .fail(
                InjectionPoint::NodeBoot,
                Some("compute-0-1"),
                FaultWindow::Nth(0),
            );
        let deploy = || {
            deploy_from_scratch_resilient(
                &littlefe_modified(),
                &plan,
                &ResilienceConfig::default(),
                InstallCheckpoint::new(),
            )
            .unwrap()
        };
        let (a, b) = (deploy(), deploy());
        assert!(!a.trace.is_empty());
        assert_eq!(
            a.trace_jsonl(),
            b.trace_jsonl(),
            "same seed must replay byte-identically"
        );
        assert_eq!(
            a.post_mortem.as_ref().unwrap(),
            b.post_mortem.as_ref().unwrap()
        );
    }

    #[test]
    fn deployment_timeline_agrees_with_trace() {
        let report = deploy_from_scratch(&littlefe_modified()).unwrap();
        assert_eq!(Timeline::from_spans(&report.trace), report.timeline);
        let overlay = deploy_xnit_overlay(&limulus_dbs(), XnitSetupMethod::RepoRpm).unwrap();
        assert!(overlay
            .trace
            .iter()
            .all(|e| e.source == OVERLAY_TRACE_SOURCE));
        assert_eq!(Timeline::from_spans(&overlay.trace), overlay.timeline);
        assert!(overlay.trace_jsonl().lines().count() == overlay.trace.len());
    }

    #[test]
    fn factory_image_is_far_from_compatible() {
        let db = limulus_factory_image();
        let report = check_compatibility(&db);
        assert!(!report.is_compatible());
        assert!(report.score < 0.1);
        // the factory scheduler is not *against* the reference: slurm is
        // a Table 1 "choose one" option, not a Table 2 requirement
        assert!(!report.missing().contains(&"slurm"));
        assert!(report.missing().contains(&"gromacs"));
    }
}
