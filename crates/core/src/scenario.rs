//! Canned end-to-end scenarios on one simulated timebase.
//!
//! The CLI's `trace` and `mon` commands both replay the same virtual
//! "day one" of a LittleFe cluster: pull the XSEDE roll over the mirror
//! network, build the cluster from scratch (resuming across any power
//! losses the fault plan injects), PXE-boot the first compute node into
//! production, depsolve the XNIT extras for every surviving node
//! through a shared [`SolveCache`], and push an opening workload
//! through the scheduler. Every subsystem records spans through
//! `xcbc-sim`, so the merged log reads as one coherent timeline — and,
//! for a fixed plan seed, replays byte-identically.

use crate::deploy::deploy_from_scratch_resilient;
use crate::xnit::xnit_repository;
use std::sync::Arc;
use xcbc_cluster::specs::littlefe_modified;
use xcbc_fault::{FaultPlan, InstallCheckpoint, RetryPolicy};
use xcbc_rocks::{boot_node, InstallErrorKind, ResilienceConfig};
use xcbc_sched::{ClusterSim, JobRequest, SchedPolicy, SimMetrics};
use xcbc_sim::{SimTime, TraceEvent};
use xcbc_yum::{
    FetchOptions, Mirror, MirrorList, SolveCache, SolveRequest, YumConfig, SOLVECACHE_TRACE_SOURCE,
};

/// Nominal wall time of a depsolve that misses the shared cache (a
/// full closure walk).
const SOLVE_MISS_S: f64 = 2.4;
/// Nominal wall time of a depsolve answered from the cache (one hash
/// lookup).
const SOLVE_HIT_S: f64 = 0.08;

/// One finished day-one run: the merged trace plus everything the
/// telemetry pipeline wants to know about how it went.
#[derive(Debug)]
pub struct DayOneRun {
    /// Scenario name (doubles as the Ganglia cluster name).
    pub scenario: String,
    /// The fault-plan seed the run replayed under.
    pub seed: u64,
    /// The frontend's hostname.
    pub frontend: String,
    /// Every node the cluster spec names (including nodes that were
    /// later quarantined — they should show as absent, not vanish).
    pub hosts: Vec<String>,
    /// The merged event timeline, sorted by timestamp (stable, so
    /// events emitted together stay together).
    pub events: Vec<TraceEvent>,
    /// Nodes the resilient installer pulled from the build, with
    /// reasons.
    pub quarantined: Vec<(String, String)>,
    /// The shared depsolve cache the XNIT-extras step ran through.
    pub solve_cache: Arc<SolveCache>,
    /// Workload summary from the scheduler phase.
    pub sched_metrics: SimMetrics,
}

impl DayOneRun {
    /// The instant the last event ends — "now" for heartbeat checks.
    pub fn end(&self) -> SimTime {
        self.events
            .iter()
            .map(TraceEvent::end)
            .max()
            .unwrap_or(SimTime::ZERO)
    }
}

fn elapsed(events: &[TraceEvent]) -> xcbc_sim::SimDuration {
    events
        .iter()
        .map(TraceEvent::end)
        .max()
        .unwrap_or(SimTime::ZERO)
        .since(SimTime::ZERO)
}

/// Replay a LittleFe day one under `plan`. Errors are rendered
/// human-readable (they are CLI-fatal, not recoverable).
pub fn littlefe_day_one(plan: &FaultPlan) -> Result<DayOneRun, String> {
    let cluster = littlefe_modified();
    let frontend = cluster
        .frontend()
        .map(|n| n.hostname.clone())
        .expect("littlefe spec has a frontend");
    let hosts: Vec<String> = cluster.nodes.iter().map(|n| n.hostname.clone()).collect();
    let mut events: Vec<TraceEvent> = Vec::new();

    // 1. pull the XSEDE roll ISO from the mirror network (yum.mirror)
    let mirrors = MirrorList::new(vec![
        Mirror::new("http://mirror.xsede.org/rocks/6.1.1", 80.0, 40.0),
        Mirror::new("http://mirror.campus.edu/rocks/6.1.1", 200.0, 15.0),
    ]);
    let mut injector = plan.injector();
    let fetched = mirrors.fetch_with(
        FetchOptions::new(650 << 20)
            .retry(RetryPolicy::default())
            .inject(&mut injector)
            .starting_at(SimTime::ZERO),
    );
    events.extend(fetched.events);

    // 2. from-scratch resilient install (rocks.install), resuming
    //    across any power losses the plan injects
    let mut checkpoint = InstallCheckpoint::new();
    let mut report = None;
    for _ in 0..=cluster.nodes.len() {
        match deploy_from_scratch_resilient(
            &cluster,
            plan,
            &ResilienceConfig::default(),
            checkpoint.clone(),
        ) {
            Ok(r) => {
                report = Some(r);
                break;
            }
            Err(e) if matches!(e.kind, InstallErrorKind::PowerLoss) => {
                checkpoint = e.progress.checkpoint.clone();
            }
            Err(e) => return Err(format!("littlefe deploy failed: {e}")),
        }
    }
    let Some(report) = report else {
        return Err("gave up after repeated power losses".to_string());
    };
    let t_install = elapsed(&events);
    events.extend(report.trace.iter().map(|e| e.shifted(t_install)));
    let quarantined = report
        .post_mortem
        .as_ref()
        .map(|pm| pm.quarantined.clone())
        .unwrap_or_default();

    // 3. the first compute node's production PXE boot (cluster.boot)
    let payload = report
        .node_dbs
        .get("compute-0-0")
        .map(|db| db.installed_size_bytes())
        .unwrap_or(500 << 20);
    let t_boot = elapsed(&events);
    events.extend(
        boot_node("compute-0-0", payload, None)
            .timeline
            .to_spans("cluster.boot")
            .iter()
            .map(|e| e.shifted(t_boot).with_field("node", "compute-0-0")),
    );

    // 4. XNIT extras depsolved for every surviving node through one
    //    shared cache (yum.solvecache): identical post-install databases
    //    mean the first node misses and the rest hit.
    let solve_cache = Arc::new(SolveCache::new());
    let repos = vec![xnit_repository()];
    let yum_config = YumConfig::default();
    let request = SolveRequest::install(["paraview", "wrf"]);
    let mut cursor = SimTime::ZERO + elapsed(&events);
    for (host, db) in &report.node_dbs {
        let before = solve_cache.stats();
        solve_cache
            .get_or_solve(&repos, &yum_config, db, &request)
            .map_err(|e| format!("xnit depsolve failed on {host}: {e}"))?;
        let hit = solve_cache.stats().hits > before.hits;
        let (verdict, dur) = if hit {
            ("hit", SOLVE_HIT_S)
        } else {
            ("miss", SOLVE_MISS_S)
        };
        let span = TraceEvent::span(
            cursor,
            SOLVECACHE_TRACE_SOURCE,
            format!("{host}: depsolve xnit extras ({verdict})"),
            dur,
        )
        .with_field("node", host.clone());
        cursor = span.end();
        events.push(span);
    }

    // 5. the opening workload through the scheduler (sched)
    let mut sim = ClusterSim::new(5, 2, SchedPolicy::maui_default());
    sim.add_reservation("maintenance window", vec![4], 3600.0, 7200.0);
    sim.submit_at(0.0, JobRequest::new("hello-mpi", 2, 2, 600.0, 300.0));
    sim.submit_at(
        120.0,
        JobRequest::new("gromacs-bench", 4, 2, 1800.0, 1500.0),
    );
    sim.submit_at(300.0, JobRequest::new("hpl-smoke", 5, 2, 900.0, 700.0));
    sim.run_to_completion();
    let sched_metrics = SimMetrics::from_sim(&sim);
    let t_sched = elapsed(&events);
    events.extend(sim.take_trace().iter().map(|e| e.shifted(t_sched)));

    // one shared timebase: merge-sort by timestamp (stable, so events
    // emitted together stay together)
    events.sort_by_key(|e| e.t);

    Ok(DayOneRun {
        scenario: "littlefe".to_string(),
        seed: plan.seed,
        frontend,
        hosts,
        events,
        quarantined,
        solve_cache,
        sched_metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xcbc_sim::events_to_jsonl;

    #[test]
    fn clean_run_covers_every_source() {
        let run = littlefe_day_one(&FaultPlan::new(42)).unwrap();
        for source in [
            "yum.mirror",
            "rocks.install",
            "cluster.boot",
            "yum.solvecache",
            "sched",
        ] {
            assert!(
                run.events.iter().any(|e| e.source == source),
                "missing {source}"
            );
        }
        assert!(run.quarantined.is_empty());
        assert_eq!(run.hosts.len(), 6);
        // the frontend db and the (identical) compute dbs each miss
        // once; the other four computes hit
        let stats = run.solve_cache.stats();
        assert_eq!((stats.hits, stats.misses), (4, 2));
        assert!(run.sched_metrics.jobs_finished >= 3);
    }

    #[test]
    fn runs_are_byte_deterministic() {
        let a = littlefe_day_one(&FaultPlan::new(7)).unwrap();
        let b = littlefe_day_one(&FaultPlan::new(7)).unwrap();
        assert_eq!(events_to_jsonl(&a.events), events_to_jsonl(&b.events));
    }

    #[test]
    fn faulty_run_quarantines_and_still_lands() {
        let plan = FaultPlan::parse("seed=11; node.boot key=compute-0-2").unwrap();
        let run = littlefe_day_one(&plan).unwrap();
        assert!(
            run.quarantined.iter().any(|(n, _)| n == "compute-0-2"),
            "{:?}",
            run.quarantined
        );
        // the quarantined node stays in the host list (it should show
        // as absent, not vanish)
        assert!(run.hosts.iter().any(|h| h == "compute-0-2"));
    }
}
