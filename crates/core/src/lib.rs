//! # xcbc-core — XCBC and XNIT
//!
//! The paper's primary contribution, built on the substrates in the
//! sibling crates:
//!
//! * [`catalog`] — the XCBC 0.9 software catalog (Tables 1 and 2): every
//!   package, its category, version, dependencies, and install paths,
//!   kept "run-alike" with the XSEDE Stampede reference.
//! * [`roll`] — the XSEDE Rocks Roll (release history 0.0.8 → 0.0.9 →
//!   0.9) for the **from-scratch** path.
//! * [`xnit`] — the XSEDE National Integration Toolkit Yum repository for
//!   the **piecemeal** path, with both setup methods §3 describes.
//! * [`compat`] — the XSEDE-compatibility checker: versions, library
//!   paths, and commands must match the reference profile.
//! * [`deploy`] — the two deployment workflows and their comparison
//!   (steps, wall time, what survives on an existing cluster).
//! * [`update`] — keeping a cluster current: update rolls vs `yum
//!   update` vs notification scripts, with the production-risk model.
//! * [`sites`] — the Table 3 deployment registry and fleet statistics.
//! * [`fleet`] — the fleet orchestrator: N sites deployed concurrently
//!   over a shared solve cache, merged into one trace report.
//! * [`campaign`] — rolling update campaigns: drain-aware, canaried,
//!   checkpoint-resumable waves over a live fleet.
//! * [`elastic`] — dynamic fleet membership: the power-aware autoscaler,
//!   burst sites joining mid-run, and the membership ledger.
//! * [`training`] — the LittleFe/XCBC curriculum module of §6.
//! * [`report`] — renderers that regenerate the paper's tables.
//!
//! ```
//! use xcbc_core::catalog::xcbc_catalog;
//! use xcbc_core::xnit::xnit_repository;
//!
//! let repo = xnit_repository();
//! assert!(repo.newest("gromacs").is_some());
//! assert!(xcbc_catalog().len() > 100);
//! ```

pub mod bridging;
pub mod campaign;
pub mod catalog;
pub mod community;
pub mod compat;
pub mod deploy;
pub mod docs;
pub mod elastic;
pub mod fleet;
pub mod mon;
pub mod report;
pub mod roll;
pub mod scenario;
pub mod sites;
pub mod training;
pub mod update;
pub mod xnit;

pub use bridging::{setup_endpoint, transfer, Endpoint, GffsNamespace, TransferFile};
pub use campaign::{
    campaign_digest, plan_waves, run_campaign, CampaignConfig, CampaignError, CampaignMutation,
    CampaignOutcome, CampaignReport, CampaignTarget, CanaryAction, WaveReport,
    CAMPAIGN_TRACE_SOURCE,
};
pub use catalog::{xcbc_catalog, xsede_reference, CatalogEntry};
pub use community::{RequestPipeline, RequestState, RequesterGroup, SoftwareRequest};
pub use compat::{check_compatibility, CompatIssue, CompatReport};
pub use deploy::{DeploymentPath, DeploymentReport};
pub use docs::{render_kb_barebones_software, render_kb_yum_repository};
pub use elastic::{
    elastic_digest, run_elastic, Autoscaler, BurstSite, ElasticConfig, ElasticError,
    ElasticMutation, ElasticReport, ElasticState, ElasticVerdict, ElasticWorld, FleetMembership,
    MemberState, MetricSample, ScaleDecision, ScalerPolicy, TickStat, ELASTIC_TRACE_SOURCE,
    MEMBERSHIP_TRACE_SOURCE,
};
pub use fleet::{Fleet, FleetError, FleetReport, FleetSite, FleetTelemetry, SiteOutcome, SitePlan};
pub use mon::{monitor_run, sparkline, MonReport};
pub use roll::{xsede_roll, RollRelease, XSEDE_ROLL_RELEASES};
pub use scenario::{littlefe_day_one, DayOneRun};
pub use sites::{deployed_sites, fleet_totals, Site};
pub use training::{Curriculum, LabSession, LessonStep};
pub use update::{UpdateRisk, UpdateStrategy};
pub use xnit::{xnit_repository, XnitSetupMethod};
