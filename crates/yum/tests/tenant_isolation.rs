//! Tenant-isolation properties of the sharded, salted solve cache:
//! concurrent tenants routed through one [`ShardedSolveCache`] can
//! never observe each other's entries, and the per-shard counters
//! account for every lookup exactly once.

use proptest::prelude::*;
use std::sync::Arc;
use xcbc_rpm::{PackageBuilder, RpmDb};
use xcbc_yum::{Repository, ShardedSolveCache, SolveCache, SolveRequest, YumConfig};

/// A small solvable catalog: `pkg{i}` requires `pkg{i-1}`.
fn chain_repo(n: usize) -> Repository {
    let mut repo = Repository::new("gen", "generated");
    for i in 0..n {
        let mut b = PackageBuilder::new(&format!("pkg{i}"), "1.0", "1");
        if i > 0 {
            b = b.requires_simple(&format!("pkg{}", i - 1));
        }
        repo.add_package(b.build());
    }
    repo
}

proptest! {
    /// Identical requests under distinct tenant salts occupy distinct
    /// entries: neither tenant's probe can be answered by (or even see)
    /// the other's cached solution.
    #[test]
    fn identical_requests_stay_tenant_disjoint(
        n in 2usize..10,
        shards in 1usize..6,
        target in 0usize..10,
    ) {
        let repos = vec![chain_repo(n)];
        let cfg = YumConfig::default();
        let db = RpmDb::new();
        let req = SolveRequest::install([format!("pkg{}", target % n).as_str()]);
        let bank = ShardedSolveCache::new(shards);

        let salt_a = ShardedSolveCache::tenant_salt("campus-a");
        let salt_b = ShardedSolveCache::tenant_salt("campus-b");
        prop_assert_ne!(salt_a, salt_b);

        bank.get_or_solve(salt_a, &repos, &cfg, &db, &req).unwrap();
        // tenant B's first probe of the very same request must miss
        bank.get_or_solve(salt_b, &repos, &cfg, &db, &req).unwrap();
        let stats = bank.stats();
        prop_assert_eq!(stats.hits, 0, "tenant B observed tenant A's entry");
        prop_assert_eq!(stats.misses, 2);
        prop_assert_eq!(stats.entries, 2);

        // cross-tenant peek at the other tenant's key misses too
        let key_b = SolveCache::salted_key(salt_b, &repos, &cfg, &db, &req);
        prop_assert!(bank.peek(key_b).is_some());
        let key_a = SolveCache::salted_key(salt_a, &repos, &cfg, &db, &req);
        prop_assert_ne!(key_a, key_b);
    }

    /// Concurrent tenants hammering one bank: every lookup lands in some
    /// shard's counters, the entry count equals the number of distinct
    /// (tenant, request) pairs, and each tenant's second pass is all hits
    /// — i.e. warmth is per-tenant, never borrowed across tenants.
    #[test]
    fn concurrent_tenants_account_per_shard(
        n in 2usize..8,
        shards in 1usize..5,
        tenants in 2usize..5,
    ) {
        let repos = Arc::new(vec![chain_repo(n)]);
        let cfg = Arc::new(YumConfig::default());
        let bank = Arc::new(ShardedSolveCache::new(shards));
        let req = SolveRequest::install([format!("pkg{}", n - 1).as_str()]);

        std::thread::scope(|scope| {
            for t in 0..tenants {
                let repos = Arc::clone(&repos);
                let cfg = Arc::clone(&cfg);
                let bank = Arc::clone(&bank);
                let req = req.clone();
                scope.spawn(move || {
                    let db = RpmDb::new();
                    let salt = ShardedSolveCache::tenant_salt(&format!("tenant-{t}"));
                    let first = bank.get_or_solve(salt, &repos, &cfg, &db, &req).unwrap();
                    let second = bank.get_or_solve(salt, &repos, &cfg, &db, &req).unwrap();
                    assert!(Arc::ptr_eq(&first, &second));
                });
            }
        });

        let stats = bank.stats();
        prop_assert_eq!(stats.entries, tenants, "one entry per tenant");
        prop_assert_eq!(stats.hits + stats.misses, 2 * tenants as u64);
        prop_assert_eq!(stats.misses, tenants as u64, "no tenant borrowed another's warmth");
        let per_shard = bank.shard_stats();
        prop_assert_eq!(per_shard.len(), shards);
        let summed: usize = per_shard.iter().map(|s| s.entries).sum();
        prop_assert_eq!(summed, stats.entries, "aggregate equals the shard sum");
    }
}
