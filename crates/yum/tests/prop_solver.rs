//! Property tests for the Yum solver: closure soundness (every Requires of
//! the solution satisfied post-transaction), priority shadowing, and
//! update monotonicity.

use proptest::prelude::*;
use xcbc_rpm::{PackageBuilder, RpmDb};
use xcbc_yum::{Repository, Yum, YumConfig};

/// Build a random dependency forest of `n` packages where package i may
/// require packages with smaller indices (guaranteeing solvability).
fn forest(n: usize, edges: &[(usize, usize)]) -> Repository {
    let mut repo = Repository::new("gen", "generated");
    for i in 0..n {
        let mut b = PackageBuilder::new(&format!("pkg{i}"), "1.0", "1");
        for (from, to) in edges {
            if *from == i && *to < i {
                b = b.requires_simple(&format!("pkg{to}"));
            }
        }
        repo.add_package(b.build());
    }
    repo
}

proptest! {
    /// After `yum install` of any target, the database verifies clean:
    /// every Requires satisfied, no conflicts.
    #[test]
    fn install_closure_is_sound(
        n in 1usize..20,
        edges in proptest::collection::vec((0usize..20, 0usize..20), 0..40),
        target_seed in 0usize..20,
    ) {
        let repo = forest(n, &edges);
        let mut yum = Yum::new(YumConfig::default());
        yum.add_repository(repo);
        let mut db = RpmDb::new();
        let target = format!("pkg{}", target_seed % n);
        yum.install(&mut db, &[&target]).unwrap();
        prop_assert!(db.is_installed(&target));
        prop_assert!(db.verify().is_empty(), "db must verify clean: {:?}", db.verify());
    }

    /// Installing everything one at a time ends in the same package set as
    /// installing everything at once.
    #[test]
    fn batch_equals_incremental(
        n in 1usize..12,
        edges in proptest::collection::vec((0usize..12, 0usize..12), 0..24),
    ) {
        let repo = forest(n, &edges);

        let mut yum_a = Yum::new(YumConfig::default());
        yum_a.add_repository(repo.clone());
        let mut db_a = RpmDb::new();
        let names: Vec<String> = (0..n).map(|i| format!("pkg{i}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        yum_a.install(&mut db_a, &refs).unwrap();

        let mut yum_b = Yum::new(YumConfig::default());
        yum_b.add_repository(repo);
        let mut db_b = RpmDb::new();
        for name in &names {
            yum_b.install(&mut db_b, &[name]).unwrap();
        }

        prop_assert_eq!(db_a.names(), db_b.names());
    }

    /// With the priorities plugin on, a name carried by a
    /// higher-priority repo always wins regardless of version.
    #[test]
    fn priority_shadowing_total(vlow in 1u32..9, vhigh in 1u32..9) {
        let mut base = Repository::new("base", "base").with_priority(1);
        base.add_package(PackageBuilder::new("p", &format!("{vlow}.0"), "1").build());
        let mut addon = Repository::new("addon", "addon").with_priority(50);
        addon.add_package(PackageBuilder::new("p", &format!("{vhigh}.0"), "1").build());
        let mut yum = Yum::new(YumConfig::default());
        yum.add_repository(base);
        yum.add_repository(addon);
        let mut db = RpmDb::new();
        yum.install(&mut db, &["p"]).unwrap();
        prop_assert_eq!(
            db.newest("p").unwrap().package.evr().version.clone(),
            format!("{vlow}.0")
        );
    }

    /// `yum update` never downgrades: post-update EVR >= pre-update EVR
    /// for every installed name.
    #[test]
    fn update_is_monotonic(versions in proptest::collection::vec(1u32..9, 1..8)) {
        let mut repo = Repository::new("r", "r");
        for (i, v) in versions.iter().enumerate() {
            repo.add_package(PackageBuilder::new(&format!("p{i}"), &format!("{v}.0"), "1").build());
        }
        let mut yum = Yum::new(YumConfig::default());
        yum.add_repository(repo);
        let mut db = RpmDb::new();
        for i in 0..versions.len() {
            db.install(PackageBuilder::new(&format!("p{i}"), "1.0", "0").build());
        }
        let before: Vec<_> = (0..versions.len())
            .map(|i| db.newest(&format!("p{i}")).unwrap().package.nevra.evr.clone())
            .collect();
        yum.update(&mut db, None).unwrap();
        for (i, was) in before.iter().enumerate() {
            let after = &db.newest(&format!("p{i}")).unwrap().package.nevra.evr;
            prop_assert!(after >= was);
        }
        // and a second update is a no-op
        let report = yum.update(&mut db, None).unwrap();
        prop_assert!(report.upgraded.is_empty());
    }
}
