//! Metadata caching (`yum makecache` / `metadata_expire`).
//!
//! Yum refreshes repository metadata only when the cached copy is older
//! than `metadata_expire` — the reason the paper says "Yum still requires
//! an administrator to periodically run update checks": nothing happens
//! until something asks, and what it sees can be stale.

use crate::metadata::RepoMetadata;
use crate::repo::Repository;
use std::collections::HashMap;

/// A metadata cache over repositories, with simulated clock control.
#[derive(Debug, Default)]
pub struct MetadataCache {
    /// repo id → (fetch time, metadata).
    entries: HashMap<String, (f64, RepoMetadata)>,
    /// Seconds before a cached copy is considered stale (yum default:
    /// 90 minutes).
    pub expire_s: f64,
    /// Fetches performed (metric: how often we went to the mirror).
    pub fetches: u64,
}

impl MetadataCache {
    pub fn new(expire_s: f64) -> Self {
        MetadataCache {
            entries: HashMap::new(),
            expire_s,
            fetches: 0,
        }
    }

    /// Yum's default 90-minute expiry.
    pub fn with_default_expiry() -> Self {
        Self::new(90.0 * 60.0)
    }

    /// Get metadata for `repo` at simulated time `now_s`, refreshing if
    /// missing or stale. Returns `(metadata, was_fetched)`.
    pub fn get(&mut self, repo: &Repository, now_s: f64) -> (&RepoMetadata, bool) {
        let stale = match self.entries.get(&repo.id) {
            None => true,
            Some((t, _)) => now_s - t >= self.expire_s,
        };
        if stale {
            self.fetches += 1;
            self.entries
                .insert(repo.id.clone(), (now_s, repo.metadata()));
        }
        (&self.entries.get(&repo.id).expect("just inserted").1, stale)
    }

    /// `yum clean metadata`.
    pub fn clean(&mut self) {
        self.entries.clear();
    }

    /// Is the cached copy (if any) behind the repository's revision?
    /// This is the staleness window the notify tooling closes.
    pub fn is_behind(&self, repo: &Repository) -> bool {
        match self.entries.get(&repo.id) {
            None => true,
            Some((_, md)) => md.revision < repo.revision,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xcbc_rpm::PackageBuilder;

    fn repo() -> Repository {
        let mut r = Repository::new("xsede", "XSEDE");
        r.add_package(PackageBuilder::new("gromacs", "4.6.5", "1").build());
        r
    }

    #[test]
    fn first_access_fetches() {
        let r = repo();
        let mut cache = MetadataCache::with_default_expiry();
        let (_, fetched) = cache.get(&r, 0.0);
        assert!(fetched);
        assert_eq!(cache.fetches, 1);
    }

    #[test]
    fn within_expiry_serves_cache() {
        let r = repo();
        let mut cache = MetadataCache::new(3600.0);
        cache.get(&r, 0.0);
        let (_, fetched) = cache.get(&r, 1800.0);
        assert!(!fetched);
        assert_eq!(cache.fetches, 1);
    }

    #[test]
    fn past_expiry_refetches() {
        let r = repo();
        let mut cache = MetadataCache::new(3600.0);
        cache.get(&r, 0.0);
        let (_, fetched) = cache.get(&r, 3600.0);
        assert!(fetched);
        assert_eq!(cache.fetches, 2);
    }

    #[test]
    fn staleness_window_visible() {
        let mut r = repo();
        let mut cache = MetadataCache::new(3600.0);
        cache.get(&r, 0.0);
        assert!(!cache.is_behind(&r));
        // upstream publishes an update; cache is now behind until refresh
        r.add_package(PackageBuilder::new("gromacs", "4.6.7", "1").build());
        assert!(cache.is_behind(&r));
        let (md, fetched) = cache.get(&r, 4000.0);
        assert!(fetched);
        assert_eq!(md.revision, r.revision);
        assert!(!cache.is_behind(&r));
    }

    #[test]
    fn clean_forces_refetch() {
        let r = repo();
        let mut cache = MetadataCache::new(f64::INFINITY);
        cache.get(&r, 0.0);
        cache.clean();
        let (_, fetched) = cache.get(&r, 1.0);
        assert!(fetched);
    }
}
