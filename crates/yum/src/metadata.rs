//! Repository metadata — the `repodata/` tree a `createrepo` run produces.
//!
//! Real yum serves `repomd.xml` + `primary.xml.gz`; we serialize the same
//! information as JSON via the crate-local [`crate::json`] module (the
//! offline build cannot fetch `serde_json`). The metadata is what
//! `yum makecache` downloads, and what the paper's "subscribe ... to
//! automatically be notified of updates" workflow diffs.

use crate::json::{JsonError, JsonObject, JsonValue};
use crate::repo::Repository;
use serde::{Deserialize, Serialize};
use xcbc_rpm::{Arch, Evr};

/// Error from [`RepoMetadata::from_json`]: either malformed JSON or a
/// well-formed document missing expected fields.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MetadataError {
    /// The document is not valid JSON.
    Json(JsonError),
    /// Valid JSON with an unexpected structure.
    Shape(String),
}

impl std::fmt::Display for MetadataError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetadataError::Json(e) => write!(f, "metadata parse failed: {e}"),
            MetadataError::Shape(m) => write!(f, "metadata shape error: {m}"),
        }
    }
}

impl std::error::Error for MetadataError {}

impl From<JsonError> for MetadataError {
    fn from(e: JsonError) -> Self {
        MetadataError::Json(e)
    }
}

/// One package record in the primary metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrimaryRecord {
    pub name: String,
    pub epoch: u32,
    pub version: String,
    pub release: String,
    pub arch: Arch,
    pub summary: String,
    pub size_bytes: u64,
    pub provides: Vec<String>,
    pub requires: Vec<String>,
    pub location: String,
}

impl PrimaryRecord {
    pub fn evr(&self) -> Evr {
        Evr::new(self.epoch, self.version.clone(), self.release.clone())
    }
}

/// The repo-level metadata document (`repomd.xml` analog).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepoMetadata {
    pub repo_id: String,
    pub revision: u64,
    pub package_count: usize,
    pub total_size_bytes: u64,
    pub primary: Vec<PrimaryRecord>,
}

impl RepoMetadata {
    /// Generate metadata from a repository's current contents.
    pub fn generate(repo: &Repository) -> Self {
        let mut primary: Vec<PrimaryRecord> = repo
            .packages()
            .iter()
            .map(|p| PrimaryRecord {
                name: p.name().to_string(),
                epoch: p.evr().epoch,
                version: p.evr().version.clone(),
                release: p.evr().release.clone(),
                arch: p.arch(),
                summary: p.summary.clone(),
                size_bytes: p.size_bytes,
                provides: p.all_provides().iter().map(|d| d.to_string()).collect(),
                requires: p.requires.iter().map(|d| d.to_string()).collect(),
                location: format!("Packages/{}", p.nevra.filename()),
            })
            .collect();
        primary.sort_by(|a, b| a.name.cmp(&b.name).then_with(|| a.evr().cmp(&b.evr())));
        RepoMetadata {
            repo_id: repo.id.clone(),
            revision: repo.revision,
            package_count: primary.len(),
            total_size_bytes: primary.iter().map(|r| r.size_bytes).sum(),
            primary,
        }
    }

    /// Serialize to the on-wire form.
    pub fn to_json(&self) -> String {
        let primary = self
            .primary
            .iter()
            .map(|r| {
                JsonObject::new()
                    .string("name", &r.name)
                    .number("epoch", r.epoch as f64)
                    .string("version", &r.version)
                    .string("release", &r.release)
                    .string("arch", r.arch.as_str())
                    .string("summary", &r.summary)
                    .number("size_bytes", r.size_bytes as f64)
                    .strings("provides", &r.provides)
                    .strings("requires", &r.requires)
                    .string("location", &r.location)
                    .build()
            })
            .collect();
        JsonObject::new()
            .string("repo_id", &self.repo_id)
            .number("revision", self.revision as f64)
            .number("package_count", self.package_count as f64)
            .number("total_size_bytes", self.total_size_bytes as f64)
            .field("primary", JsonValue::Array(primary))
            .build()
            .to_string_pretty()
    }

    /// Parse the on-wire form.
    pub fn from_json(s: &str) -> Result<Self, MetadataError> {
        let doc = JsonValue::parse(s)?;
        let shape = |m: &str| MetadataError::Shape(m.to_string());
        let str_field = |v: &JsonValue, key: &str| -> Result<String, MetadataError> {
            Ok(v.get(key)
                .and_then(JsonValue::as_str)
                .ok_or_else(|| shape(&format!("missing string field '{key}'")))?
                .to_string())
        };
        let u64_field = |v: &JsonValue, key: &str| -> Result<u64, MetadataError> {
            v.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| shape(&format!("missing numeric field '{key}'")))
        };
        let strings_field = |v: &JsonValue, key: &str| -> Result<Vec<String>, MetadataError> {
            v.get(key)
                .and_then(JsonValue::as_array)
                .ok_or_else(|| shape(&format!("missing array field '{key}'")))?
                .iter()
                .map(|item| {
                    item.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| shape(&format!("non-string item in '{key}'")))
                })
                .collect()
        };

        let mut primary = Vec::new();
        for rec in doc
            .get("primary")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| shape("missing array field 'primary'"))?
        {
            let arch_s = str_field(rec, "arch")?;
            primary.push(PrimaryRecord {
                name: str_field(rec, "name")?,
                epoch: u64_field(rec, "epoch")? as u32,
                version: str_field(rec, "version")?,
                release: str_field(rec, "release")?,
                arch: arch_s
                    .parse::<Arch>()
                    .map_err(|_| shape(&format!("unknown arch '{arch_s}'")))?,
                summary: str_field(rec, "summary")?,
                size_bytes: u64_field(rec, "size_bytes")?,
                provides: strings_field(rec, "provides")?,
                requires: strings_field(rec, "requires")?,
                location: str_field(rec, "location")?,
            });
        }
        Ok(RepoMetadata {
            repo_id: str_field(&doc, "repo_id")?,
            revision: u64_field(&doc, "revision")?,
            package_count: u64_field(&doc, "package_count")? as usize,
            total_size_bytes: u64_field(&doc, "total_size_bytes")?,
            primary,
        })
    }

    /// Names of packages added or upgraded in `newer` relative to `self`
    /// — the diff the paper's notification tooling reports.
    pub fn diff_new_or_upgraded(&self, newer: &RepoMetadata) -> Vec<String> {
        let mut out = Vec::new();
        for rec in &newer.primary {
            let best_old = self
                .primary
                .iter()
                .filter(|r| r.name == rec.name)
                .max_by(|a, b| a.evr().cmp(&b.evr()));
            match best_old {
                None => out.push(format!("{} {} (new)", rec.name, rec.evr())),
                Some(old) if rec.evr() > old.evr() => {
                    out.push(format!("{} {} -> {}", rec.name, old.evr(), rec.evr()))
                }
                Some(_) => {}
            }
        }
        out.sort();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xcbc_rpm::PackageBuilder;

    fn repo() -> Repository {
        let mut r = Repository::new("xsede", "XSEDE repo");
        r.add_package(
            PackageBuilder::new("gromacs", "4.6.5", "2.el6")
                .summary("molecular dynamics")
                .requires_simple("openmpi")
                .size_mb(50)
                .build(),
        );
        r.add_package(
            PackageBuilder::new("openmpi", "1.6.5", "1.el6")
                .size_mb(40)
                .build(),
        );
        r
    }

    #[test]
    fn generate_counts_and_sizes() {
        let md = repo().metadata();
        assert_eq!(md.package_count, 2);
        assert_eq!(md.total_size_bytes, 90 << 20);
        assert_eq!(md.repo_id, "xsede");
    }

    #[test]
    fn records_sorted_and_self_provide_included() {
        let md = repo().metadata();
        assert_eq!(md.primary[0].name, "gromacs");
        assert!(md.primary[0]
            .provides
            .iter()
            .any(|p| p.starts_with("gromacs =")));
        assert_eq!(md.primary[0].requires, vec!["openmpi"]);
        assert!(md.primary[0].location.ends_with(".rpm"));
    }

    #[test]
    fn json_roundtrip() {
        let md = repo().metadata();
        let json = md.to_json();
        let back = RepoMetadata::from_json(&json).unwrap();
        assert_eq!(back, md);
    }

    #[test]
    fn diff_detects_new_and_upgraded() {
        let mut r = repo();
        let old_md = r.metadata();
        r.add_package(PackageBuilder::new("gromacs", "5.0", "1.el6").build());
        r.add_package(PackageBuilder::new("lammps", "2014.06.28", "1").build());
        let new_md = r.metadata();
        let diff = old_md.diff_new_or_upgraded(&new_md);
        assert_eq!(diff.len(), 2);
        assert!(diff
            .iter()
            .any(|d| d.starts_with("gromacs 4.6.5-2.el6 -> 5.0")));
        assert!(diff
            .iter()
            .any(|d| d.contains("lammps") && d.contains("(new)")));
    }

    #[test]
    fn diff_empty_when_unchanged() {
        let md = repo().metadata();
        assert!(md.diff_new_or_upgraded(&md).is_empty());
    }
}
