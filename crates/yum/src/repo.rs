//! A Yum repository: identity, state, and the packages it carries.

use crate::metadata::RepoMetadata;
use xcbc_rpm::{Dependency, Evr, Package};

/// A package repository, e.g. `base`, `updates`, or the paper's `xsede`
/// repo at `http://cb-repo.iu.xsede.org/xsederepo/`.
#[derive(Debug, Clone)]
pub struct Repository {
    /// Short id used in `.repo` section headers (e.g. `xsede`).
    pub id: String,
    /// Human-readable name.
    pub name: String,
    /// Base URL of the repo.
    pub baseurl: String,
    /// Disabled repos are invisible to the solver.
    pub enabled: bool,
    /// Priority for `yum-plugin-priorities` (1 = highest; yum default 99).
    pub priority: u32,
    /// Whether GPG signature checking is on.
    pub gpgcheck: bool,
    /// Metadata revision, bumped on every package change (repomd revision).
    pub revision: u64,
    packages: Vec<Package>,
}

impl Repository {
    pub fn new(id: impl Into<String>, name: impl Into<String>) -> Self {
        let id = id.into();
        Repository {
            baseurl: format!("http://cb-repo.iu.xsede.org/{id}/"),
            id,
            name: name.into(),
            enabled: true,
            priority: 99,
            gpgcheck: true,
            revision: 0,
            packages: Vec::new(),
        }
    }

    /// Builder-style priority setter (the README for the XSEDE repo tells
    /// admins to install `yum-plugin-priorities` and set one).
    pub fn with_priority(mut self, priority: u32) -> Self {
        self.priority = priority;
        self
    }

    pub fn with_baseurl(mut self, url: impl Into<String>) -> Self {
        self.baseurl = url.into();
        self
    }

    pub fn disabled(mut self) -> Self {
        self.enabled = false;
        self
    }

    /// Add one package (createrepo + upload, in real life).
    pub fn add_package(&mut self, p: Package) {
        self.revision += 1;
        self.packages.push(p);
    }

    /// Add many packages.
    pub fn add_packages(&mut self, ps: impl IntoIterator<Item = Package>) {
        for p in ps {
            self.add_package(p);
        }
    }

    /// Remove every package with this name; returns how many were dropped.
    pub fn remove_package(&mut self, name: &str) -> usize {
        let before = self.packages.len();
        self.packages.retain(|p| p.name() != name);
        let dropped = before - self.packages.len();
        if dropped > 0 {
            self.revision += 1;
        }
        dropped
    }

    pub fn package_count(&self) -> usize {
        self.packages.len()
    }

    pub fn packages(&self) -> &[Package] {
        &self.packages
    }

    /// All candidates with the given name.
    pub fn by_name(&self, name: &str) -> Vec<&Package> {
        self.packages.iter().filter(|p| p.name() == name).collect()
    }

    /// Newest candidate with the given name.
    pub fn newest(&self, name: &str) -> Option<&Package> {
        self.by_name(name)
            .into_iter()
            .max_by(|a, b| a.nevra.evr.cmp(&b.nevra.evr))
    }

    /// Specific NEVR lookup.
    pub fn find(&self, name: &str, evr: &Evr) -> Option<&Package> {
        self.packages
            .iter()
            .find(|p| p.name() == name && p.evr() == evr)
    }

    /// Candidates satisfying a dependency (capability or file).
    pub fn whatprovides(&self, req: &Dependency) -> Vec<&Package> {
        self.packages.iter().filter(|p| p.satisfies(req)).collect()
    }

    /// Generate repo metadata (the `repodata/` a `createrepo` run makes).
    pub fn metadata(&self) -> RepoMetadata {
        RepoMetadata::generate(self)
    }

    /// Total payload size in bytes.
    pub fn total_size_bytes(&self) -> u64 {
        self.packages.iter().map(|p| p.size_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xcbc_rpm::PackageBuilder;

    fn repo() -> Repository {
        let mut r = Repository::new("xsede", "XSEDE National Integration Toolkit");
        r.add_package(PackageBuilder::new("R", "3.0.2", "1.el6").build());
        r.add_package(PackageBuilder::new("R", "3.1.0", "1.el6").build());
        r.add_package(
            PackageBuilder::new("openmpi", "1.6.5", "1.el6")
                .provides_versioned("mpi")
                .build(),
        );
        r
    }

    #[test]
    fn defaults() {
        let r = Repository::new("xsede", "x");
        assert!(r.enabled);
        assert_eq!(r.priority, 99);
        assert!(r.baseurl.contains("xsede"));
        assert_eq!(r.package_count(), 0);
    }

    #[test]
    fn newest_picks_highest() {
        let r = repo();
        assert_eq!(r.newest("R").unwrap().evr().version, "3.1.0");
        assert!(r.newest("nope").is_none());
    }

    #[test]
    fn whatprovides_capability() {
        let r = repo();
        let hits = r.whatprovides(&Dependency::parse("mpi >= 1.6"));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].name(), "openmpi");
    }

    #[test]
    fn revision_bumps_on_change() {
        let mut r = repo();
        let rev = r.revision;
        r.add_package(PackageBuilder::new("hdf5", "1.8.9", "1").build());
        assert_eq!(r.revision, rev + 1);
        assert_eq!(r.remove_package("hdf5"), 1);
        assert_eq!(r.revision, rev + 2);
        assert_eq!(r.remove_package("hdf5"), 0);
        assert_eq!(r.revision, rev + 2, "no-op removal must not bump revision");
    }

    #[test]
    fn find_exact() {
        let r = repo();
        assert!(r.find("R", &Evr::parse("3.0.2-1.el6")).is_some());
        assert!(r.find("R", &Evr::parse("9.9-1")).is_none());
    }
}
