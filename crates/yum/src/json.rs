//! Minimal JSON tree: writer + recursive-descent parser.
//!
//! The build environment cannot fetch `serde_json`, and repo metadata is
//! the workspace's only real wire format, so yum carries its own small
//! JSON implementation: objects, arrays, strings (with escapes), integer
//! and float numbers, booleans, and null. Key order is preserved on both
//! sides, which keeps `to_json` output byte-stable for a given document.

use std::fmt::Write as _;

/// A parsed JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    /// All JSON numbers are held as f64 (integral values round-trip
    /// exactly up to 2^53, far beyond any size or revision we store).
    Number(f64),
    String(String),
    Array(Vec<JsonValue>),
    Object(Vec<(String, JsonValue)>),
}

/// Error from [`JsonValue::parse`] with a byte offset for context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

impl JsonValue {
    pub fn parse(s: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Pretty-print with two-space indentation (serde_json-style).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => {
                out.push_str(if *b { "true" } else { "false" });
            }
            JsonValue::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            JsonValue::String(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad_in);
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&pad);
                out.push(']');
            }
            JsonValue::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    // --- typed accessors used by document mappers ---

    pub fn get<'a>(&'a self, key: &str) -> Option<&'a JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') if self.eat_literal("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(JsonValue::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for package
                            // metadata; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("surrogate \\u escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| JsonError {
                offset: start,
                message: format!("bad number '{text}'"),
            })
    }
}

/// Convenience: an object builder that keeps insertion order.
#[derive(Debug, Default)]
pub struct JsonObject {
    fields: Vec<(String, JsonValue)>,
}

impl JsonObject {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn field(mut self, key: &str, value: JsonValue) -> Self {
        self.fields.push((key.to_string(), value));
        self
    }

    pub fn string(self, key: &str, value: &str) -> Self {
        self.field(key, JsonValue::String(value.to_string()))
    }

    pub fn number(self, key: &str, value: f64) -> Self {
        self.field(key, JsonValue::Number(value))
    }

    pub fn strings(self, key: &str, values: &[String]) -> Self {
        self.field(
            key,
            JsonValue::Array(
                values
                    .iter()
                    .map(|s| JsonValue::String(s.clone()))
                    .collect(),
            ),
        )
    }

    pub fn build(self) -> JsonValue {
        JsonValue::Object(self.fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_nested() {
        let doc = JsonObject::new()
            .string("id", "xsede")
            .number("revision", 3.0)
            .field(
                "flags",
                JsonValue::Array(vec![JsonValue::Bool(true), JsonValue::Null]),
            )
            .field(
                "pkgs",
                JsonValue::Array(vec![JsonObject::new()
                    .string("name", "gromacs \"fast\"\n")
                    .number("size", 52428800.0)
                    .build()]),
            )
            .build();
        let text = doc.to_string_pretty();
        let back = JsonValue::parse(&text).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn accessors() {
        let v = JsonValue::parse(r#"{"a": 3, "b": "x", "c": [1, 2]}"#).unwrap();
        assert_eq!(v.get("a").and_then(JsonValue::as_u64), Some(3));
        assert_eq!(v.get("b").and_then(JsonValue::as_str), Some("x"));
        assert_eq!(
            v.get("c").and_then(JsonValue::as_array).map(<[_]>::len),
            Some(2)
        );
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parse_errors_carry_offset() {
        let e = JsonValue::parse("{\"a\": }").unwrap_err();
        assert!(e.offset > 0);
        assert!(JsonValue::parse("[1, 2").is_err());
        assert!(JsonValue::parse("[] trailing").is_err());
    }

    #[test]
    fn escapes_round_trip() {
        let doc = JsonValue::String("tab\t quote\" back\\ nl\n ctrl\u{1}".to_string());
        let back = JsonValue::parse(&doc.to_string_pretty()).unwrap();
        assert_eq!(back, doc);
    }
}
