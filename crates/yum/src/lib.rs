//! # xcbc-yum — Yum repository substrate
//!
//! Reimplements the parts of Yum the XNIT toolkit relies on (the paper:
//! "XNIT is based on the Yum repository for installation or updates of
//! RPMs"): repository objects with metadata, `.repo` configuration files
//! (the paper's two setup methods — the `xsede-release` repo RPM, or a
//! hand-written `/etc/yum.repos.d/xsede.repo` plus `yum-plugin-priorities`),
//! a dependency solver with best-candidate selection, repository
//! priorities, `yum check-update`/`yum update` semantics, update
//! notification policies, mirror failover, and transaction history.
//!
//! ```
//! use xcbc_rpm::{PackageBuilder, RpmDb};
//! use xcbc_yum::{Repository, YumConfig, Yum};
//!
//! let mut repo = Repository::new("xsede", "XSEDE National Integration Toolkit");
//! repo.add_package(PackageBuilder::new("gromacs", "4.6.5", "2.el6")
//!     .requires_simple("openmpi").build());
//! repo.add_package(PackageBuilder::new("openmpi", "1.6.5", "1.el6").build());
//!
//! let mut yum = Yum::new(YumConfig::default());
//! yum.add_repository(repo);
//! let mut db = RpmDb::new();
//! yum.install(&mut db, &["gromacs"]).unwrap();
//! assert!(db.is_installed("gromacs") && db.is_installed("openmpi"));
//! ```

pub mod cache;
pub mod deplist;
pub mod fingerprint;
pub mod groups;
pub mod history;
pub mod json;
pub mod metadata;
pub mod mirror;
pub mod notifier;
pub mod priorities;
pub mod repo;
pub mod repoconfig;
pub mod skew;
pub mod solvecache;
pub mod solver;
pub mod updates;

pub use cache::MetadataCache;
pub use deplist::{deplist, render_deplist, DepListEntry};
pub use fingerprint::{db_fingerprint, repo_fingerprint, repos_fingerprint, Fnv64};
pub use groups::{group_install, PackageGroupDef};
pub use history::{HistoryEntry, YumHistory};
pub use metadata::{MetadataError, PrimaryRecord, RepoMetadata};
pub use mirror::{
    FetchOptions, FetchReport, Mirror, MirrorList, MirrorOutcome, ResilientFetch, TracedFetch,
    MIN_BANDWIDTH_MBPS,
};
pub use notifier::{NotificationReport, UpdateNotifier, UpdatePolicy};
pub use priorities::apply_priorities;
pub use repo::Repository;
pub use repoconfig::{
    parse_repo_file, render_repo_file, RepoConfig, RepoFileError, XSEDE_REPO_FILE,
};
pub use skew::{solve_across_skew, SkewGroup, SkewReport};
pub use solvecache::{CacheStats, ShardedSolveCache, SolveCache, SOLVECACHE_TRACE_SOURCE};
pub use solver::{Solution, SolveError, SolveKind, SolveRequest, Solver};
pub use updates::{CheckUpdate, UpdateKind};

use std::sync::Arc;
use xcbc_rpm::{RpmDb, TransactionReport, TransactionSet};

/// Top-level Yum engine configuration (`/etc/yum.conf` equivalent).
#[derive(Debug, Clone)]
pub struct YumConfig {
    /// Honor repository priorities (requires `yum-plugin-priorities` in the
    /// paper's manual XNIT setup path).
    pub plugin_priorities: bool,
    /// Host architecture.
    pub host_arch: xcbc_rpm::Arch,
    /// `obsoletes=1`: process Obsoletes during updates.
    pub obsoletes: bool,
}

impl Default for YumConfig {
    fn default() -> Self {
        YumConfig {
            plugin_priorities: true,
            host_arch: xcbc_rpm::Arch::X86_64,
            obsoletes: true,
        }
    }
}

/// The Yum engine: a set of repositories plus config, operating on a
/// host's [`RpmDb`].
#[derive(Debug)]
pub struct Yum {
    config: YumConfig,
    repositories: Vec<Repository>,
    history: YumHistory,
    solve_cache: Option<Arc<SolveCache>>,
    cache_salt: u64,
}

impl Default for Yum {
    fn default() -> Self {
        Yum::new(YumConfig::default())
    }
}

impl Yum {
    pub fn new(config: YumConfig) -> Self {
        Yum {
            config,
            repositories: Vec::new(),
            history: YumHistory::new(),
            solve_cache: None,
            cache_salt: 0,
        }
    }

    /// Attach a (typically fleet-shared) [`SolveCache`]; subsequent
    /// [`Yum::solve`]/[`Yum::install`]/[`Yum::update`] calls answer
    /// repeated requests from the cache instead of re-walking the
    /// dependency closure.
    pub fn with_solve_cache(mut self, cache: Arc<SolveCache>) -> Self {
        self.solve_cache = Some(cache);
        self
    }

    /// The attached solve cache, if any.
    pub fn solve_cache(&self) -> Option<&Arc<SolveCache>> {
        self.solve_cache.as_ref()
    }

    /// Salt every cache key this engine computes (see
    /// [`SolveCache::salted_key`]). The multi-tenant service sets a
    /// per-tenant salt here so engine entry points that route through
    /// an attached cache — the XNIT overlay deploy path in particular —
    /// keep tenants' entries disjoint. Salt `0` (the default) is the
    /// historical unsalted behavior.
    pub fn with_cache_salt(mut self, salt: u64) -> Self {
        self.cache_salt = salt;
        self
    }

    /// The cache-key salt in effect (0 = unsalted).
    pub fn cache_salt(&self) -> u64 {
        self.cache_salt
    }

    pub fn config(&self) -> &YumConfig {
        &self.config
    }

    /// Register a repository. Re-adding an id replaces the existing repo
    /// (the way dropping a new file in `/etc/yum.repos.d/` does).
    pub fn add_repository(&mut self, repo: Repository) {
        if let Some(existing) = self.repositories.iter_mut().find(|r| r.id == repo.id) {
            *existing = repo;
        } else {
            self.repositories.push(repo);
        }
    }

    /// Remove a repository by id; returns true if it existed.
    pub fn remove_repository(&mut self, id: &str) -> bool {
        let before = self.repositories.len();
        self.repositories.retain(|r| r.id != id);
        self.repositories.len() != before
    }

    pub fn repositories(&self) -> &[Repository] {
        &self.repositories
    }

    pub fn repository(&self, id: &str) -> Option<&Repository> {
        self.repositories.iter().find(|r| r.id == id)
    }

    pub fn repository_mut(&mut self, id: &str) -> Option<&mut Repository> {
        self.repositories.iter_mut().find(|r| r.id == id)
    }

    pub fn history(&self) -> &YumHistory {
        &self.history
    }

    /// Build a solver view over the enabled repositories (with priorities
    /// applied when the plugin is active).
    pub fn solver(&self) -> Solver<'_> {
        Solver::new(&self.repositories, &self.config)
    }

    /// Resolve a typed [`SolveRequest`] — through the attached
    /// [`SolveCache`] when one is present, directly otherwise. The
    /// solver is deterministic, so a cache hit returns byte-for-byte
    /// the solution a fresh solve would.
    pub fn solve(&self, db: &RpmDb, request: &SolveRequest) -> Result<Arc<Solution>, SolveError> {
        match &self.solve_cache {
            Some(cache) => cache.get_or_solve_salted(
                self.cache_salt,
                &self.repositories,
                &self.config,
                db,
                request,
            ),
            None => self.solver().resolve(db, request).map(Arc::new),
        }
    }

    /// `yum install <names...>`: resolve, check, and run.
    pub fn install(
        &mut self,
        db: &mut RpmDb,
        names: &[&str],
    ) -> Result<TransactionReport, SolveError> {
        let request = SolveRequest::install(names.iter().copied());
        let solution = self.solve(db, &request)?;
        if solution.is_empty() {
            return Ok(TransactionReport::default());
        }
        let tx = (*solution).clone().into_transaction();
        let report = tx.run(db).map_err(SolveError::Transaction)?;
        self.history
            .record(&format!("install {}", names.join(" ")), &report);
        Ok(report)
    }

    /// `yum check-update`: list available updates without applying them.
    pub fn check_update(&self, db: &RpmDb) -> Vec<CheckUpdate> {
        updates::check_update(&self.repositories, &self.config, db)
    }

    /// `yum update`: apply every available update (optionally limited to
    /// `names`), resolving any new dependencies updates pull in.
    pub fn update(
        &mut self,
        db: &mut RpmDb,
        names: Option<&[&str]>,
    ) -> Result<TransactionReport, SolveError> {
        let request = match names {
            Some(ns) => SolveRequest::update(ns.iter().copied()),
            None => SolveRequest::update_all(),
        };
        let solution = self.solve(db, &request)?;
        if solution.is_empty() {
            return Ok(TransactionReport::default());
        }
        let tx: TransactionSet = (*solution).clone().into_transaction();
        let report = tx.run(db).map_err(SolveError::Transaction)?;
        self.history.record("update", &report);
        Ok(report)
    }

    /// `yum erase <name>`.
    pub fn erase(&mut self, db: &mut RpmDb, name: &str) -> Result<TransactionReport, SolveError> {
        let mut tx = TransactionSet::new();
        tx.add_erase(name);
        let report = tx.run(db).map_err(SolveError::Transaction)?;
        self.history.record(&format!("erase {name}"), &report);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xcbc_rpm::PackageBuilder;

    fn xnit_like_yum() -> Yum {
        let mut repo = Repository::new("xsede", "XSEDE repo");
        repo.add_package(
            PackageBuilder::new("openmpi", "1.6.5", "1.el6")
                .provides_versioned("mpi")
                .build(),
        );
        repo.add_package(
            PackageBuilder::new("gromacs", "4.6.5", "2.el6")
                .requires_simple("mpi")
                .build(),
        );
        repo.add_package(PackageBuilder::new("R", "3.0.2", "1.el6").build());
        let mut yum = Yum::new(YumConfig::default());
        yum.add_repository(repo);
        yum
    }

    #[test]
    fn install_pulls_dependencies() {
        let mut yum = xnit_like_yum();
        let mut db = RpmDb::new();
        let report = yum.install(&mut db, &["gromacs"]).unwrap();
        assert_eq!(report.installed.len(), 2);
        assert!(db.is_installed("openmpi"));
        assert!(db.verify().is_empty());
    }

    #[test]
    fn install_unknown_package_errors() {
        let mut yum = xnit_like_yum();
        let mut db = RpmDb::new();
        let err = yum.install(&mut db, &["no-such-package"]).unwrap_err();
        assert!(matches!(err, SolveError::NothingProvides { .. }));
    }

    #[test]
    fn update_noop_when_current() {
        let mut yum = xnit_like_yum();
        let mut db = RpmDb::new();
        yum.install(&mut db, &["R"]).unwrap();
        let report = yum.update(&mut db, None).unwrap();
        assert!(report.upgraded.is_empty());
    }

    #[test]
    fn update_applies_new_version() {
        let mut yum = xnit_like_yum();
        let mut db = RpmDb::new();
        yum.install(&mut db, &["R"]).unwrap();
        yum.repository_mut("xsede")
            .unwrap()
            .add_package(PackageBuilder::new("R", "3.1.0", "1.el6").build());
        let updates = yum.check_update(&db);
        assert_eq!(updates.len(), 1);
        let report = yum.update(&mut db, None).unwrap();
        assert_eq!(report.upgraded.len(), 1);
        assert_eq!(db.newest("R").unwrap().package.evr().version, "3.1.0");
    }

    #[test]
    fn re_adding_repo_replaces() {
        let mut yum = xnit_like_yum();
        let empty = Repository::new("xsede", "replaced");
        yum.add_repository(empty);
        assert_eq!(yum.repositories().len(), 1);
        assert_eq!(yum.repository("xsede").unwrap().package_count(), 0);
    }

    #[test]
    fn history_records_operations() {
        let mut yum = xnit_like_yum();
        let mut db = RpmDb::new();
        yum.install(&mut db, &["R"]).unwrap();
        yum.erase(&mut db, "R").unwrap();
        assert_eq!(yum.history().entries().len(), 2);
        assert!(yum.history().entries()[0].command.contains("install"));
    }
}
