//! Version-skew window solves for rolling updates.
//!
//! Mid-campaign, a fleet is a mixed-NEVRA population: updated nodes,
//! drained nodes about to update, and pending nodes still on the old
//! package set. The campaign must prove the *next* transaction still
//! solves against every distinct database state in that window — without
//! paying one solver walk per node. Nodes are grouped by
//! [`db_fingerprint`], one solve runs per distinct state (answered from
//! the shared [`SolveCache`] when warm), and the [`SkewReport`] says
//! exactly which nodes — if any — the target no longer solves for.

use std::collections::BTreeMap;
use std::sync::Arc;

use xcbc_rpm::RpmDb;

use crate::fingerprint::db_fingerprint;
use crate::repo::Repository;
use crate::solvecache::SolveCache;
use crate::solver::{Solution, SolveError, SolveRequest};
use crate::YumConfig;

/// One distinct database state in the skew window and its solve outcome.
#[derive(Debug)]
pub struct SkewGroup {
    /// [`db_fingerprint`] of the shared database state.
    pub fingerprint: u64,
    /// Node names sharing this state, sorted.
    pub nodes: Vec<String>,
    /// The solve for the target request against this state.
    pub result: Result<Arc<Solution>, SolveError>,
}

/// Outcome of probing one request across every database state in a
/// skew window.
#[derive(Debug, Default)]
pub struct SkewReport {
    /// Groups in ascending fingerprint order.
    pub groups: Vec<SkewGroup>,
}

impl SkewReport {
    /// True when the request solves against every state in the window.
    pub fn is_solvable(&self) -> bool {
        self.groups.iter().all(|g| g.result.is_ok())
    }

    /// Number of distinct database states probed (== solves performed).
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Total nodes covered by the probe.
    pub fn node_count(&self) -> usize {
        self.groups.iter().map(|g| g.nodes.len()).sum()
    }

    /// Nodes the request does not solve for, with the failing group's
    /// error, sorted by node name.
    pub fn unsolvable_nodes(&self) -> Vec<(&str, &SolveError)> {
        let mut out: Vec<(&str, &SolveError)> = self
            .groups
            .iter()
            .filter_map(|g| g.result.as_ref().err().map(|e| (g, e)))
            .flat_map(|(g, e)| g.nodes.iter().map(move |n| (n.as_str(), e)))
            .collect();
        out.sort_by_key(|(n, _)| *n);
        out
    }

    /// One-line summary for campaign logs.
    pub fn render(&self) -> String {
        format!(
            "skew window: {} nodes in {} states, {}",
            self.node_count(),
            self.group_count(),
            if self.is_solvable() {
                "all solvable".to_string()
            } else {
                format!("{} nodes unsolvable", self.unsolvable_nodes().len())
            }
        )
    }
}

/// Probe `request` against every distinct database state in `dbs`
/// (node name → that node's [`RpmDb`]). One solve runs per distinct
/// [`db_fingerprint`], answered from `cache` when warm, so a 100-node
/// fleet in 3 states costs 3 solves, not 100.
pub fn solve_across_skew(
    cache: &SolveCache,
    repos: &[Repository],
    config: &YumConfig,
    dbs: &BTreeMap<String, RpmDb>,
    request: &SolveRequest,
) -> SkewReport {
    // Group nodes by database state. BTreeMap keys are visited in
    // sorted order, so group membership and report order are
    // deterministic regardless of how `dbs` was built.
    let mut groups: BTreeMap<u64, (Vec<String>, &RpmDb)> = BTreeMap::new();
    for (node, db) in dbs {
        groups
            .entry(db_fingerprint(db))
            .or_insert_with(|| (Vec::new(), db))
            .0
            .push(node.clone());
    }
    SkewReport {
        groups: groups
            .into_iter()
            .map(|(fingerprint, (nodes, db))| SkewGroup {
                fingerprint,
                nodes,
                result: cache.get_or_solve(repos, config, db, request),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xcbc_rpm::PackageBuilder;

    fn repo() -> Repository {
        let mut repo = Repository::new("xsede", "XSEDE repo");
        repo.add_package(PackageBuilder::new("wrf", "3.5", "1.el6").build());
        repo.add_package(PackageBuilder::new("gromacs", "4.6.5", "2.el6").build());
        repo
    }

    fn db_with(names: &[&str]) -> RpmDb {
        let mut db = RpmDb::new();
        for n in names {
            db.install(PackageBuilder::new(n, "1.0", "1.el6").build());
        }
        db
    }

    #[test]
    fn groups_by_distinct_db_state() {
        let repos = vec![repo()];
        let config = YumConfig::default();
        let cache = SolveCache::new();
        let mut dbs = BTreeMap::new();
        dbs.insert("compute-0-0".to_string(), db_with(&["base"]));
        dbs.insert("compute-0-1".to_string(), db_with(&["base"]));
        dbs.insert("compute-0-2".to_string(), db_with(&["base", "extra"]));
        let req = SolveRequest::install(["wrf"]);
        let report = solve_across_skew(&cache, &repos, &config, &dbs, &req);
        assert_eq!(report.group_count(), 2, "two distinct states");
        assert_eq!(report.node_count(), 3);
        assert!(report.is_solvable());
        assert_eq!(
            report.render(),
            "skew window: 3 nodes in 2 states, all solvable"
        );
        // exactly one solve per state: both misses, zero hits wasted
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn repeated_probe_hits_cache() {
        let repos = vec![repo()];
        let config = YumConfig::default();
        let cache = SolveCache::new();
        let mut dbs = BTreeMap::new();
        dbs.insert("a".to_string(), db_with(&["base"]));
        dbs.insert("b".to_string(), db_with(&["base"]));
        let req = SolveRequest::install(["gromacs"]);
        solve_across_skew(&cache, &repos, &config, &dbs, &req);
        solve_across_skew(&cache, &repos, &config, &dbs, &req);
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.hits), (1, 1));
    }

    #[test]
    fn unsolvable_nodes_are_named() {
        let repos = vec![repo()];
        let config = YumConfig::default();
        let cache = SolveCache::new();
        let mut dbs = BTreeMap::new();
        dbs.insert("ok-node".to_string(), db_with(&["base"]));
        let req = SolveRequest::install(["no-such-package"]);
        let report = solve_across_skew(&cache, &repos, &config, &dbs, &req);
        assert!(!report.is_solvable());
        let bad = report.unsolvable_nodes();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].0, "ok-node");
        assert!(report.render().contains("1 nodes unsolvable"));
    }

    #[test]
    fn empty_window_is_trivially_solvable() {
        let repos = vec![repo()];
        let cache = SolveCache::new();
        let report = solve_across_skew(
            &cache,
            &repos,
            &YumConfig::default(),
            &BTreeMap::new(),
            &SolveRequest::update_all(),
        );
        assert!(report.is_solvable());
        assert_eq!(report.group_count(), 0);
    }
}
