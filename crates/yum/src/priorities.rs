//! `yum-plugin-priorities` semantics.
//!
//! The paper's manual XNIT setup path starts with "install the
//! yum-plugin-priorities package". The plugin's rule: if a package *name*
//! appears in repositories with different priorities, candidates from any
//! repository with a larger (= worse) priority number are excluded
//! entirely — even if they carry a newer version. This protects a
//! production cluster's base OS from being hijacked by an add-on repo,
//! while still letting the add-on repo supply packages the base lacks.

use crate::repo::Repository;
use std::collections::HashMap;
use xcbc_rpm::Package;

/// Apply the priorities rule across enabled repositories, returning the
/// surviving `(repo, package)` candidates.
pub fn apply_priorities<'a>(repos: &[&'a Repository]) -> Vec<(&'a Repository, &'a Package)> {
    // name -> best (lowest) priority seen
    let mut best: HashMap<&str, u32> = HashMap::new();
    for repo in repos {
        for p in repo.packages() {
            best.entry(p.name())
                .and_modify(|b| *b = (*b).min(repo.priority))
                .or_insert(repo.priority);
        }
    }
    let mut out = Vec::new();
    for repo in repos {
        for p in repo.packages() {
            if repo.priority <= best[p.name()] {
                out.push((*repo, p));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xcbc_rpm::PackageBuilder;

    fn repo(id: &str, prio: u32, pkgs: Vec<Package>) -> Repository {
        let mut r = Repository::new(id, id).with_priority(prio);
        r.add_packages(pkgs);
        r
    }

    #[test]
    fn higher_priority_shadows_same_name() {
        let base = repo(
            "base",
            1,
            vec![PackageBuilder::new("python", "2.6.6", "52").build()],
        );
        let xsede = repo(
            "xsede",
            50,
            vec![PackageBuilder::new("python", "2.7.5", "1").build()],
        );
        let repos = [&base, &xsede];
        let survivors = apply_priorities(&repos);
        assert_eq!(survivors.len(), 1);
        assert_eq!(survivors[0].1.evr().version, "2.6.6");
    }

    #[test]
    fn unique_names_survive_regardless_of_priority() {
        let base = repo(
            "base",
            1,
            vec![PackageBuilder::new("bash", "4.1.2", "15").build()],
        );
        let xsede = repo(
            "xsede",
            50,
            vec![PackageBuilder::new("gromacs", "4.6.5", "2").build()],
        );
        let repos = [&base, &xsede];
        let survivors = apply_priorities(&repos);
        assert_eq!(survivors.len(), 2);
    }

    #[test]
    fn equal_priorities_keep_both() {
        let a = repo(
            "a",
            50,
            vec![PackageBuilder::new("R", "3.0.2", "1").build()],
        );
        let b = repo(
            "b",
            50,
            vec![PackageBuilder::new("R", "3.1.0", "1").build()],
        );
        let repos = [&a, &b];
        let survivors = apply_priorities(&repos);
        assert_eq!(survivors.len(), 2, "equal priority does not shadow");
    }

    #[test]
    fn multiple_versions_within_one_repo_survive() {
        let a = repo(
            "a",
            50,
            vec![
                PackageBuilder::new("kernel", "2.6.32", "431").build(),
                PackageBuilder::new("kernel", "2.6.32", "504").build(),
            ],
        );
        let repos = [&a];
        assert_eq!(apply_priorities(&repos).len(), 2);
    }

    #[test]
    fn empty_input() {
        let repos: [&Repository; 0] = [];
        assert!(apply_priorities(&repos).is_empty());
    }
}
