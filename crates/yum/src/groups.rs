//! Yum package groups (`yum groupinstall`).
//!
//! The XSEDE repo organizes its software into comps-style groups so an
//! administrator can pull a whole capability class at once — the
//! "one-time installations of any particular software capability" §1
//! promises, at group granularity.

use crate::solver::SolveError;
use crate::Yum;
use serde::{Deserialize, Serialize};
use xcbc_rpm::{RpmDb, TransactionReport};

/// A comps-style package group.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PackageGroupDef {
    /// Group id (`@hpc-libraries`).
    pub id: String,
    pub name: String,
    /// Packages always installed with the group.
    pub mandatory: Vec<String>,
    /// Packages installed unless excluded.
    pub default: Vec<String>,
    /// Packages only installed on request.
    pub optional: Vec<String>,
}

impl PackageGroupDef {
    pub fn new(id: &str, name: &str) -> Self {
        PackageGroupDef {
            id: id.to_string(),
            name: name.to_string(),
            mandatory: Vec::new(),
            default: Vec::new(),
            optional: Vec::new(),
        }
    }

    pub fn mandatory_pkg(mut self, p: &str) -> Self {
        self.mandatory.push(p.to_string());
        self
    }

    pub fn default_pkg(mut self, p: &str) -> Self {
        self.default.push(p.to_string());
        self
    }

    pub fn optional_pkg(mut self, p: &str) -> Self {
        self.optional.push(p.to_string());
        self
    }

    /// Packages a plain `groupinstall` pulls (mandatory + default).
    pub fn install_set(&self) -> Vec<&str> {
        self.mandatory
            .iter()
            .chain(self.default.iter())
            .map(String::as_str)
            .collect()
    }
}

/// `yum groupinstall <group>` against a group catalog.
pub fn group_install(
    yum: &mut Yum,
    db: &mut RpmDb,
    groups: &[PackageGroupDef],
    group_id: &str,
    with_optional: bool,
) -> Result<TransactionReport, SolveError> {
    let group = groups
        .iter()
        .find(|g| g.id == group_id || g.name == group_id)
        .ok_or_else(|| SolveError::NothingProvides {
            what: format!("@{group_id}"),
            needed_by: String::new(),
        })?;
    let mut names = group.install_set();
    if with_optional {
        names.extend(group.optional.iter().map(String::as_str));
    }
    yum.install(db, &names)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Repository, YumConfig};
    use xcbc_rpm::PackageBuilder;

    fn setup() -> (Yum, Vec<PackageGroupDef>) {
        let mut repo = Repository::new("xsede", "XSEDE");
        for name in ["openmpi", "fftw", "hdf5", "gromacs", "lammps", "papi"] {
            let mut b = PackageBuilder::new(name, "1.0", "1.el6");
            if name == "gromacs" || name == "lammps" {
                b = b.requires_simple("openmpi").requires_simple("fftw");
            }
            repo.add_package(b.build());
        }
        let mut yum = Yum::new(YumConfig::default());
        yum.add_repository(repo);
        let groups = vec![
            PackageGroupDef::new("hpc-md", "Molecular Dynamics")
                .mandatory_pkg("gromacs")
                .default_pkg("lammps")
                .optional_pkg("papi"),
            PackageGroupDef::new("hpc-io", "Parallel I/O").mandatory_pkg("hdf5"),
        ];
        (yum, groups)
    }

    #[test]
    fn groupinstall_pulls_mandatory_default_and_deps() {
        let (mut yum, groups) = setup();
        let mut db = RpmDb::new();
        group_install(&mut yum, &mut db, &groups, "hpc-md", false).unwrap();
        for p in ["gromacs", "lammps", "openmpi", "fftw"] {
            assert!(db.is_installed(p), "{p}");
        }
        assert!(!db.is_installed("papi"), "optional not pulled by default");
        assert!(db.verify().is_empty());
    }

    #[test]
    fn groupinstall_with_optional() {
        let (mut yum, groups) = setup();
        let mut db = RpmDb::new();
        group_install(&mut yum, &mut db, &groups, "hpc-md", true).unwrap();
        assert!(db.is_installed("papi"));
    }

    #[test]
    fn group_lookup_by_name_too() {
        let (mut yum, groups) = setup();
        let mut db = RpmDb::new();
        group_install(&mut yum, &mut db, &groups, "Parallel I/O", false).unwrap();
        assert!(db.is_installed("hdf5"));
    }

    #[test]
    fn unknown_group_errors() {
        let (mut yum, groups) = setup();
        let mut db = RpmDb::new();
        let err = group_install(&mut yum, &mut db, &groups, "nope", false).unwrap_err();
        assert!(err.to_string().contains("@nope"));
    }

    #[test]
    fn install_set_order() {
        let g = PackageGroupDef::new("g", "G")
            .mandatory_pkg("a")
            .default_pkg("b")
            .optional_pkg("c");
        assert_eq!(g.install_set(), vec!["a", "b"]);
    }
}
