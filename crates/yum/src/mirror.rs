//! Mirror lists and failover.
//!
//! Yum fetches metadata and packages from a list of mirrors, falling back
//! down the list on failure. We model latency and availability so the
//! provisioning timelines in `xcbc-rocks`/`xcbc-core` can account for
//! download time, and so failure injection can exercise retry paths.

use rand::Rng;
use serde::{Deserialize, Serialize};
use xcbc_fault::{retry_with, FaultInjector, InjectionPoint, RetryPolicy};
use xcbc_sim::{SimTime, TraceEvent, BACKOFF_PREFIX};

/// Trace source tag for mirror fetch events.
const TRACE_SOURCE: &str = "yum.mirror";

/// Floor for [`Mirror::bandwidth_mbps`]: a mirror this slow is
/// effectively dead, but fetch times stay finite and positive.
pub const MIN_BANDWIDTH_MBPS: f64 = 1e-3;

/// One mirror of a repository.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mirror {
    pub url: String,
    /// Sustained throughput in MB/s.
    pub bandwidth_mbps: f64,
    /// Round-trip latency in milliseconds.
    pub latency_ms: f64,
    /// Probability a fetch from this mirror fails (0.0..=1.0).
    pub failure_rate: f64,
}

impl Mirror {
    /// Build a mirror. Bandwidth is floored at [`MIN_BANDWIDTH_MBPS`]
    /// and latency at zero, so zero/negative inputs cannot produce
    /// infinite or negative fetch times.
    pub fn new(url: impl Into<String>, bandwidth_mbps: f64, latency_ms: f64) -> Self {
        Mirror {
            url: url.into(),
            bandwidth_mbps: bandwidth_mbps.max(MIN_BANDWIDTH_MBPS),
            latency_ms: latency_ms.max(0.0),
            failure_rate: 0.0,
        }
    }

    pub fn with_failure_rate(mut self, rate: f64) -> Self {
        self.failure_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Seconds to fetch `bytes` from this mirror, if it succeeds.
    /// Guards against a zero/negative `bandwidth_mbps` written directly
    /// into the (public) field after construction.
    pub fn fetch_seconds(&self, bytes: u64) -> f64 {
        let bandwidth = self.bandwidth_mbps.max(MIN_BANDWIDTH_MBPS);
        self.latency_ms.max(0.0) / 1000.0 + (bytes as f64 / (1024.0 * 1024.0)) / bandwidth
    }
}

/// Outcome of a fetch attempt across the mirror list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MirrorOutcome {
    /// Mirror that served the fetch, if any.
    pub served_by: Option<String>,
    /// Mirrors tried and failed first.
    pub failed: Vec<String>,
    /// Total wall seconds including failed attempts (each failed attempt
    /// costs its latency as a timeout).
    pub seconds: f64,
}

impl MirrorOutcome {
    pub fn succeeded(&self) -> bool {
        self.served_by.is_some()
    }
}

/// An ordered list of mirrors with failover.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MirrorList {
    pub mirrors: Vec<Mirror>,
}

impl MirrorList {
    pub fn new(mirrors: Vec<Mirror>) -> Self {
        MirrorList { mirrors }
    }

    /// Attempt to fetch `bytes`, walking the list in order, using `rng`
    /// for failure sampling. Failed attempts cost 3 timeout-latencies
    /// (yum's default retry behavior per mirror).
    pub fn fetch<R: Rng>(&self, bytes: u64, rng: &mut R) -> MirrorOutcome {
        let mut outcome = MirrorOutcome {
            served_by: None,
            failed: Vec::new(),
            seconds: 0.0,
        };
        for m in &self.mirrors {
            let fails = rng.gen_bool(m.failure_rate);
            if fails {
                outcome.failed.push(m.url.clone());
                outcome.seconds += 3.0 * m.latency_ms / 1000.0;
                continue;
            }
            outcome.seconds += m.fetch_seconds(bytes);
            outcome.served_by = Some(m.url.clone());
            break;
        }
        outcome
    }

    /// Deterministic best-case fetch (first healthy mirror, no sampling).
    pub fn fetch_seconds_best_case(&self, bytes: u64) -> Option<f64> {
        self.mirrors.first().map(|m| m.fetch_seconds(bytes))
    }

    /// Fetch `bytes` under fault injection with retry/backoff.
    ///
    /// Each attempt walks the mirror list in order; a mirror fails the
    /// attempt when the injector schedules a `mirror.fetch` fault for
    /// its URL (the mirror's own `failure_rate` is also sampled, from a
    /// plan-seeded stream, so legacy flakiness stays deterministic
    /// under a fault plan). When every mirror fails, the whole pass is
    /// retried under `policy` with exponential backoff; the backoff
    /// seconds are reported separately so callers can charge them to an
    /// install `Timeline`.
    pub fn fetch_resilient(
        &self,
        bytes: u64,
        injector: &mut FaultInjector,
        policy: &RetryPolicy,
    ) -> ResilientFetch {
        self.fetch_resilient_traced(bytes, injector, policy, SimTime::ZERO)
            .fetch
    }

    /// [`MirrorList::fetch_resilient`] that also records the fetch as
    /// trace spans on the shared timebase, starting at `start`: one
    /// span per mirror attempt (`timeout <url>` for a failed attempt at
    /// yum's 3-latency cost, `fetch <url>` for the transfer that
    /// served), plus one [`BACKOFF_PREFIX`] span for any retry backoff
    /// charged between passes.
    pub fn fetch_resilient_traced(
        &self,
        bytes: u64,
        injector: &mut FaultInjector,
        policy: &RetryPolicy,
        start: impl Into<SimTime>,
    ) -> TracedFetch {
        let mut jitter_rng = injector.rng_for("mirror.fetch.backoff");
        let mut rate_rng = injector.rng_for("mirror.fetch.rate");
        let mut failed: Vec<String> = Vec::new();
        let mut transfer_s = 0.0;
        let mut events: Vec<TraceEvent> = Vec::new();
        let mut cursor = start.into();
        let retry = retry_with(policy, &mut jitter_rng, |attempt| {
            for m in &self.mirrors {
                let injected = injector.should_fault(InjectionPoint::MirrorFetch, &m.url);
                let sampled = rate_rng.gen_bool(m.failure_rate);
                if injected.is_some() || sampled {
                    failed.push(m.url.clone());
                    let timeout_s = 3.0 * m.latency_ms / 1000.0;
                    transfer_s += timeout_s;
                    let span = TraceEvent::span(
                        cursor,
                        TRACE_SOURCE,
                        format!("timeout {}", m.url),
                        timeout_s,
                    )
                    .with_field("attempt", attempt as u64);
                    cursor = span.end();
                    events.push(span);
                    continue;
                }
                let fetch_s = m.fetch_seconds(bytes);
                transfer_s += fetch_s;
                let span =
                    TraceEvent::span(cursor, TRACE_SOURCE, format!("fetch {}", m.url), fetch_s)
                        .with_field("bytes", bytes)
                        .with_field("attempt", attempt as u64);
                cursor = span.end();
                events.push(span);
                return Ok(m.url.clone());
            }
            Err(())
        });
        if retry.backoff_s > 0.0 {
            events.push(TraceEvent::span(
                cursor,
                TRACE_SOURCE,
                format!("{BACKOFF_PREFIX}mirror.fetch retry"),
                retry.backoff_s,
            ));
        }
        TracedFetch {
            fetch: ResilientFetch {
                outcome: MirrorOutcome {
                    served_by: retry.result.ok(),
                    failed,
                    seconds: transfer_s,
                },
                attempts: retry.attempts,
                backoff_s: retry.backoff_s,
            },
            events,
        }
    }
}

/// Outcome of [`MirrorList::fetch_resilient_traced`]: the fetch result
/// plus its per-attempt trace spans.
#[derive(Debug, Clone, PartialEq)]
pub struct TracedFetch {
    pub fetch: ResilientFetch,
    /// Spans for every mirror attempt and any backoff, in time order.
    pub events: Vec<TraceEvent>,
}

/// Outcome of [`MirrorList::fetch_resilient`]: the fetch result plus the
/// retry/backoff accounting the resilience layer owes the timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilientFetch {
    pub outcome: MirrorOutcome,
    /// Full passes over the mirror list (1 = no retry needed).
    pub attempts: u32,
    /// Backoff seconds charged between passes.
    pub backoff_s: f64,
}

impl ResilientFetch {
    pub fn succeeded(&self) -> bool {
        self.outcome.succeeded()
    }

    /// Total virtual seconds: transfer/timeout time plus backoff.
    pub fn total_seconds(&self) -> f64 {
        self.outcome.seconds + self.backoff_s
    }

    /// Retries beyond the first pass.
    pub fn retries(&self) -> u32 {
        self.attempts.saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn list() -> MirrorList {
        MirrorList::new(vec![
            Mirror::new("http://cb-repo.iu.xsede.org/xsederepo/", 100.0, 20.0),
            Mirror::new("http://mirror2.example.edu/xsederepo/", 50.0, 40.0),
        ])
    }

    #[test]
    fn fetch_time_scales_with_size() {
        let m = Mirror::new("u", 100.0, 0.0);
        let t1 = m.fetch_seconds(100 << 20);
        let t2 = m.fetch_seconds(200 << 20);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn healthy_first_mirror_serves() {
        let mut rng = StdRng::seed_from_u64(1);
        let out = list().fetch(10 << 20, &mut rng);
        assert!(out.succeeded());
        assert_eq!(
            out.served_by.as_deref(),
            Some("http://cb-repo.iu.xsede.org/xsederepo/")
        );
        assert!(out.failed.is_empty());
    }

    #[test]
    fn failover_to_second_mirror() {
        let mut l = list();
        l.mirrors[0].failure_rate = 1.0;
        let mut rng = StdRng::seed_from_u64(1);
        let out = l.fetch(10 << 20, &mut rng);
        assert!(out.succeeded());
        assert_eq!(out.failed.len(), 1);
        assert!(out.served_by.as_deref().unwrap().contains("mirror2"));
        // time includes the timeout on the dead mirror
        assert!(out.seconds > l.mirrors[1].fetch_seconds(10 << 20));
    }

    #[test]
    fn all_mirrors_down_fails() {
        let mut l = list();
        for m in &mut l.mirrors {
            m.failure_rate = 1.0;
        }
        let mut rng = StdRng::seed_from_u64(1);
        let out = l.fetch(10 << 20, &mut rng);
        assert!(!out.succeeded());
        assert_eq!(out.failed.len(), 2);
    }

    #[test]
    fn empty_list_fails_instantly() {
        let l = MirrorList::default();
        let mut rng = StdRng::seed_from_u64(1);
        let out = l.fetch(1, &mut rng);
        assert!(!out.succeeded());
        assert_eq!(out.seconds, 0.0);
    }

    #[test]
    fn failure_rate_clamped() {
        let m = Mirror::new("u", 1.0, 1.0).with_failure_rate(7.0);
        assert_eq!(m.failure_rate, 1.0);
    }

    #[test]
    fn zero_bandwidth_clamped_at_construction() {
        let m = Mirror::new("u", 0.0, 10.0);
        assert_eq!(m.bandwidth_mbps, MIN_BANDWIDTH_MBPS);
        let t = m.fetch_seconds(1 << 20);
        assert!(t.is_finite() && t > 0.0, "got {t}");
    }

    #[test]
    fn negative_bandwidth_and_latency_clamped() {
        let m = Mirror::new("u", -50.0, -20.0);
        assert_eq!(m.bandwidth_mbps, MIN_BANDWIDTH_MBPS);
        assert_eq!(m.latency_ms, 0.0);
        assert!(m.fetch_seconds(1 << 20).is_finite());
    }

    #[test]
    fn fetch_seconds_guards_field_mutation() {
        let mut m = Mirror::new("u", 100.0, 5.0);
        m.bandwidth_mbps = 0.0; // fields are pub; simulate bad mutation
        m.latency_ms = -3.0;
        let t = m.fetch_seconds(1 << 20);
        assert!(t.is_finite() && t >= 0.0, "got {t}");
    }

    #[test]
    fn resilient_fetch_clean_plan_first_pass() {
        let mut inj = xcbc_fault::FaultPlan::new(7).injector();
        let out = list().fetch_resilient(10 << 20, &mut inj, &xcbc_fault::RetryPolicy::default());
        assert!(out.succeeded());
        assert_eq!(out.attempts, 1);
        assert_eq!(out.backoff_s, 0.0);
        assert_eq!(out.retries(), 0);
    }

    #[test]
    fn resilient_fetch_survives_transient_mirror_fault() {
        // First hit on every mirror fails; second pass succeeds.
        let plan = xcbc_fault::FaultPlan::new(11).fail(
            xcbc_fault::InjectionPoint::MirrorFetch,
            None,
            xcbc_fault::FaultWindow::Nth(0),
        );
        let mut inj = plan.injector();
        let out = list().fetch_resilient(10 << 20, &mut inj, &xcbc_fault::RetryPolicy::default());
        assert!(out.succeeded(), "failover + retry should recover");
        assert_eq!(out.attempts, 2);
        assert!(out.backoff_s > 0.0, "backoff charged for the retry");
        assert_eq!(
            out.outcome.failed.len(),
            2,
            "both mirrors failed the first pass"
        );
        assert!(out.total_seconds() > out.outcome.seconds);
    }

    #[test]
    fn resilient_fetch_exhausts_attempts_when_plan_insists() {
        let plan = xcbc_fault::FaultPlan::new(13).fail(
            xcbc_fault::InjectionPoint::MirrorFetch,
            None,
            xcbc_fault::FaultWindow::Always,
        );
        let mut inj = plan.injector();
        let policy = xcbc_fault::RetryPolicy::new(3, 1.0);
        let out = list().fetch_resilient(10 << 20, &mut inj, &policy);
        assert!(!out.succeeded());
        assert_eq!(out.attempts, 3);
        assert_eq!(inj.injected_count(), 6, "2 mirrors x 3 passes");
    }

    #[test]
    fn traced_fetch_spans_cover_transfer_and_backoff() {
        let plan = xcbc_fault::FaultPlan::new(11).fail(
            xcbc_fault::InjectionPoint::MirrorFetch,
            None,
            xcbc_fault::FaultWindow::Nth(0),
        );
        let mut inj = plan.injector();
        let traced = list().fetch_resilient_traced(
            10 << 20,
            &mut inj,
            &xcbc_fault::RetryPolicy::default(),
            0.0,
        );
        assert!(traced.fetch.succeeded());
        // 2 timeouts (first pass), 1 fetch (second pass), 1 backoff span
        let labels: Vec<_> = traced.events.iter().map(|e| e.label.as_str()).collect();
        assert_eq!(
            traced
                .events
                .iter()
                .filter(|e| e.label.starts_with("timeout "))
                .count(),
            2
        );
        assert_eq!(
            traced
                .events
                .iter()
                .filter(|e| e.label.starts_with("fetch "))
                .count(),
            1
        );
        assert!(
            labels.iter().any(|l| l.starts_with(BACKOFF_PREFIX)),
            "{labels:?}"
        );
        // span durations account for every virtual second of the fetch
        let span_total: f64 = traced
            .events
            .iter()
            .map(|e| e.duration().as_secs_f64())
            .sum();
        assert!((span_total - traced.fetch.total_seconds()).abs() < 1e-6);
        // attempt spans tile the timeline: each starts where the previous ended
        for pair in traced.events.windows(2) {
            assert_eq!(pair[1].t, pair[0].end());
        }
    }

    #[test]
    fn traced_fetch_matches_untraced_result() {
        let run_traced = || {
            let plan = xcbc_fault::FaultPlan::new(21)
                .with_rate(xcbc_fault::InjectionPoint::MirrorFetch, 0.5);
            let mut inj = plan.injector();
            list()
                .fetch_resilient_traced(
                    10 << 20,
                    &mut inj,
                    &xcbc_fault::RetryPolicy::default(),
                    0.0,
                )
                .fetch
        };
        let run_untraced = || {
            let plan = xcbc_fault::FaultPlan::new(21)
                .with_rate(xcbc_fault::InjectionPoint::MirrorFetch, 0.5);
            let mut inj = plan.injector();
            list().fetch_resilient(10 << 20, &mut inj, &xcbc_fault::RetryPolicy::default())
        };
        assert_eq!(run_traced(), run_untraced());
    }

    #[test]
    fn resilient_fetch_deterministic_per_seed() {
        let run = || {
            let plan = xcbc_fault::FaultPlan::new(21)
                .with_rate(xcbc_fault::InjectionPoint::MirrorFetch, 0.5);
            let mut inj = plan.injector();
            list().fetch_resilient(10 << 20, &mut inj, &xcbc_fault::RetryPolicy::default())
        };
        assert_eq!(run(), run());
    }
}
