//! Mirror lists and failover.
//!
//! Yum fetches metadata and packages from a list of mirrors, falling back
//! down the list on failure. We model latency and availability so the
//! provisioning timelines in `xcbc-rocks`/`xcbc-core` can account for
//! download time, and so failure injection can exercise retry paths.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// One mirror of a repository.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mirror {
    pub url: String,
    /// Sustained throughput in MB/s.
    pub bandwidth_mbps: f64,
    /// Round-trip latency in milliseconds.
    pub latency_ms: f64,
    /// Probability a fetch from this mirror fails (0.0..=1.0).
    pub failure_rate: f64,
}

impl Mirror {
    pub fn new(url: impl Into<String>, bandwidth_mbps: f64, latency_ms: f64) -> Self {
        Mirror { url: url.into(), bandwidth_mbps, latency_ms, failure_rate: 0.0 }
    }

    pub fn with_failure_rate(mut self, rate: f64) -> Self {
        self.failure_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Seconds to fetch `bytes` from this mirror, if it succeeds.
    pub fn fetch_seconds(&self, bytes: u64) -> f64 {
        self.latency_ms / 1000.0 + (bytes as f64 / (1024.0 * 1024.0)) / self.bandwidth_mbps
    }
}

/// Outcome of a fetch attempt across the mirror list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MirrorOutcome {
    /// Mirror that served the fetch, if any.
    pub served_by: Option<String>,
    /// Mirrors tried and failed first.
    pub failed: Vec<String>,
    /// Total wall seconds including failed attempts (each failed attempt
    /// costs its latency as a timeout).
    pub seconds: f64,
}

impl MirrorOutcome {
    pub fn succeeded(&self) -> bool {
        self.served_by.is_some()
    }
}

/// An ordered list of mirrors with failover.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MirrorList {
    pub mirrors: Vec<Mirror>,
}

impl MirrorList {
    pub fn new(mirrors: Vec<Mirror>) -> Self {
        MirrorList { mirrors }
    }

    /// Attempt to fetch `bytes`, walking the list in order, using `rng`
    /// for failure sampling. Failed attempts cost 3 timeout-latencies
    /// (yum's default retry behavior per mirror).
    pub fn fetch<R: Rng>(&self, bytes: u64, rng: &mut R) -> MirrorOutcome {
        let mut outcome = MirrorOutcome { served_by: None, failed: Vec::new(), seconds: 0.0 };
        for m in &self.mirrors {
            let fails = rng.gen_bool(m.failure_rate);
            if fails {
                outcome.failed.push(m.url.clone());
                outcome.seconds += 3.0 * m.latency_ms / 1000.0;
                continue;
            }
            outcome.seconds += m.fetch_seconds(bytes);
            outcome.served_by = Some(m.url.clone());
            break;
        }
        outcome
    }

    /// Deterministic best-case fetch (first healthy mirror, no sampling).
    pub fn fetch_seconds_best_case(&self, bytes: u64) -> Option<f64> {
        self.mirrors.first().map(|m| m.fetch_seconds(bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn list() -> MirrorList {
        MirrorList::new(vec![
            Mirror::new("http://cb-repo.iu.xsede.org/xsederepo/", 100.0, 20.0),
            Mirror::new("http://mirror2.example.edu/xsederepo/", 50.0, 40.0),
        ])
    }

    #[test]
    fn fetch_time_scales_with_size() {
        let m = Mirror::new("u", 100.0, 0.0);
        let t1 = m.fetch_seconds(100 << 20);
        let t2 = m.fetch_seconds(200 << 20);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn healthy_first_mirror_serves() {
        let mut rng = StdRng::seed_from_u64(1);
        let out = list().fetch(10 << 20, &mut rng);
        assert!(out.succeeded());
        assert_eq!(out.served_by.as_deref(), Some("http://cb-repo.iu.xsede.org/xsederepo/"));
        assert!(out.failed.is_empty());
    }

    #[test]
    fn failover_to_second_mirror() {
        let mut l = list();
        l.mirrors[0].failure_rate = 1.0;
        let mut rng = StdRng::seed_from_u64(1);
        let out = l.fetch(10 << 20, &mut rng);
        assert!(out.succeeded());
        assert_eq!(out.failed.len(), 1);
        assert!(out.served_by.as_deref().unwrap().contains("mirror2"));
        // time includes the timeout on the dead mirror
        assert!(out.seconds > l.mirrors[1].fetch_seconds(10 << 20));
    }

    #[test]
    fn all_mirrors_down_fails() {
        let mut l = list();
        for m in &mut l.mirrors {
            m.failure_rate = 1.0;
        }
        let mut rng = StdRng::seed_from_u64(1);
        let out = l.fetch(10 << 20, &mut rng);
        assert!(!out.succeeded());
        assert_eq!(out.failed.len(), 2);
    }

    #[test]
    fn empty_list_fails_instantly() {
        let l = MirrorList::default();
        let mut rng = StdRng::seed_from_u64(1);
        let out = l.fetch(1, &mut rng);
        assert!(!out.succeeded());
        assert_eq!(out.seconds, 0.0);
    }

    #[test]
    fn failure_rate_clamped() {
        let m = Mirror::new("u", 1.0, 1.0).with_failure_rate(7.0);
        assert_eq!(m.failure_rate, 1.0);
    }
}
