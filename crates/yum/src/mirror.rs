//! Mirror lists and failover.
//!
//! Yum fetches metadata and packages from a list of mirrors, falling back
//! down the list on failure. We model latency and availability so the
//! provisioning timelines in `xcbc-rocks`/`xcbc-core` can account for
//! download time, and so failure injection can exercise retry paths.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use serde::{Deserialize, Serialize};
use xcbc_fault::{retry_with, FaultInjector, InjectionPoint, RetryPolicy};
use xcbc_sim::{SimTime, TraceEvent, BACKOFF_PREFIX};

/// Trace source tag for mirror fetch events.
const TRACE_SOURCE: &str = "yum.mirror";

/// Seed for retry jitter when fetching without a fault injector (the
/// injector path derives its jitter stream from the plan seed instead).
const SAMPLER_JITTER_SEED: u64 = 0x5eed_f37c;

/// Floor for [`Mirror::bandwidth_mbps`]: a mirror this slow is
/// effectively dead, but fetch times stay finite and positive.
pub const MIN_BANDWIDTH_MBPS: f64 = 1e-3;

/// One mirror of a repository.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mirror {
    pub url: String,
    /// Sustained throughput in MB/s.
    pub bandwidth_mbps: f64,
    /// Round-trip latency in milliseconds.
    pub latency_ms: f64,
    /// Probability a fetch from this mirror fails (0.0..=1.0).
    pub failure_rate: f64,
}

impl Mirror {
    /// Build a mirror. Bandwidth is floored at [`MIN_BANDWIDTH_MBPS`]
    /// and latency at zero, so zero/negative inputs cannot produce
    /// infinite or negative fetch times.
    pub fn new(url: impl Into<String>, bandwidth_mbps: f64, latency_ms: f64) -> Self {
        Mirror {
            url: url.into(),
            bandwidth_mbps: bandwidth_mbps.max(MIN_BANDWIDTH_MBPS),
            latency_ms: latency_ms.max(0.0),
            failure_rate: 0.0,
        }
    }

    pub fn with_failure_rate(mut self, rate: f64) -> Self {
        self.failure_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Seconds to fetch `bytes` from this mirror, if it succeeds.
    /// Guards against a zero/negative `bandwidth_mbps` written directly
    /// into the (public) field after construction.
    pub fn fetch_seconds(&self, bytes: u64) -> f64 {
        let bandwidth = self.bandwidth_mbps.max(MIN_BANDWIDTH_MBPS);
        self.latency_ms.max(0.0) / 1000.0 + (bytes as f64 / (1024.0 * 1024.0)) / bandwidth
    }
}

/// Outcome of a fetch attempt across the mirror list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MirrorOutcome {
    /// Mirror that served the fetch, if any.
    pub served_by: Option<String>,
    /// Mirrors tried and failed first.
    pub failed: Vec<String>,
    /// Total wall seconds including failed attempts (each failed attempt
    /// costs its latency as a timeout).
    pub seconds: f64,
}

impl MirrorOutcome {
    pub fn succeeded(&self) -> bool {
        self.served_by.is_some()
    }
}

/// An ordered list of mirrors with failover.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MirrorList {
    pub mirrors: Vec<Mirror>,
}

impl MirrorList {
    pub fn new(mirrors: Vec<Mirror>) -> Self {
        MirrorList { mirrors }
    }

    /// The one fetch entry point: walk the mirror list under the
    /// failure model, retry policy, and trace timebase described by
    /// `options`, returning a full [`FetchReport`].
    ///
    /// Each pass walks the mirrors in order; a failed attempt costs
    /// yum's 3 timeout-latencies and a `timeout <url>` span, the
    /// serving transfer costs [`Mirror::fetch_seconds`] and a
    /// `fetch <url>` span. When every mirror fails a pass, the pass is
    /// retried under the options' [`RetryPolicy`] and the backoff is
    /// reported separately (plus one [`BACKOFF_PREFIX`] span) so
    /// callers can charge it to an install `Timeline`.
    ///
    /// The failure model depends on what the options carry:
    /// - with an injector ([`FetchOptions::inject`]): faults scheduled
    ///   at `mirror.fetch` fire, and `failure_rate` is sampled from a
    ///   plan-seeded stream;
    /// - with a sampler ([`FetchOptions::sample_with`]): `failure_rate`
    ///   is sampled from the caller's RNG;
    /// - with neither: mirrors never fail (deterministic best case).
    pub fn fetch_with(&self, options: FetchOptions<'_>) -> FetchReport {
        let FetchOptions {
            bytes,
            policy,
            injector,
            sampler,
            start,
        } = options;
        match injector {
            Some(inj) => {
                let mut jitter_rng = inj.rng_for("mirror.fetch.backoff");
                let mut rate_rng = inj.rng_for("mirror.fetch.rate");
                self.run_passes(bytes, &policy, &mut jitter_rng, start, |m| {
                    // both streams advance on every attempt (no
                    // short-circuit): keeps plan-seeded runs identical
                    // whether or not a fault fires first
                    let injected = inj
                        .should_fault(InjectionPoint::MirrorFetch, &m.url)
                        .is_some();
                    let sampled = rate_rng.gen_bool(m.failure_rate);
                    injected || sampled
                })
            }
            None => {
                let mut jitter_rng = StdRng::seed_from_u64(SAMPLER_JITTER_SEED);
                let mut sampler = sampler;
                self.run_passes(
                    bytes,
                    &policy,
                    &mut jitter_rng,
                    start,
                    |m| match &mut sampler {
                        Some(rng) => rng.gen_bool(m.failure_rate),
                        None => false,
                    },
                )
            }
        }
    }

    /// The shared pass/retry/trace loop behind [`MirrorList::fetch_with`].
    fn run_passes(
        &self,
        bytes: u64,
        policy: &RetryPolicy,
        jitter_rng: &mut StdRng,
        start: SimTime,
        mut fails: impl FnMut(&Mirror) -> bool,
    ) -> FetchReport {
        let mut failed: Vec<String> = Vec::new();
        let mut transfer_s = 0.0;
        let mut events: Vec<TraceEvent> = Vec::new();
        let mut cursor = start;
        let retry = retry_with(policy, jitter_rng, |attempt| {
            for m in &self.mirrors {
                if fails(m) {
                    failed.push(m.url.clone());
                    let timeout_s = 3.0 * m.latency_ms / 1000.0;
                    transfer_s += timeout_s;
                    let span = TraceEvent::span(
                        cursor,
                        TRACE_SOURCE,
                        format!("timeout {}", m.url),
                        timeout_s,
                    )
                    .with_field("attempt", attempt as u64);
                    cursor = span.end();
                    events.push(span);
                    continue;
                }
                let fetch_s = m.fetch_seconds(bytes);
                transfer_s += fetch_s;
                let span =
                    TraceEvent::span(cursor, TRACE_SOURCE, format!("fetch {}", m.url), fetch_s)
                        .with_field("bytes", bytes)
                        .with_field("attempt", attempt as u64);
                cursor = span.end();
                events.push(span);
                return Ok(m.url.clone());
            }
            Err(())
        });
        if retry.backoff_s > 0.0 {
            events.push(TraceEvent::span(
                cursor,
                TRACE_SOURCE,
                format!("{BACKOFF_PREFIX}mirror.fetch retry"),
                retry.backoff_s,
            ));
        }
        FetchReport {
            outcome: MirrorOutcome {
                served_by: retry.result.ok(),
                failed,
                seconds: transfer_s,
            },
            attempts: retry.attempts,
            backoff_s: retry.backoff_s,
            events,
        }
    }

    /// Deterministic best-case fetch (first healthy mirror, no sampling).
    pub fn fetch_seconds_best_case(&self, bytes: u64) -> Option<f64> {
        self.mirrors.first().map(|m| m.fetch_seconds(bytes))
    }
}

/// Everything a mirror fetch can be configured with — how many bytes,
/// how hard to retry, what makes mirrors fail, and where on the sim
/// timebase the trace spans start.
///
/// Built fluent-style and consumed by [`MirrorList::fetch_with`]:
///
/// ```
/// use xcbc_yum::{FetchOptions, Mirror, MirrorList};
///
/// let list = MirrorList::new(vec![Mirror::new("http://cb-repo.iu.xsede.org/", 100.0, 20.0)]);
/// let report = list.fetch_with(FetchOptions::new(650 << 20));
/// assert!(report.succeeded());
/// assert_eq!(report.attempts, 1);
/// ```
pub struct FetchOptions<'a> {
    /// Payload size to transfer.
    bytes: u64,
    /// Retry policy for whole-list passes.
    policy: RetryPolicy,
    /// Fault injector driving scheduled faults + plan-seeded sampling.
    injector: Option<&'a mut FaultInjector>,
    /// Caller RNG for `failure_rate` sampling (ignored when an
    /// injector is present — the plan's stream takes over).
    sampler: Option<&'a mut dyn RngCore>,
    /// Trace timebase origin for the emitted spans.
    start: SimTime,
}

impl std::fmt::Debug for FetchOptions<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FetchOptions")
            .field("bytes", &self.bytes)
            .field("policy", &self.policy)
            .field("injector", &self.injector.is_some())
            .field("sampler", &self.sampler.is_some())
            .field("start", &self.start)
            .finish()
    }
}

impl<'a> FetchOptions<'a> {
    /// Options to fetch `bytes` with no retries, no failures, and spans
    /// starting at time zero.
    pub fn new(bytes: u64) -> FetchOptions<'a> {
        FetchOptions {
            bytes,
            policy: RetryPolicy::none(),
            injector: None,
            sampler: None,
            start: SimTime::ZERO,
        }
    }

    /// Retry failed passes under `policy`.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Fail mirrors according to `injector`'s fault plan (scheduled
    /// `mirror.fetch` faults plus plan-seeded `failure_rate` sampling).
    pub fn inject(mut self, injector: &'a mut FaultInjector) -> Self {
        self.injector = Some(injector);
        self
    }

    /// Sample each mirror's `failure_rate` from `rng`. Ignored when an
    /// injector is also set.
    pub fn sample_with(mut self, rng: &'a mut (impl RngCore + 'a)) -> Self {
        self.sampler = Some(rng);
        self
    }

    /// Start the emitted trace spans at `start` on the sim timebase.
    pub fn starting_at(mut self, start: impl Into<SimTime>) -> Self {
        self.start = start.into();
        self
    }
}

/// What [`MirrorList::fetch_with`] reports: the fetch outcome, the
/// retry accounting, and the trace spans — everything the three legacy
/// entry points used to return, in one place.
#[derive(Debug, Clone, PartialEq)]
pub struct FetchReport {
    /// Which mirror served, which failed, and the transfer seconds.
    pub outcome: MirrorOutcome,
    /// Full passes over the mirror list (1 = no retry needed).
    pub attempts: u32,
    /// Backoff seconds charged between passes.
    pub backoff_s: f64,
    /// Spans for every mirror attempt and any backoff, in time order.
    pub events: Vec<TraceEvent>,
}

impl FetchReport {
    /// Did any mirror serve the fetch?
    pub fn succeeded(&self) -> bool {
        self.outcome.succeeded()
    }

    /// Total virtual seconds: transfer/timeout time plus backoff.
    pub fn total_seconds(&self) -> f64 {
        self.outcome.seconds + self.backoff_s
    }

    /// Retries beyond the first pass.
    pub fn retries(&self) -> u32 {
        self.attempts.saturating_sub(1)
    }

    /// The legacy [`ResilientFetch`] view (drops the spans).
    pub fn into_resilient(self) -> ResilientFetch {
        ResilientFetch {
            outcome: self.outcome,
            attempts: self.attempts,
            backoff_s: self.backoff_s,
        }
    }

    /// The legacy [`TracedFetch`] view.
    pub fn into_traced(self) -> TracedFetch {
        TracedFetch {
            fetch: ResilientFetch {
                outcome: self.outcome,
                attempts: self.attempts,
                backoff_s: self.backoff_s,
            },
            events: self.events,
        }
    }
}

/// A fetch result plus its per-attempt trace spans (the
/// [`FetchReport::into_traced`] view).
#[derive(Debug, Clone, PartialEq)]
pub struct TracedFetch {
    pub fetch: ResilientFetch,
    /// Spans for every mirror attempt and any backoff, in time order.
    pub events: Vec<TraceEvent>,
}

/// A fetch result plus the retry/backoff accounting the resilience
/// layer owes the timeline (the [`FetchReport::into_resilient`] view).
#[derive(Debug, Clone, PartialEq)]
pub struct ResilientFetch {
    pub outcome: MirrorOutcome,
    /// Full passes over the mirror list (1 = no retry needed).
    pub attempts: u32,
    /// Backoff seconds charged between passes.
    pub backoff_s: f64,
}

impl ResilientFetch {
    pub fn succeeded(&self) -> bool {
        self.outcome.succeeded()
    }

    /// Total virtual seconds: transfer/timeout time plus backoff.
    pub fn total_seconds(&self) -> f64 {
        self.outcome.seconds + self.backoff_s
    }

    /// Retries beyond the first pass.
    pub fn retries(&self) -> u32 {
        self.attempts.saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn list() -> MirrorList {
        MirrorList::new(vec![
            Mirror::new("http://cb-repo.iu.xsede.org/xsederepo/", 100.0, 20.0),
            Mirror::new("http://mirror2.example.edu/xsederepo/", 50.0, 40.0),
        ])
    }

    #[test]
    fn fetch_time_scales_with_size() {
        let m = Mirror::new("u", 100.0, 0.0);
        let t1 = m.fetch_seconds(100 << 20);
        let t2 = m.fetch_seconds(200 << 20);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn healthy_first_mirror_serves() {
        let mut rng = StdRng::seed_from_u64(1);
        let out = list()
            .fetch_with(FetchOptions::new(10 << 20).sample_with(&mut rng))
            .outcome;
        assert!(out.succeeded());
        assert_eq!(
            out.served_by.as_deref(),
            Some("http://cb-repo.iu.xsede.org/xsederepo/")
        );
        assert!(out.failed.is_empty());
    }

    #[test]
    fn failover_to_second_mirror() {
        let mut l = list();
        l.mirrors[0].failure_rate = 1.0;
        let mut rng = StdRng::seed_from_u64(1);
        let out = l
            .fetch_with(FetchOptions::new(10 << 20).sample_with(&mut rng))
            .outcome;
        assert!(out.succeeded());
        assert_eq!(out.failed.len(), 1);
        assert!(out.served_by.as_deref().unwrap().contains("mirror2"));
        // time includes the timeout on the dead mirror
        assert!(out.seconds > l.mirrors[1].fetch_seconds(10 << 20));
    }

    #[test]
    fn all_mirrors_down_fails() {
        let mut l = list();
        for m in &mut l.mirrors {
            m.failure_rate = 1.0;
        }
        let mut rng = StdRng::seed_from_u64(1);
        let report = l.fetch_with(FetchOptions::new(10 << 20).sample_with(&mut rng));
        assert!(!report.succeeded());
        assert_eq!(report.outcome.failed.len(), 2);
    }

    #[test]
    fn empty_list_fails_instantly() {
        let l = MirrorList::default();
        let report = l.fetch_with(FetchOptions::new(1));
        assert!(!report.succeeded());
        assert_eq!(report.outcome.seconds, 0.0);
    }

    #[test]
    fn best_case_options_never_fail() {
        // no injector, no sampler: failure_rate is not consulted
        let mut l = list();
        l.mirrors[0].failure_rate = 1.0;
        let report = l.fetch_with(FetchOptions::new(10 << 20));
        assert!(report.succeeded());
        assert!(report.outcome.failed.is_empty());
    }

    #[test]
    fn failure_rate_clamped() {
        let m = Mirror::new("u", 1.0, 1.0).with_failure_rate(7.0);
        assert_eq!(m.failure_rate, 1.0);
    }

    #[test]
    fn zero_bandwidth_clamped_at_construction() {
        let m = Mirror::new("u", 0.0, 10.0);
        assert_eq!(m.bandwidth_mbps, MIN_BANDWIDTH_MBPS);
        let t = m.fetch_seconds(1 << 20);
        assert!(t.is_finite() && t > 0.0, "got {t}");
    }

    #[test]
    fn negative_bandwidth_and_latency_clamped() {
        let m = Mirror::new("u", -50.0, -20.0);
        assert_eq!(m.bandwidth_mbps, MIN_BANDWIDTH_MBPS);
        assert_eq!(m.latency_ms, 0.0);
        assert!(m.fetch_seconds(1 << 20).is_finite());
    }

    #[test]
    fn fetch_seconds_guards_field_mutation() {
        let mut m = Mirror::new("u", 100.0, 5.0);
        m.bandwidth_mbps = 0.0; // fields are pub; simulate bad mutation
        m.latency_ms = -3.0;
        let t = m.fetch_seconds(1 << 20);
        assert!(t.is_finite() && t >= 0.0, "got {t}");
    }

    #[test]
    fn resilient_fetch_clean_plan_first_pass() {
        let mut inj = xcbc_fault::FaultPlan::new(7).injector();
        let out = list().fetch_with(
            FetchOptions::new(10 << 20)
                .retry(xcbc_fault::RetryPolicy::default())
                .inject(&mut inj),
        );
        assert!(out.succeeded());
        assert_eq!(out.attempts, 1);
        assert_eq!(out.backoff_s, 0.0);
        assert_eq!(out.retries(), 0);
    }

    #[test]
    fn resilient_fetch_survives_transient_mirror_fault() {
        // First hit on every mirror fails; second pass succeeds.
        let plan = xcbc_fault::FaultPlan::new(11).fail(
            xcbc_fault::InjectionPoint::MirrorFetch,
            None,
            xcbc_fault::FaultWindow::Nth(0),
        );
        let mut inj = plan.injector();
        let out = list().fetch_with(
            FetchOptions::new(10 << 20)
                .retry(xcbc_fault::RetryPolicy::default())
                .inject(&mut inj),
        );
        assert!(out.succeeded(), "failover + retry should recover");
        assert_eq!(out.attempts, 2);
        assert!(out.backoff_s > 0.0, "backoff charged for the retry");
        assert_eq!(
            out.outcome.failed.len(),
            2,
            "both mirrors failed the first pass"
        );
        assert!(out.total_seconds() > out.outcome.seconds);
    }

    #[test]
    fn resilient_fetch_exhausts_attempts_when_plan_insists() {
        let plan = xcbc_fault::FaultPlan::new(13).fail(
            xcbc_fault::InjectionPoint::MirrorFetch,
            None,
            xcbc_fault::FaultWindow::Always,
        );
        let mut inj = plan.injector();
        let policy = xcbc_fault::RetryPolicy::new(3, 1.0);
        let out = list().fetch_with(FetchOptions::new(10 << 20).retry(policy).inject(&mut inj));
        assert!(!out.succeeded());
        assert_eq!(out.attempts, 3);
        assert_eq!(inj.injected_count(), 6, "2 mirrors x 3 passes");
    }

    #[test]
    fn traced_fetch_spans_cover_transfer_and_backoff() {
        let plan = xcbc_fault::FaultPlan::new(11).fail(
            xcbc_fault::InjectionPoint::MirrorFetch,
            None,
            xcbc_fault::FaultWindow::Nth(0),
        );
        let mut inj = plan.injector();
        let report = list().fetch_with(
            FetchOptions::new(10 << 20)
                .retry(xcbc_fault::RetryPolicy::default())
                .inject(&mut inj)
                .starting_at(0.0),
        );
        assert!(report.succeeded());
        // 2 timeouts (first pass), 1 fetch (second pass), 1 backoff span
        let labels: Vec<_> = report.events.iter().map(|e| e.label.as_str()).collect();
        assert_eq!(
            report
                .events
                .iter()
                .filter(|e| e.label.starts_with("timeout "))
                .count(),
            2
        );
        assert_eq!(
            report
                .events
                .iter()
                .filter(|e| e.label.starts_with("fetch "))
                .count(),
            1
        );
        assert!(
            labels.iter().any(|l| l.starts_with(BACKOFF_PREFIX)),
            "{labels:?}"
        );
        // span durations account for every virtual second of the fetch
        let span_total: f64 = report
            .events
            .iter()
            .map(|e| e.duration().as_secs_f64())
            .sum();
        assert!((span_total - report.total_seconds()).abs() < 1e-6);
        // attempt spans tile the timeline: each starts where the previous ended
        for pair in report.events.windows(2) {
            assert_eq!(pair[1].t, pair[0].end());
        }
    }

    #[test]
    fn resilient_fetch_deterministic_per_seed() {
        let run = || {
            let plan = xcbc_fault::FaultPlan::new(21)
                .with_rate(xcbc_fault::InjectionPoint::MirrorFetch, 0.5);
            let mut inj = plan.injector();
            list().fetch_with(
                FetchOptions::new(10 << 20)
                    .retry(xcbc_fault::RetryPolicy::default())
                    .inject(&mut inj),
            )
        };
        assert_eq!(run(), run());
    }

    /// The `into_resilient`/`into_traced` views are pure projections of
    /// one `fetch_with` report: same outcome, same accounting, same
    /// spans.
    #[test]
    fn report_views_are_consistent_projections() {
        let plan = || {
            xcbc_fault::FaultPlan::new(21).with_rate(xcbc_fault::InjectionPoint::MirrorFetch, 0.5)
        };
        let mut inj = plan().injector();
        let report = list().fetch_with(
            FetchOptions::new(10 << 20)
                .retry(xcbc_fault::RetryPolicy::default())
                .inject(&mut inj),
        );
        let resilient = report.clone().into_resilient();
        let traced = report.clone().into_traced();
        assert_eq!(traced.fetch, resilient);
        assert_eq!(traced.events, report.events);
        assert_eq!(resilient.outcome, report.outcome);
        assert_eq!(resilient.attempts, report.attempts);
        assert_eq!(resilient.backoff_s, report.backoff_s);
    }
}
