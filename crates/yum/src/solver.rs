//! The dependency solver — yum's depsolve loop.
//!
//! Given a set of enabled repositories and an installed-package database,
//! computes the transitive closure of Requires for an install or update
//! request, choosing the *best candidate* for each unsatisfied capability
//! the way yum does: higher-priority repository first (when the
//! priorities plugin is active), then architecture preference, then
//! highest EVR, then lexicographically smallest name for determinism.
//!
//! Requests are described by the typed [`SolveRequest`] builder — one
//! vocabulary shared by the install path, the update path, and the
//! fleet-scale [`crate::SolveCache`]'s key normalization. The historical
//! `resolve_install` / `resolve_update` entry points remain as thin
//! wrappers over [`Solver::resolve`].

use crate::fingerprint::Fnv64;
use crate::groups::PackageGroupDef;
use crate::priorities::apply_priorities;
use crate::repo::Repository;
use crate::YumConfig;
use std::collections::{HashSet, VecDeque};
use std::fmt;
use std::sync::Arc;
use xcbc_rpm::{Arch, Dependency, Package, RpmDb, TransactionError, TransactionSet};

/// Why a resolution failed.
#[derive(Debug)]
#[non_exhaustive]
pub enum SolveError {
    /// No enabled repository carries anything satisfying `what`.
    NothingProvides {
        /// The unsatisfied name or capability.
        what: String,
        /// The package whose Requires chain led here (empty for a direct
        /// user request).
        needed_by: String,
    },
    /// The resolved set failed the transaction check (conflicts, file
    /// conflicts, ...).
    Transaction(TransactionError),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::NothingProvides { what, needed_by } if needed_by.is_empty() => {
                write!(f, "no package provides {what}")
            }
            SolveError::NothingProvides { what, needed_by } => {
                write!(f, "no package provides {what} (needed by {needed_by})")
            }
            SolveError::Transaction(e) => write!(f, "transaction check failed: {e}"),
        }
    }
}

impl std::error::Error for SolveError {}

/// What a [`SolveRequest`] asks the solver to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveKind {
    /// `yum install <targets>`: pull the targets plus their closure.
    Install,
    /// `yum update <targets>`: update the named installed packages.
    Update,
    /// `yum update` with no names: update everything installed.
    UpdateAll,
}

impl SolveKind {
    fn tag(self) -> u64 {
        match self {
            SolveKind::Install => 1,
            SolveKind::Update => 2,
            SolveKind::UpdateAll => 3,
        }
    }
}

/// A typed depsolve request: what operation, against which targets,
/// under which architecture filter.
///
/// Replaces the stringly-typed `resolve_install(&db, &["a", "b"])` /
/// `resolve_update(&db, None)` call shapes with one builder both paths
/// share — and gives the solve cache a canonical value to normalize
/// into a key ([`SolveRequest::digest`]).
///
/// ```
/// use xcbc_yum::{SolveRequest, SolveKind};
///
/// let req = SolveRequest::install(["gromacs", "R"]).with_target("hdf5");
/// assert_eq!(req.kind(), SolveKind::Install);
/// assert_eq!(req.targets(), ["gromacs", "R", "hdf5"]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolveRequest {
    kind: SolveKind,
    targets: Vec<String>,
    arch: Option<Arch>,
}

impl SolveRequest {
    /// An install request for the given package names.
    pub fn install<I, S>(targets: I) -> SolveRequest
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        SolveRequest {
            kind: SolveKind::Install,
            targets: targets.into_iter().map(Into::into).collect(),
            arch: None,
        }
    }

    /// An update request limited to the given package names.
    pub fn update<I, S>(targets: I) -> SolveRequest
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        SolveRequest {
            kind: SolveKind::Update,
            targets: targets.into_iter().map(Into::into).collect(),
            arch: None,
        }
    }

    /// An update-everything request (`yum update` with no arguments).
    pub fn update_all() -> SolveRequest {
        SolveRequest {
            kind: SolveKind::UpdateAll,
            targets: Vec::new(),
            arch: None,
        }
    }

    /// Append one more target (builder style).
    pub fn with_target(mut self, name: impl Into<String>) -> SolveRequest {
        self.targets.push(name.into());
        self
    }

    /// Append a comps-style group's install set (mandatory + default,
    /// plus optional packages when `with_optional` is set) — the typed
    /// equivalent of `yum groupinstall`.
    pub fn with_group(mut self, group: &PackageGroupDef, with_optional: bool) -> SolveRequest {
        self.targets
            .extend(group.install_set().iter().map(|s| s.to_string()));
        if with_optional {
            self.targets.extend(group.optional.iter().cloned());
        }
        self
    }

    /// Restrict candidates to packages installable on `arch` (defaults
    /// to the engine's configured host architecture).
    pub fn with_arch(mut self, arch: Arch) -> SolveRequest {
        self.arch = Some(arch);
        self
    }

    /// The requested operation.
    pub fn kind(&self) -> SolveKind {
        self.kind
    }

    /// The requested target names, in request order.
    pub fn targets(&self) -> &[String] {
        &self.targets
    }

    /// The architecture filter, if any.
    pub fn arch(&self) -> Option<Arch> {
        self.arch
    }

    /// The canonical form the solve cache keys on: duplicate targets
    /// collapse to their first occurrence (the solver's `chosen` set
    /// makes repeats no-ops, so the solution is unchanged), and an
    /// `UpdateAll` drops targets entirely.
    pub fn normalized(&self) -> SolveRequest {
        let mut seen = HashSet::new();
        let targets = if self.kind == SolveKind::UpdateAll {
            Vec::new()
        } else {
            self.targets
                .iter()
                .filter(|t| seen.insert(t.as_str()))
                .cloned()
                .collect()
        };
        SolveRequest {
            kind: self.kind,
            targets,
            arch: self.arch,
        }
    }

    /// Stable 64-bit digest of the normalized request — the request
    /// component of a [`crate::SolveCache`] key.
    pub fn digest(&self) -> u64 {
        let norm = self.normalized();
        let mut h = Fnv64::new();
        h.write_u64(norm.kind.tag());
        match norm.arch {
            Some(a) => h.write_str(a.as_str()),
            None => h.write_u64(0),
        };
        for t in &norm.targets {
            h.write_str(t);
        }
        h.finish()
    }
}

/// A resolved set of operations, ready to become a transaction.
///
/// Packages are held behind [`Arc`] so a cached solution can be shared
/// across fleet sites (and across threads) without deep-cloning the
/// Requires/Provides payloads; the copies happen only when a site
/// commits the solution into a transaction.
#[derive(Debug, Clone, Default)]
pub struct Solution {
    /// Packages to newly install, in closure-discovery order.
    pub installs: Vec<Arc<Package>>,
    /// Packages upgrading an installed instance.
    pub upgrades: Vec<Arc<Package>>,
}

impl Solution {
    /// Is there nothing to do?
    pub fn is_empty(&self) -> bool {
        self.installs.is_empty() && self.upgrades.is_empty()
    }

    /// Total number of operations.
    pub fn len(&self) -> usize {
        self.installs.len() + self.upgrades.len()
    }

    /// Convert into a checked-later [`TransactionSet`]. Shared packages
    /// are cloned out of their `Arc`s here — the single point where a
    /// cache-shared solution pays for ownership.
    pub fn into_transaction(self) -> TransactionSet {
        let unwrap = |p: Arc<Package>| Arc::try_unwrap(p).unwrap_or_else(|a| (*a).clone());
        let mut tx = TransactionSet::new();
        for p in self.upgrades {
            tx.add_upgrade(unwrap(p));
        }
        for p in self.installs {
            tx.add_install(unwrap(p));
        }
        tx
    }
}

/// In-progress closure state shared by the install and update walks.
struct Walk<'a> {
    installs: Vec<&'a Package>,
    upgrades: Vec<&'a Package>,
    chosen: HashSet<&'a str>, // names already in solution
    queue: VecDeque<&'a Package>,
}

impl<'a> Walk<'a> {
    fn new() -> Self {
        Walk {
            installs: Vec::new(),
            upgrades: Vec::new(),
            chosen: HashSet::new(),
            queue: VecDeque::new(),
        }
    }

    fn enqueue(&mut self, p: &'a Package) {
        if self.chosen.insert(p.name()) {
            self.queue.push_back(p);
        }
    }

    fn into_solution(self, db: &RpmDb) -> Solution {
        debug_assert!(self.queue.is_empty());
        let _ = db;
        Solution {
            installs: self
                .installs
                .into_iter()
                .map(|p| Arc::new(p.clone()))
                .collect(),
            upgrades: self
                .upgrades
                .into_iter()
                .map(|p| Arc::new(p.clone()))
                .collect(),
        }
    }
}

/// A solver view over a repository set.
pub struct Solver<'a> {
    /// (repo, package) pairs surviving priority filtering.
    candidates: Vec<(&'a Repository, &'a Package)>,
    config: &'a YumConfig,
}

impl<'a> Solver<'a> {
    pub fn new(repos: &'a [Repository], config: &'a YumConfig) -> Self {
        let enabled: Vec<&Repository> = repos.iter().filter(|r| r.enabled).collect();
        let candidates = if config.plugin_priorities {
            apply_priorities(&enabled)
        } else {
            enabled
                .iter()
                .flat_map(|r| r.packages().iter().map(move |p| (*r, p)))
                .collect()
        };
        // Filter to installable architectures up front.
        let candidates = candidates
            .into_iter()
            .filter(|(_, p)| p.arch().installable_on(config.host_arch))
            .collect();
        Solver { candidates, config }
    }

    /// Number of visible candidates after priority/arch filtering.
    pub fn candidate_count(&self) -> usize {
        self.candidates.len()
    }

    /// Candidate ordering: priority (lower number wins, only when the
    /// plugin is active) → arch preference → EVR → name.
    fn better(
        &self,
        (ra, pa): (&'a Repository, &'a Package),
        (rb, pb): (&'a Repository, &'a Package),
    ) -> std::cmp::Ordering {
        let prio = if self.config.plugin_priorities {
            rb.priority.cmp(&ra.priority) // lower priority value = better
        } else {
            std::cmp::Ordering::Equal
        };
        prio.then_with(|| {
            pa.arch()
                .preference_on(self.config.host_arch)
                .cmp(&pb.arch().preference_on(self.config.host_arch))
        })
        .then_with(|| pa.nevra.evr.cmp(&pb.nevra.evr))
        .then_with(|| pb.name().cmp(pa.name())) // smaller name wins
    }

    fn visible(
        &self,
        arch: Option<Arch>,
    ) -> impl Iterator<Item = (&'a Repository, &'a Package)> + '_ {
        self.candidates
            .iter()
            .filter(move |(_, p)| arch.is_none_or(|a| p.arch().installable_on(a)))
            .copied()
    }

    fn best_provider_filtered(&self, req: &Dependency, arch: Option<Arch>) -> Option<&'a Package> {
        self.visible(arch)
            .filter(|(_, p)| p.satisfies(req))
            .max_by(|a, b| self.better(*a, *b))
            .map(|(_, p)| p)
    }

    fn best_by_name_filtered(&self, name: &str, arch: Option<Arch>) -> Option<&'a Package> {
        self.visible(arch)
            .filter(|(_, p)| p.name() == name)
            .max_by(|a, b| self.better(*a, *b))
            .map(|(_, p)| p)
            .or_else(|| self.best_provider_filtered(&Dependency::any(name), arch))
    }

    /// Best visible candidate satisfying `req`.
    pub fn best_provider(&self, req: &Dependency) -> Option<&'a Package> {
        self.best_provider_filtered(req, None)
    }

    /// Best visible candidate *by package name* (for direct requests and
    /// update targets). A name request matches real names first; if no
    /// package has that name, yum falls back to `whatprovides`.
    pub fn best_by_name(&self, name: &str) -> Option<&'a Package> {
        self.best_by_name_filtered(name, None)
    }

    /// Resolve a typed [`SolveRequest`] against `db`.
    ///
    /// The worklist and in-progress solution hold `&Package` borrows of
    /// the repository candidates — packages (whose Requires/Provides
    /// vectors make cloning expensive) are copied exactly once, into the
    /// returned [`Solution`]'s `Arc`s.
    pub fn resolve(&self, db: &RpmDb, request: &SolveRequest) -> Result<Solution, SolveError> {
        xcbc_sim::self_profiler().time(xcbc_sim::SECTION_DEPSOLVE, || {
            let req = request.normalized();
            let mut walk = Walk::new();
            match req.kind {
                SolveKind::Install => self.seed_install(db, &req, &mut walk)?,
                SolveKind::Update | SolveKind::UpdateAll => self.seed_update(db, &req, &mut walk),
            }
            self.drain(db, &mut walk, req.arch)?;
            Ok(walk.into_solution(db))
        })
    }

    /// Seed the walk for `yum install <names...>`.
    fn seed_install(
        &self,
        db: &RpmDb,
        req: &SolveRequest,
        walk: &mut Walk<'a>,
    ) -> Result<(), SolveError> {
        for name in req.targets() {
            let p = self
                .best_by_name_filtered(name, req.arch())
                .ok_or_else(|| SolveError::NothingProvides {
                    what: name.to_string(),
                    needed_by: String::new(),
                })?;
            if db
                .newest(p.name())
                .map(|ip| ip.package.nevra.evr >= p.nevra.evr)
                .unwrap_or(false)
            {
                // already installed at same-or-newer: yum prints
                // "Nothing to do" for this name
                continue;
            }
            walk.enqueue(p);
        }
        Ok(())
    }

    /// Seed the walk for `yum update [names...]`: the newest visible
    /// candidate for every installed (or listed) name that has one,
    /// plus obsoletes processing when `obsoletes=1`.
    fn seed_update(&self, db: &RpmDb, req: &SolveRequest, walk: &mut Walk<'a>) {
        let targets: Vec<String> = match req.kind() {
            SolveKind::UpdateAll => db.names().iter().map(|s| s.to_string()).collect(),
            _ => req.targets().to_vec(),
        };
        for name in &targets {
            let installed = match db.newest(name) {
                Some(ip) => ip,
                None => continue, // yum update of a not-installed name is a no-op
            };
            if let Some(candidate) = self.best_by_name_filtered(name, req.arch()) {
                if candidate.nevra.evr > installed.package.nevra.evr {
                    walk.enqueue(candidate);
                }
            }
            // obsoletes processing: a visible package obsoleting this
            // installed one replaces it (yum's `obsoletes=1`)
            if self.config.obsoletes {
                for (_, p) in self.visible(req.arch()) {
                    if p.obsoletes_package(&installed.package) {
                        walk.enqueue(p);
                    }
                }
            }
        }
    }

    /// The shared closure loop: pop work, satisfy each Requires from the
    /// db, the in-progress solution, or the best visible provider.
    fn drain(&self, db: &RpmDb, walk: &mut Walk<'a>, arch: Option<Arch>) -> Result<(), SolveError> {
        while let Some(pkg) = walk.queue.pop_front() {
            for req in &pkg.requires {
                // satisfied by the db?
                if db.provides(req) {
                    continue;
                }
                // satisfied by something already chosen?
                let in_solution = walk
                    .installs
                    .iter()
                    .chain(walk.upgrades.iter())
                    .chain(std::iter::once(&pkg))
                    .chain(walk.queue.iter())
                    .any(|p| p.satisfies(req));
                if in_solution {
                    continue;
                }
                let provider = self.best_provider_filtered(req, arch).ok_or_else(|| {
                    SolveError::NothingProvides {
                        what: req.to_string(),
                        needed_by: pkg.nevra.to_string(),
                    }
                })?;
                walk.enqueue(provider);
            }
            // upgrade when an older instance is installed, install otherwise
            if db.is_installed(pkg.name()) {
                walk.upgrades.push(pkg);
            } else {
                walk.installs.push(pkg);
            }
        }
        Ok(())
    }

    /// Resolve `yum install <names...>` — compatibility wrapper over
    /// [`Solver::resolve`] with [`SolveRequest::install`].
    pub fn resolve_install(&self, db: &RpmDb, names: &[&str]) -> Result<Solution, SolveError> {
        self.resolve(db, &SolveRequest::install(names.iter().copied()))
    }

    /// Resolve `yum update [names...]` — compatibility wrapper over
    /// [`Solver::resolve`] with [`SolveRequest::update`] /
    /// [`SolveRequest::update_all`].
    pub fn resolve_update(
        &self,
        db: &RpmDb,
        names: Option<&[&str]>,
    ) -> Result<Solution, SolveError> {
        let req = match names {
            Some(ns) => SolveRequest::update(ns.iter().copied()),
            None => SolveRequest::update_all(),
        };
        self.resolve(db, &req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xcbc_rpm::{Arch, PackageBuilder};

    fn config() -> YumConfig {
        YumConfig::default()
    }

    fn one_repo(pkgs: Vec<Package>) -> Vec<Repository> {
        let mut r = Repository::new("test", "test repo");
        r.add_packages(pkgs);
        vec![r]
    }

    #[test]
    fn closure_resolves_chain() {
        let repos = one_repo(vec![
            PackageBuilder::new("trinity", "r2013", "1")
                .requires_simple("bowtie")
                .build(),
            PackageBuilder::new("bowtie", "1.0.0", "1")
                .requires_simple("samtools")
                .build(),
            PackageBuilder::new("samtools", "0.1.19", "1").build(),
        ]);
        let cfg = config();
        let solver = Solver::new(&repos, &cfg);
        let db = RpmDb::new();
        let sol = solver.resolve_install(&db, &["trinity"]).unwrap();
        assert_eq!(sol.installs.len(), 3);
    }

    #[test]
    fn satisfied_by_db_not_repulled() {
        let repos = one_repo(vec![
            PackageBuilder::new("gromacs", "4.6.5", "2")
                .requires_simple("openmpi")
                .build(),
            PackageBuilder::new("openmpi", "1.6.5", "1").build(),
        ]);
        let cfg = config();
        let solver = Solver::new(&repos, &cfg);
        let mut db = RpmDb::new();
        db.install(PackageBuilder::new("openmpi", "1.6.5", "1").build());
        let sol = solver.resolve_install(&db, &["gromacs"]).unwrap();
        assert_eq!(sol.installs.len(), 1);
        assert_eq!(sol.installs[0].name(), "gromacs");
    }

    #[test]
    fn missing_dep_reports_chain() {
        let repos = one_repo(vec![PackageBuilder::new("meep", "1.2.1", "1")
            .requires_simple("libctl")
            .build()]);
        let cfg = config();
        let solver = Solver::new(&repos, &cfg);
        let db = RpmDb::new();
        let err = solver.resolve_install(&db, &["meep"]).unwrap_err();
        match err {
            SolveError::NothingProvides { what, needed_by } => {
                assert_eq!(what, "libctl");
                assert!(needed_by.contains("meep"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn best_candidate_highest_evr() {
        let repos = one_repo(vec![
            PackageBuilder::new("R", "3.0.2", "1").build(),
            PackageBuilder::new("R", "3.1.0", "1").build(),
        ]);
        let cfg = config();
        let solver = Solver::new(&repos, &cfg);
        assert_eq!(solver.best_by_name("R").unwrap().evr().version, "3.1.0");
    }

    #[test]
    fn priority_beats_evr_when_plugin_active() {
        let mut base = Repository::new("base", "CentOS base").with_priority(1);
        base.add_package(PackageBuilder::new("python", "2.6.6", "52").build());
        let mut xsede = Repository::new("xsede", "XSEDE").with_priority(50);
        xsede.add_package(PackageBuilder::new("python", "2.7.5", "1").build());
        let repos = vec![base, xsede];
        let cfg = config();
        let solver = Solver::new(&repos, &cfg);
        // priorities plugin: base (priority 1) shadows xsede's python
        assert_eq!(
            solver.best_by_name("python").unwrap().evr().version,
            "2.6.6"
        );

        let cfg_noplugin = YumConfig {
            plugin_priorities: false,
            ..config()
        };
        let solver2 = Solver::new(&repos, &cfg_noplugin);
        assert_eq!(
            solver2.best_by_name("python").unwrap().evr().version,
            "2.7.5"
        );
    }

    #[test]
    fn disabled_repo_invisible() {
        let mut r = Repository::new("x", "x").disabled();
        r.add_package(PackageBuilder::new("gcc", "4.4.7", "17").build());
        let repos = vec![r];
        let cfg = config();
        let solver = Solver::new(&repos, &cfg);
        assert!(solver.best_by_name("gcc").is_none());
        assert_eq!(solver.candidate_count(), 0);
    }

    #[test]
    fn incompatible_arch_filtered() {
        let repos = one_repo(vec![
            PackageBuilder::new("tool", "1.0", "1")
                .arch(Arch::Armv7)
                .build(),
            PackageBuilder::new("tool", "0.9", "1")
                .arch(Arch::X86_64)
                .build(),
        ]);
        let cfg = config();
        let solver = Solver::new(&repos, &cfg);
        // only the x86_64 build is installable on the x86_64 host
        assert_eq!(solver.best_by_name("tool").unwrap().evr().version, "0.9");
    }

    #[test]
    fn native_arch_preferred_over_multilib() {
        let repos = one_repo(vec![
            PackageBuilder::new("libfoo", "1.0", "1")
                .arch(Arch::I686)
                .build(),
            PackageBuilder::new("libfoo", "1.0", "1")
                .arch(Arch::X86_64)
                .build(),
        ]);
        let cfg = config();
        let solver = Solver::new(&repos, &cfg);
        assert_eq!(solver.best_by_name("libfoo").unwrap().arch(), Arch::X86_64);
    }

    #[test]
    fn capability_provider_chosen_for_requires() {
        let repos = one_repo(vec![
            PackageBuilder::new("app", "1.0", "1")
                .requires_spec("mpi >= 1.6")
                .build(),
            PackageBuilder::new("openmpi", "1.6.5", "1")
                .provides_versioned("mpi")
                .build(),
            PackageBuilder::new("mpich2", "1.4.1", "1")
                .provides_versioned("mpi")
                .build(),
        ]);
        let cfg = config();
        let solver = Solver::new(&repos, &cfg);
        let db = RpmDb::new();
        let sol = solver.resolve_install(&db, &["app"]).unwrap();
        let names: Vec<_> = sol.installs.iter().map(|p| p.name()).collect();
        assert!(
            names.contains(&"openmpi"),
            "only openmpi satisfies mpi >= 1.6: {names:?}"
        );
        assert!(!names.contains(&"mpich2"));
    }

    #[test]
    fn update_resolution_pulls_new_deps() {
        let repos = one_repo(vec![
            PackageBuilder::new("R", "3.1.0", "1")
                .requires_simple("libRmath")
                .build(),
            PackageBuilder::new("libRmath", "3.1.0", "1").build(),
        ]);
        let cfg = config();
        let solver = Solver::new(&repos, &cfg);
        let mut db = RpmDb::new();
        db.install(PackageBuilder::new("R", "3.0.2", "1").build());
        let sol = solver.resolve_update(&db, None).unwrap();
        assert_eq!(sol.upgrades.len(), 1);
        assert_eq!(sol.installs.len(), 1);
        assert_eq!(sol.installs[0].name(), "libRmath");
    }

    #[test]
    fn update_processes_obsoletes() {
        let repos = one_repo(vec![PackageBuilder::new("torque", "4.2.10", "1")
            .obsoletes(Dependency::parse("pbs < 3.0"))
            .build()]);
        let cfg = config();
        let solver = Solver::new(&repos, &cfg);
        let mut db = RpmDb::new();
        db.install(PackageBuilder::new("pbs", "2.3.16", "1").build());
        let sol = solver.resolve_update(&db, None).unwrap();
        assert_eq!(sol.installs.len(), 1);
        assert_eq!(sol.installs[0].name(), "torque");

        let cfg_no = YumConfig {
            obsoletes: false,
            ..config()
        };
        let solver2 = Solver::new(&repos, &cfg_no);
        let sol2 = solver2.resolve_update(&db, None).unwrap();
        assert!(sol2.is_empty());
    }

    #[test]
    fn already_installed_request_is_noop() {
        let repos = one_repo(vec![PackageBuilder::new("gcc", "4.4.7", "17").build()]);
        let cfg = config();
        let solver = Solver::new(&repos, &cfg);
        let mut db = RpmDb::new();
        db.install(PackageBuilder::new("gcc", "4.4.7", "17").build());
        let sol = solver.resolve_install(&db, &["gcc"]).unwrap();
        assert!(sol.is_empty());
    }

    #[test]
    fn diamond_dependency_resolved_once() {
        let repos = one_repo(vec![
            PackageBuilder::new("top", "1", "1")
                .requires_simple("left")
                .requires_simple("right")
                .build(),
            PackageBuilder::new("left", "1", "1")
                .requires_simple("base")
                .build(),
            PackageBuilder::new("right", "1", "1")
                .requires_simple("base")
                .build(),
            PackageBuilder::new("base", "1", "1").build(),
        ]);
        let cfg = config();
        let solver = Solver::new(&repos, &cfg);
        let db = RpmDb::new();
        let sol = solver.resolve_install(&db, &["top"]).unwrap();
        assert_eq!(sol.installs.len(), 4, "base must appear exactly once");
    }

    #[test]
    fn typed_request_matches_wrapper() {
        let repos = one_repo(vec![
            PackageBuilder::new("trinity", "r2013", "1")
                .requires_simple("bowtie")
                .build(),
            PackageBuilder::new("bowtie", "1.0.0", "1").build(),
        ]);
        let cfg = config();
        let solver = Solver::new(&repos, &cfg);
        let db = RpmDb::new();
        let via_wrapper = solver.resolve_install(&db, &["trinity"]).unwrap();
        let via_request = solver
            .resolve(&db, &SolveRequest::install(["trinity"]))
            .unwrap();
        let names = |s: &Solution| {
            s.installs
                .iter()
                .map(|p| p.nevra.to_string())
                .collect::<Vec<_>>()
        };
        assert_eq!(names(&via_wrapper), names(&via_request));
    }

    #[test]
    fn normalized_request_dedups_and_digests_stably() {
        let a = SolveRequest::install(["x", "y", "x", "z", "y"]);
        let b = SolveRequest::install(["x", "y", "z"]);
        assert_eq!(a.normalized(), b.normalized());
        assert_eq!(a.digest(), b.digest());
        assert_ne!(a.digest(), SolveRequest::update(["x", "y", "z"]).digest());
        assert_ne!(
            b.digest(),
            SolveRequest::install(["x", "y", "z"])
                .with_arch(Arch::I686)
                .digest()
        );
    }

    #[test]
    fn group_request_expands_install_set() {
        let group = PackageGroupDef::new("hpc", "HPC libraries")
            .mandatory_pkg("openmpi")
            .default_pkg("fftw")
            .optional_pkg("petsc");
        let plain = SolveRequest::install(Vec::<String>::new()).with_group(&group, false);
        assert_eq!(plain.targets(), ["openmpi", "fftw"]);
        let with_opt = SolveRequest::install(Vec::<String>::new()).with_group(&group, true);
        assert_eq!(with_opt.targets(), ["openmpi", "fftw", "petsc"]);
    }

    #[test]
    fn request_arch_filter_restricts_candidates() {
        let repos = one_repo(vec![
            PackageBuilder::new("tool", "2.0", "1")
                .arch(Arch::X86_64)
                .build(),
            PackageBuilder::new("tool", "1.0", "1")
                .arch(Arch::Noarch)
                .build(),
        ]);
        let cfg = config();
        let solver = Solver::new(&repos, &cfg);
        let db = RpmDb::new();
        // i686 filter: the x86_64 build is not installable there, so the
        // noarch one is chosen
        let sol = solver
            .resolve(&db, &SolveRequest::install(["tool"]).with_arch(Arch::I686))
            .unwrap();
        assert_eq!(sol.installs[0].evr().version, "1.0");
    }

    #[test]
    fn solve_error_display_phrasing() {
        let direct = SolveError::NothingProvides {
            what: "libctl".into(),
            needed_by: String::new(),
        };
        assert_eq!(direct.to_string(), "no package provides libctl");
        let chained = SolveError::NothingProvides {
            what: "libctl".into(),
            needed_by: "meep-1.2.1-1.x86_64".into(),
        };
        assert_eq!(
            chained.to_string(),
            "no package provides libctl (needed by meep-1.2.1-1.x86_64)"
        );
    }
}
