//! The dependency solver — yum's depsolve loop.
//!
//! Given a set of enabled repositories and an installed-package database,
//! computes the transitive closure of Requires for an install or update
//! request, choosing the *best candidate* for each unsatisfied capability
//! the way yum does: higher-priority repository first (when the
//! priorities plugin is active), then architecture preference, then
//! highest EVR, then lexicographically smallest name for determinism.

use crate::priorities::apply_priorities;
use crate::repo::Repository;
use crate::YumConfig;
use std::collections::{HashSet, VecDeque};
use std::fmt;
use xcbc_rpm::{Dependency, Package, RpmDb, TransactionError, TransactionSet};

/// Why a resolution failed.
#[derive(Debug)]
pub enum SolveError {
    /// No enabled repository carries anything satisfying `what`.
    NothingProvides {
        what: String,
        /// The package whose Requires chain led here (empty for a direct
        /// user request).
        needed_by: String,
    },
    /// The resolved set failed the transaction check (conflicts, file
    /// conflicts, ...).
    Transaction(TransactionError),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::NothingProvides { what, needed_by } if needed_by.is_empty() => {
                write!(f, "no package provides {what}")
            }
            SolveError::NothingProvides { what, needed_by } => {
                write!(f, "no package provides {what} (needed by {needed_by})")
            }
            SolveError::Transaction(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SolveError {}

/// A resolved set of operations, ready to become a transaction.
#[derive(Debug, Clone, Default)]
pub struct Solution {
    pub installs: Vec<Package>,
    pub upgrades: Vec<Package>,
}

impl Solution {
    pub fn is_empty(&self) -> bool {
        self.installs.is_empty() && self.upgrades.is_empty()
    }

    /// Total number of operations.
    pub fn len(&self) -> usize {
        self.installs.len() + self.upgrades.len()
    }

    /// Convert into a checked-later [`TransactionSet`].
    pub fn into_transaction(self) -> TransactionSet {
        let mut tx = TransactionSet::new();
        for p in self.upgrades {
            tx.add_upgrade(p);
        }
        for p in self.installs {
            tx.add_install(p);
        }
        tx
    }
}

/// A solver view over a repository set.
pub struct Solver<'a> {
    /// (repo, package) pairs surviving priority filtering.
    candidates: Vec<(&'a Repository, &'a Package)>,
    config: &'a YumConfig,
}

impl<'a> Solver<'a> {
    pub fn new(repos: &'a [Repository], config: &'a YumConfig) -> Self {
        let enabled: Vec<&Repository> = repos.iter().filter(|r| r.enabled).collect();
        let candidates = if config.plugin_priorities {
            apply_priorities(&enabled)
        } else {
            enabled
                .iter()
                .flat_map(|r| r.packages().iter().map(move |p| (*r, p)))
                .collect()
        };
        // Filter to installable architectures up front.
        let candidates = candidates
            .into_iter()
            .filter(|(_, p)| p.arch().installable_on(config.host_arch))
            .collect();
        Solver { candidates, config }
    }

    /// Number of visible candidates after priority/arch filtering.
    pub fn candidate_count(&self) -> usize {
        self.candidates.len()
    }

    /// Candidate ordering: priority (lower number wins, only when the
    /// plugin is active) → arch preference → EVR → name.
    fn better(
        &self,
        (ra, pa): (&'a Repository, &'a Package),
        (rb, pb): (&'a Repository, &'a Package),
    ) -> std::cmp::Ordering {
        let prio = if self.config.plugin_priorities {
            rb.priority.cmp(&ra.priority) // lower priority value = better
        } else {
            std::cmp::Ordering::Equal
        };
        prio.then_with(|| {
            pa.arch()
                .preference_on(self.config.host_arch)
                .cmp(&pb.arch().preference_on(self.config.host_arch))
        })
        .then_with(|| pa.nevra.evr.cmp(&pb.nevra.evr))
        .then_with(|| pb.name().cmp(pa.name())) // smaller name wins
    }

    /// Best visible candidate satisfying `req`.
    pub fn best_provider(&self, req: &Dependency) -> Option<&'a Package> {
        self.candidates
            .iter()
            .filter(|(_, p)| p.satisfies(req))
            .copied()
            .max_by(|a, b| self.better(*a, *b))
            .map(|(_, p)| p)
    }

    /// Best visible candidate *by package name* (for direct requests and
    /// update targets). A name request matches real names first; if no
    /// package has that name, yum falls back to `whatprovides`.
    pub fn best_by_name(&self, name: &str) -> Option<&'a Package> {
        self.candidates
            .iter()
            .filter(|(_, p)| p.name() == name)
            .copied()
            .max_by(|a, b| self.better(*a, *b))
            .map(|(_, p)| p)
            .or_else(|| self.best_provider(&Dependency::any(name)))
    }

    /// Resolve `yum install <names...>`: returns the closure of installs.
    ///
    /// The worklist and in-progress solution hold `&Package` borrows of
    /// the repository candidates — packages (whose Requires/Provides
    /// vectors make cloning expensive) are copied exactly once, into
    /// the returned [`Solution`].
    pub fn resolve_install(&self, db: &RpmDb, names: &[&str]) -> Result<Solution, SolveError> {
        let mut installs: Vec<&'a Package> = Vec::new();
        let mut upgrades: Vec<&'a Package> = Vec::new();
        let mut chosen: HashSet<&'a str> = HashSet::new(); // names already in solution
        let mut queue: VecDeque<&'a Package> = VecDeque::new();

        for name in names {
            let p = self
                .best_by_name(name)
                .ok_or_else(|| SolveError::NothingProvides {
                    what: name.to_string(),
                    needed_by: String::new(),
                })?;
            if db
                .newest(p.name())
                .map(|ip| ip.package.nevra.evr >= p.nevra.evr)
                .unwrap_or(false)
            {
                // already installed at same-or-newer: yum prints
                // "Nothing to do" for this name
                continue;
            }
            if chosen.insert(p.name()) {
                queue.push_back(p);
            }
        }

        while let Some(pkg) = queue.pop_front() {
            for req in &pkg.requires {
                // satisfied by the db?
                if db.provides(req) {
                    continue;
                }
                // satisfied by something already chosen?
                let in_solution = installs
                    .iter()
                    .chain(upgrades.iter())
                    .chain(std::iter::once(&pkg))
                    .chain(queue.iter())
                    .any(|p| p.satisfies(req));
                if in_solution {
                    continue;
                }
                let provider =
                    self.best_provider(req)
                        .ok_or_else(|| SolveError::NothingProvides {
                            what: req.to_string(),
                            needed_by: pkg.nevra.to_string(),
                        })?;
                if chosen.insert(provider.name()) {
                    queue.push_back(provider);
                }
            }
            // upgrade when an older instance is installed, install otherwise
            if db.is_installed(pkg.name()) {
                upgrades.push(pkg);
            } else {
                installs.push(pkg);
            }
        }
        Ok(Solution {
            installs: installs.into_iter().cloned().collect(),
            upgrades: upgrades.into_iter().cloned().collect(),
        })
    }

    /// Resolve `yum update [names...]`: pick the newest visible candidate
    /// for every installed (or listed) name that has one, plus any new
    /// dependencies those updates require.
    pub fn resolve_update(
        &self,
        db: &RpmDb,
        names: Option<&[&str]>,
    ) -> Result<Solution, SolveError> {
        let targets: Vec<String> = match names {
            Some(ns) => ns.iter().map(|s| s.to_string()).collect(),
            None => db.names().iter().map(|s| s.to_string()).collect(),
        };

        let mut installs: Vec<&'a Package> = Vec::new();
        let mut upgrades: Vec<&'a Package> = Vec::new();
        let mut chosen: HashSet<&'a str> = HashSet::new();
        let mut queue: VecDeque<&'a Package> = VecDeque::new();

        for name in &targets {
            let installed = match db.newest(name) {
                Some(ip) => ip,
                None => continue, // yum update of a not-installed name is a no-op
            };
            if let Some(candidate) = self.best_by_name(name) {
                if candidate.nevra.evr > installed.package.nevra.evr
                    && chosen.insert(candidate.name())
                {
                    queue.push_back(candidate);
                }
            }
            // obsoletes processing: a visible package obsoleting this
            // installed one replaces it (yum's `obsoletes=1`)
            if self.config.obsoletes {
                for (_, p) in &self.candidates {
                    if p.obsoletes_package(&installed.package) && chosen.insert(p.name()) {
                        queue.push_back(p);
                    }
                }
            }
        }

        while let Some(pkg) = queue.pop_front() {
            for req in &pkg.requires {
                if db.provides(req) {
                    continue;
                }
                let in_solution = installs
                    .iter()
                    .chain(upgrades.iter())
                    .chain(std::iter::once(&pkg))
                    .chain(queue.iter())
                    .any(|p| p.satisfies(req));
                if in_solution {
                    continue;
                }
                let provider =
                    self.best_provider(req)
                        .ok_or_else(|| SolveError::NothingProvides {
                            what: req.to_string(),
                            needed_by: pkg.nevra.to_string(),
                        })?;
                if chosen.insert(provider.name()) {
                    queue.push_back(provider);
                }
            }
            if db.is_installed(pkg.name()) {
                upgrades.push(pkg);
            } else {
                installs.push(pkg);
            }
        }
        Ok(Solution {
            installs: installs.into_iter().cloned().collect(),
            upgrades: upgrades.into_iter().cloned().collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xcbc_rpm::{Arch, PackageBuilder};

    fn config() -> YumConfig {
        YumConfig::default()
    }

    fn one_repo(pkgs: Vec<Package>) -> Vec<Repository> {
        let mut r = Repository::new("test", "test repo");
        r.add_packages(pkgs);
        vec![r]
    }

    #[test]
    fn closure_resolves_chain() {
        let repos = one_repo(vec![
            PackageBuilder::new("trinity", "r2013", "1")
                .requires_simple("bowtie")
                .build(),
            PackageBuilder::new("bowtie", "1.0.0", "1")
                .requires_simple("samtools")
                .build(),
            PackageBuilder::new("samtools", "0.1.19", "1").build(),
        ]);
        let cfg = config();
        let solver = Solver::new(&repos, &cfg);
        let db = RpmDb::new();
        let sol = solver.resolve_install(&db, &["trinity"]).unwrap();
        assert_eq!(sol.installs.len(), 3);
    }

    #[test]
    fn satisfied_by_db_not_repulled() {
        let repos = one_repo(vec![
            PackageBuilder::new("gromacs", "4.6.5", "2")
                .requires_simple("openmpi")
                .build(),
            PackageBuilder::new("openmpi", "1.6.5", "1").build(),
        ]);
        let cfg = config();
        let solver = Solver::new(&repos, &cfg);
        let mut db = RpmDb::new();
        db.install(PackageBuilder::new("openmpi", "1.6.5", "1").build());
        let sol = solver.resolve_install(&db, &["gromacs"]).unwrap();
        assert_eq!(sol.installs.len(), 1);
        assert_eq!(sol.installs[0].name(), "gromacs");
    }

    #[test]
    fn missing_dep_reports_chain() {
        let repos = one_repo(vec![PackageBuilder::new("meep", "1.2.1", "1")
            .requires_simple("libctl")
            .build()]);
        let cfg = config();
        let solver = Solver::new(&repos, &cfg);
        let db = RpmDb::new();
        let err = solver.resolve_install(&db, &["meep"]).unwrap_err();
        match err {
            SolveError::NothingProvides { what, needed_by } => {
                assert_eq!(what, "libctl");
                assert!(needed_by.contains("meep"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn best_candidate_highest_evr() {
        let repos = one_repo(vec![
            PackageBuilder::new("R", "3.0.2", "1").build(),
            PackageBuilder::new("R", "3.1.0", "1").build(),
        ]);
        let cfg = config();
        let solver = Solver::new(&repos, &cfg);
        assert_eq!(solver.best_by_name("R").unwrap().evr().version, "3.1.0");
    }

    #[test]
    fn priority_beats_evr_when_plugin_active() {
        let mut base = Repository::new("base", "CentOS base").with_priority(1);
        base.add_package(PackageBuilder::new("python", "2.6.6", "52").build());
        let mut xsede = Repository::new("xsede", "XSEDE").with_priority(50);
        xsede.add_package(PackageBuilder::new("python", "2.7.5", "1").build());
        let repos = vec![base, xsede];
        let cfg = config();
        let solver = Solver::new(&repos, &cfg);
        // priorities plugin: base (priority 1) shadows xsede's python
        assert_eq!(
            solver.best_by_name("python").unwrap().evr().version,
            "2.6.6"
        );

        let cfg_noplugin = YumConfig {
            plugin_priorities: false,
            ..config()
        };
        let solver2 = Solver::new(&repos, &cfg_noplugin);
        assert_eq!(
            solver2.best_by_name("python").unwrap().evr().version,
            "2.7.5"
        );
    }

    #[test]
    fn disabled_repo_invisible() {
        let mut r = Repository::new("x", "x").disabled();
        r.add_package(PackageBuilder::new("gcc", "4.4.7", "17").build());
        let repos = vec![r];
        let cfg = config();
        let solver = Solver::new(&repos, &cfg);
        assert!(solver.best_by_name("gcc").is_none());
        assert_eq!(solver.candidate_count(), 0);
    }

    #[test]
    fn incompatible_arch_filtered() {
        let repos = one_repo(vec![
            PackageBuilder::new("tool", "1.0", "1")
                .arch(Arch::Armv7)
                .build(),
            PackageBuilder::new("tool", "0.9", "1")
                .arch(Arch::X86_64)
                .build(),
        ]);
        let cfg = config();
        let solver = Solver::new(&repos, &cfg);
        // only the x86_64 build is installable on the x86_64 host
        assert_eq!(solver.best_by_name("tool").unwrap().evr().version, "0.9");
    }

    #[test]
    fn native_arch_preferred_over_multilib() {
        let repos = one_repo(vec![
            PackageBuilder::new("libfoo", "1.0", "1")
                .arch(Arch::I686)
                .build(),
            PackageBuilder::new("libfoo", "1.0", "1")
                .arch(Arch::X86_64)
                .build(),
        ]);
        let cfg = config();
        let solver = Solver::new(&repos, &cfg);
        assert_eq!(solver.best_by_name("libfoo").unwrap().arch(), Arch::X86_64);
    }

    #[test]
    fn capability_provider_chosen_for_requires() {
        let repos = one_repo(vec![
            PackageBuilder::new("app", "1.0", "1")
                .requires_spec("mpi >= 1.6")
                .build(),
            PackageBuilder::new("openmpi", "1.6.5", "1")
                .provides_versioned("mpi")
                .build(),
            PackageBuilder::new("mpich2", "1.4.1", "1")
                .provides_versioned("mpi")
                .build(),
        ]);
        let cfg = config();
        let solver = Solver::new(&repos, &cfg);
        let db = RpmDb::new();
        let sol = solver.resolve_install(&db, &["app"]).unwrap();
        let names: Vec<_> = sol.installs.iter().map(|p| p.name()).collect();
        assert!(
            names.contains(&"openmpi"),
            "only openmpi satisfies mpi >= 1.6: {names:?}"
        );
        assert!(!names.contains(&"mpich2"));
    }

    #[test]
    fn update_resolution_pulls_new_deps() {
        let repos = one_repo(vec![
            PackageBuilder::new("R", "3.1.0", "1")
                .requires_simple("libRmath")
                .build(),
            PackageBuilder::new("libRmath", "3.1.0", "1").build(),
        ]);
        let cfg = config();
        let solver = Solver::new(&repos, &cfg);
        let mut db = RpmDb::new();
        db.install(PackageBuilder::new("R", "3.0.2", "1").build());
        let sol = solver.resolve_update(&db, None).unwrap();
        assert_eq!(sol.upgrades.len(), 1);
        assert_eq!(sol.installs.len(), 1);
        assert_eq!(sol.installs[0].name(), "libRmath");
    }

    #[test]
    fn update_processes_obsoletes() {
        let repos = one_repo(vec![PackageBuilder::new("torque", "4.2.10", "1")
            .obsoletes(Dependency::parse("pbs < 3.0"))
            .build()]);
        let cfg = config();
        let solver = Solver::new(&repos, &cfg);
        let mut db = RpmDb::new();
        db.install(PackageBuilder::new("pbs", "2.3.16", "1").build());
        let sol = solver.resolve_update(&db, None).unwrap();
        assert_eq!(sol.installs.len(), 1);
        assert_eq!(sol.installs[0].name(), "torque");

        let cfg_no = YumConfig {
            obsoletes: false,
            ..config()
        };
        let solver2 = Solver::new(&repos, &cfg_no);
        let sol2 = solver2.resolve_update(&db, None).unwrap();
        assert!(sol2.is_empty());
    }

    #[test]
    fn already_installed_request_is_noop() {
        let repos = one_repo(vec![PackageBuilder::new("gcc", "4.4.7", "17").build()]);
        let cfg = config();
        let solver = Solver::new(&repos, &cfg);
        let mut db = RpmDb::new();
        db.install(PackageBuilder::new("gcc", "4.4.7", "17").build());
        let sol = solver.resolve_install(&db, &["gcc"]).unwrap();
        assert!(sol.is_empty());
    }

    #[test]
    fn diamond_dependency_resolved_once() {
        let repos = one_repo(vec![
            PackageBuilder::new("top", "1", "1")
                .requires_simple("left")
                .requires_simple("right")
                .build(),
            PackageBuilder::new("left", "1", "1")
                .requires_simple("base")
                .build(),
            PackageBuilder::new("right", "1", "1")
                .requires_simple("base")
                .build(),
            PackageBuilder::new("base", "1", "1").build(),
        ]);
        let cfg = config();
        let solver = Solver::new(&repos, &cfg);
        let db = RpmDb::new();
        let sol = solver.resolve_install(&db, &["top"]).unwrap();
        assert_eq!(sol.installs.len(), 4, "base must appear exactly once");
    }
}
