//! A concurrent, fleet-shared memo table for depsolve results.
//!
//! Deploying a fleet of near-identical sites re-runs the same dependency
//! closures over and over: every site asks for the same XNIT overlay
//! against the same repositories. [`SolveCache`] memoizes [`Solution`]s
//! keyed by the triple of fingerprints a solve is a pure function of —
//! (repositories + config, installed database, normalized request) —
//! so the second site onward pays one hash lookup instead of a BFS walk.
//!
//! The map itself is copy-on-write behind an [`Arc`]: readers clone the
//! current snapshot pointer under a briefly-held read lock and then
//! probe it lock-free, while the (rare) writer swaps in a rebuilt map.
//! Cached [`Solution`]s hold `Arc<Package>`s, so a hit shares package
//! payloads across threads without cloning until a site commits the
//! solution into a transaction.
//!
//! Hit/miss counters are plain atomics, exported through the shared
//! [`MetricRegistry`] (see
//! [`register_metrics`](SolveCache::register_metrics)) as
//! `xcbc_solvecache_*` series next to the gmond/gmetad node metrics.
//! They are *fleet-level* telemetry: whether a given site hit or missed
//! depends on scheduling, so the counters deliberately stay out of
//! per-site traces (which must be byte-identical at any thread count).

use crate::fingerprint::{db_fingerprint, repos_fingerprint, Fnv64};
use crate::repo::Repository;
use crate::solver::{Solution, SolveError, SolveRequest, Solver};
use crate::YumConfig;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use xcbc_rpm::RpmDb;
use xcbc_sim::MetricRegistry;

/// Trace source for cache telemetry events.
pub const SOLVECACHE_TRACE_SOURCE: &str = "yum.solvecache";

/// Point-in-time cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to a real solve.
    pub misses: u64,
    /// Distinct solutions currently stored.
    pub entries: usize,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0.0 when none yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

type Snapshot = Arc<HashMap<u64, Arc<Solution>>>;

/// The concurrent solve cache. Cheap to share: wrap it in an [`Arc`]
/// and hand clones to every fleet worker.
#[derive(Debug, Default)]
pub struct SolveCache {
    map: RwLock<Snapshot>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SolveCache {
    /// An empty cache.
    pub fn new() -> SolveCache {
        SolveCache::default()
    }

    /// The cache key for a solve over `repos`/`config` against `db` for
    /// the normalized `request`.
    pub fn key(
        repos: &[Repository],
        config: &YumConfig,
        db: &RpmDb,
        request: &SolveRequest,
    ) -> u64 {
        let mut h = Fnv64::new();
        h.write_u64(repos_fingerprint(repos, config))
            .write_u64(db_fingerprint(db))
            .write_u64(request.digest());
        h.finish()
    }

    fn snapshot(&self) -> Snapshot {
        // Read lock held only long enough to clone the Arc; probing the
        // map afterwards is lock-free.
        Arc::clone(&self.map.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Probe the cache, bumping the hit/miss counter.
    pub fn lookup(&self, key: u64) -> Option<Arc<Solution>> {
        match self.snapshot().get(&key) {
            Some(sol) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(sol))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Probe the cache without touching the hit/miss counters. This is
    /// the read path for invariant checkers (xcbc-check's SolveCache
    /// coherence audit): they must be able to inspect cached solutions
    /// without perturbing the statistics the run under test reports.
    pub fn peek(&self, key: u64) -> Option<Arc<Solution>> {
        self.snapshot().get(&key).map(Arc::clone)
    }

    /// Every `(key, solution)` pair currently cached, in unspecified
    /// order. Counter-neutral, like [`peek`](Self::peek).
    pub fn entries(&self) -> Vec<(u64, Arc<Solution>)> {
        self.snapshot()
            .iter()
            .map(|(k, v)| (*k, Arc::clone(v)))
            .collect()
    }

    /// Store a solution, returning the shared handle. Copy-on-write: the
    /// current snapshot is cloned, extended, and swapped in. If another
    /// thread raced the same key in first, its entry wins (both computed
    /// the same deterministic solution, so either is correct).
    pub fn insert(&self, key: u64, solution: Solution) -> Arc<Solution> {
        let mut guard = self.map.write().unwrap_or_else(|e| e.into_inner());
        if let Some(existing) = guard.get(&key) {
            return Arc::clone(existing);
        }
        let shared = Arc::new(solution);
        let mut next: HashMap<u64, Arc<Solution>> = (**guard).clone();
        next.insert(key, Arc::clone(&shared));
        *guard = Arc::new(next);
        shared
    }

    /// The memoizing front door: answer from the cache, or run the
    /// solver and remember the result. Errors are not cached — a failed
    /// solve re-runs (repositories may have gained the missing package).
    pub fn get_or_solve(
        &self,
        repos: &[Repository],
        config: &YumConfig,
        db: &RpmDb,
        request: &SolveRequest,
    ) -> Result<Arc<Solution>, SolveError> {
        let key = Self::key(repos, config, db, request);
        if let Some(hit) = self.lookup(key) {
            return Ok(hit);
        }
        let solution = Solver::new(repos, config).resolve(db, request)?;
        Ok(self.insert(key, solution))
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.snapshot().len(),
        }
    }

    /// Drop every stored solution (counters are kept).
    pub fn clear(&self) {
        let mut guard = self.map.write().unwrap_or_else(|e| e.into_inner());
        *guard = Arc::new(HashMap::new());
    }

    /// Export the cache counters into a [`MetricRegistry`] — the one
    /// place fleet-level telemetry is reported. Hit/miss totals depend
    /// on scheduling, so they register here rather than into per-site
    /// traces (which must stay byte-identical at any thread count).
    pub fn register_metrics(&self, registry: &mut MetricRegistry) {
        let stats = self.stats();
        registry.set_counter(
            "xcbc_solvecache_hits_total",
            "Depsolve lookups answered from the shared cache",
            &[],
            stats.hits,
        );
        registry.set_counter(
            "xcbc_solvecache_misses_total",
            "Depsolve lookups that fell through to a real solve",
            &[],
            stats.misses,
        );
        registry.set_gauge(
            "xcbc_solvecache_entries",
            "Distinct solutions currently stored",
            &[],
            stats.entries as f64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xcbc_rpm::PackageBuilder;

    fn repos() -> Vec<Repository> {
        let mut r = Repository::new("xsede", "XSEDE");
        r.add_package(
            PackageBuilder::new("gromacs", "4.6.5", "2")
                .requires_simple("openmpi")
                .build(),
        );
        r.add_package(PackageBuilder::new("openmpi", "1.6.5", "1").build());
        vec![r]
    }

    #[test]
    fn hit_after_identical_request() {
        let cache = SolveCache::new();
        let repos = repos();
        let cfg = YumConfig::default();
        let db = RpmDb::new();
        let req = SolveRequest::install(["gromacs"]);

        let first = cache.get_or_solve(&repos, &cfg, &db, &req).unwrap();
        let second = cache.get_or_solve(&repos, &cfg, &db, &req).unwrap();
        assert!(Arc::ptr_eq(&first, &second), "second solve must be shared");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!(stats.hit_rate(), 0.5);
    }

    #[test]
    fn equivalent_requests_share_one_entry() {
        let cache = SolveCache::new();
        let repos = repos();
        let cfg = YumConfig::default();
        let db = RpmDb::new();
        cache
            .get_or_solve(&repos, &cfg, &db, &SolveRequest::install(["gromacs"]))
            .unwrap();
        // duplicate targets normalize away → same key, cache hit
        cache
            .get_or_solve(
                &repos,
                &cfg,
                &db,
                &SolveRequest::install(["gromacs", "gromacs"]),
            )
            .unwrap();
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn miss_after_repo_mutation() {
        let cache = SolveCache::new();
        let mut repos = repos();
        let cfg = YumConfig::default();
        let db = RpmDb::new();
        let req = SolveRequest::install(["gromacs"]);

        cache.get_or_solve(&repos, &cfg, &db, &req).unwrap();
        // mutate the repo: revision bumps, fingerprint changes, entry invalid
        repos[0].add_package(PackageBuilder::new("R", "3.1.0", "1").build());
        cache.get_or_solve(&repos, &cfg, &db, &req).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.hits, 0, "mutated repo must not hit");
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn miss_after_db_mutation() {
        let cache = SolveCache::new();
        let repos = repos();
        let cfg = YumConfig::default();
        let mut db = RpmDb::new();
        let req = SolveRequest::install(["gromacs"]);
        cache.get_or_solve(&repos, &cfg, &db, &req).unwrap();
        db.install(PackageBuilder::new("openmpi", "1.6.5", "1").build());
        let sol = cache.get_or_solve(&repos, &cfg, &db, &req).unwrap();
        assert_eq!(cache.stats().misses, 2, "db change must re-solve");
        assert_eq!(sol.installs.len(), 1, "openmpi now satisfied by db");
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = SolveCache::new();
        let mut repos = repos();
        let cfg = YumConfig::default();
        let db = RpmDb::new();
        let req = SolveRequest::install(["meep"]);
        assert!(cache.get_or_solve(&repos, &cfg, &db, &req).is_err());
        assert_eq!(cache.stats().entries, 0);
        // the repo gains the package: the retry must succeed (and miss,
        // because the fingerprint moved with the revision)
        repos[0].add_package(PackageBuilder::new("meep", "1.2.1", "1").build());
        assert!(cache.get_or_solve(&repos, &cfg, &db, &req).is_ok());
    }

    #[test]
    fn clear_drops_entries_keeps_counters() {
        let cache = SolveCache::new();
        let repos = repos();
        let cfg = YumConfig::default();
        let db = RpmDb::new();
        cache
            .get_or_solve(&repos, &cfg, &db, &SolveRequest::install(["gromacs"]))
            .unwrap();
        cache.clear();
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn counters_register_into_shared_registry() {
        let cache = SolveCache::new();
        let repos = repos();
        let cfg = YumConfig::default();
        let db = RpmDb::new();
        let req = SolveRequest::install(["gromacs"]);
        cache.get_or_solve(&repos, &cfg, &db, &req).unwrap();
        cache.get_or_solve(&repos, &cfg, &db, &req).unwrap();

        let mut registry = MetricRegistry::new();
        cache.register_metrics(&mut registry);
        assert_eq!(
            registry.counter_value("xcbc_solvecache_hits_total", &[]),
            Some(1)
        );
        assert_eq!(
            registry.counter_value("xcbc_solvecache_misses_total", &[]),
            Some(1)
        );
        assert_eq!(
            registry.gauge_value("xcbc_solvecache_entries", &[]),
            Some(1.0)
        );
        let prom = registry.render_prometheus();
        assert!(prom.contains("xcbc_solvecache_hits_total 1"), "{prom}");
    }

    #[test]
    fn concurrent_lookups_share_solutions() {
        let cache = Arc::new(SolveCache::new());
        let repos = Arc::new(repos());
        let cfg = Arc::new(YumConfig::default());
        let req = SolveRequest::install(["gromacs"]);

        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                let repos = Arc::clone(&repos);
                let cfg = Arc::clone(&cfg);
                let req = req.clone();
                scope.spawn(move || {
                    let db = RpmDb::new();
                    let sol = cache.get_or_solve(&repos, &cfg, &db, &req).unwrap();
                    assert_eq!(sol.installs.len(), 2);
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 8);
        assert_eq!(stats.entries, 1, "all threads share one entry");
        assert!(stats.misses >= 1);
    }
}
