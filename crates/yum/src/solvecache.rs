//! A concurrent, fleet-shared memo table for depsolve results.
//!
//! Deploying a fleet of near-identical sites re-runs the same dependency
//! closures over and over: every site asks for the same XNIT overlay
//! against the same repositories. [`SolveCache`] memoizes [`Solution`]s
//! keyed by the triple of fingerprints a solve is a pure function of —
//! (repositories + config, installed database, normalized request) —
//! so the second site onward pays one hash lookup instead of a BFS walk.
//!
//! The map itself is copy-on-write behind an [`Arc`]: readers clone the
//! current snapshot pointer under a briefly-held read lock and then
//! probe it lock-free, while the (rare) writer swaps in a rebuilt map.
//! Cached [`Solution`]s hold `Arc<Package>`s, so a hit shares package
//! payloads across threads without cloning until a site commits the
//! solution into a transaction.
//!
//! Hit/miss counters are plain atomics, exported through the shared
//! [`MetricRegistry`] (see
//! [`register_metrics`](SolveCache::register_metrics)) as
//! `xcbc_solvecache_*` series next to the gmond/gmetad node metrics.
//! They are *fleet-level* telemetry: whether a given site hit or missed
//! depends on scheduling, so the counters deliberately stay out of
//! per-site traces (which must be byte-identical at any thread count).

use crate::fingerprint::{db_fingerprint, repos_fingerprint, Fnv64};
use crate::repo::Repository;
use crate::solver::{Solution, SolveError, SolveRequest, Solver};
use crate::YumConfig;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use xcbc_rpm::RpmDb;
use xcbc_sim::MetricRegistry;

/// Trace source for cache telemetry events.
pub const SOLVECACHE_TRACE_SOURCE: &str = "yum.solvecache";

/// Point-in-time cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to a real solve.
    pub misses: u64,
    /// Distinct solutions currently stored.
    pub entries: usize,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0.0 when none yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

type Snapshot = Arc<HashMap<u64, Arc<Solution>>>;

/// The concurrent solve cache. Cheap to share: wrap it in an [`Arc`]
/// and hand clones to every fleet worker.
#[derive(Debug, Default)]
pub struct SolveCache {
    map: RwLock<Snapshot>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SolveCache {
    /// An empty cache.
    pub fn new() -> SolveCache {
        SolveCache::default()
    }

    /// The cache key for a solve over `repos`/`config` against `db` for
    /// the normalized `request`.
    pub fn key(
        repos: &[Repository],
        config: &YumConfig,
        db: &RpmDb,
        request: &SolveRequest,
    ) -> u64 {
        let mut h = Fnv64::new();
        h.write_u64(repos_fingerprint(repos, config))
            .write_u64(db_fingerprint(db))
            .write_u64(request.digest());
        h.finish()
    }

    /// [`key`](Self::key) mixed with a caller-chosen `salt`. Salt `0` is
    /// the identity (so unsalted callers keep their historical keys);
    /// any other value partitions the key space, which is how the
    /// multi-tenant service keeps one tenant's cached solutions
    /// unobservable by another even when both sit in the same shard.
    pub fn salted_key(
        salt: u64,
        repos: &[Repository],
        config: &YumConfig,
        db: &RpmDb,
        request: &SolveRequest,
    ) -> u64 {
        let base = Self::key(repos, config, db, request);
        if salt == 0 {
            base
        } else {
            let mut h = Fnv64::new();
            h.write_u64(salt).write_u64(base);
            h.finish()
        }
    }

    fn snapshot(&self) -> Snapshot {
        // Read lock held only long enough to clone the Arc; probing the
        // map afterwards is lock-free.
        Arc::clone(&self.map.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Probe the cache, bumping the hit/miss counter.
    pub fn lookup(&self, key: u64) -> Option<Arc<Solution>> {
        match self.snapshot().get(&key) {
            Some(sol) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(sol))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Probe the cache without touching the hit/miss counters. This is
    /// the read path for invariant checkers (xcbc-check's SolveCache
    /// coherence audit): they must be able to inspect cached solutions
    /// without perturbing the statistics the run under test reports.
    pub fn peek(&self, key: u64) -> Option<Arc<Solution>> {
        self.snapshot().get(&key).map(Arc::clone)
    }

    /// Every `(key, solution)` pair currently cached, in unspecified
    /// order. Counter-neutral, like [`peek`](Self::peek).
    pub fn entries(&self) -> Vec<(u64, Arc<Solution>)> {
        self.snapshot()
            .iter()
            .map(|(k, v)| (*k, Arc::clone(v)))
            .collect()
    }

    /// Store a solution, returning the shared handle. Copy-on-write: the
    /// current snapshot is cloned, extended, and swapped in. If another
    /// thread raced the same key in first, its entry wins (both computed
    /// the same deterministic solution, so either is correct).
    pub fn insert(&self, key: u64, solution: Solution) -> Arc<Solution> {
        let mut guard = self.map.write().unwrap_or_else(|e| e.into_inner());
        if let Some(existing) = guard.get(&key) {
            return Arc::clone(existing);
        }
        let shared = Arc::new(solution);
        let mut next: HashMap<u64, Arc<Solution>> = (**guard).clone();
        next.insert(key, Arc::clone(&shared));
        *guard = Arc::new(next);
        shared
    }

    /// The memoizing front door: answer from the cache, or run the
    /// solver and remember the result. Errors are not cached — a failed
    /// solve re-runs (repositories may have gained the missing package).
    pub fn get_or_solve(
        &self,
        repos: &[Repository],
        config: &YumConfig,
        db: &RpmDb,
        request: &SolveRequest,
    ) -> Result<Arc<Solution>, SolveError> {
        self.get_or_solve_salted(0, repos, config, db, request)
    }

    /// [`get_or_solve`](Self::get_or_solve) under a key salt (see
    /// [`salted_key`](Self::salted_key)). Distinct salts never share
    /// entries: a hit under salt A says nothing about salt B.
    pub fn get_or_solve_salted(
        &self,
        salt: u64,
        repos: &[Repository],
        config: &YumConfig,
        db: &RpmDb,
        request: &SolveRequest,
    ) -> Result<Arc<Solution>, SolveError> {
        let key = Self::salted_key(salt, repos, config, db, request);
        if let Some(hit) = self.lookup(key) {
            return Ok(hit);
        }
        let solution = Solver::new(repos, config).resolve(db, request)?;
        Ok(self.insert(key, solution))
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.snapshot().len(),
        }
    }

    /// Drop every stored solution (counters are kept).
    pub fn clear(&self) {
        let mut guard = self.map.write().unwrap_or_else(|e| e.into_inner());
        *guard = Arc::new(HashMap::new());
    }

    /// Export the cache counters into a [`MetricRegistry`] — the one
    /// place fleet-level telemetry is reported. Hit/miss totals depend
    /// on scheduling, so they register here rather than into per-site
    /// traces (which must stay byte-identical at any thread count).
    pub fn register_metrics(&self, registry: &mut MetricRegistry) {
        let stats = self.stats();
        registry.set_counter(
            "xcbc_solvecache_hits_total",
            "Depsolve lookups answered from the shared cache",
            &[],
            stats.hits,
        );
        registry.set_counter(
            "xcbc_solvecache_misses_total",
            "Depsolve lookups that fell through to a real solve",
            &[],
            stats.misses,
        );
        registry.set_gauge(
            "xcbc_solvecache_entries",
            "Distinct solutions currently stored",
            &[],
            stats.entries as f64,
        );
    }
}

/// A bank of independent [`SolveCache`] shards, routed by salted
/// request digest. This is the multi-tenant service's cache plane:
/// each tenant derives a non-zero salt from its name
/// ([`tenant_salt`](ShardedSolveCache::tenant_salt)), the salted key
/// picks a shard, and hit/miss counters live **per shard** rather than
/// in one process-global pair — so shard occupancy and hit rates stay
/// attributable under the `xcbc_svc_*` metric families.
///
/// Isolation falls out of the salting, not the sharding: two tenants
/// may well land in the same shard, but their keys never collide, so
/// neither can observe (or be served) the other's entries.
#[derive(Debug)]
pub struct ShardedSolveCache {
    shards: Vec<Arc<SolveCache>>,
}

impl ShardedSolveCache {
    /// A bank of `shards` empty caches (clamped to at least one).
    pub fn new(shards: usize) -> ShardedSolveCache {
        ShardedSolveCache {
            shards: (0..shards.max(1))
                .map(|_| Arc::new(SolveCache::new()))
                .collect(),
        }
    }

    /// Number of shards in the bank.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The canonical non-zero salt for a tenant name (FNV-1a over the
    /// name, with the zero value remapped since salt 0 means unsalted).
    pub fn tenant_salt(tenant: &str) -> u64 {
        let mut h = Fnv64::new();
        h.write(tenant.as_bytes());
        let salt = h.finish();
        if salt == 0 {
            0x9e3779b97f4a7c15
        } else {
            salt
        }
    }

    /// Which shard a salted key routes to.
    pub fn shard_index(&self, key: u64) -> usize {
        // fold the high bits in so the modulo sees the whole key
        ((key ^ (key >> 32)) % self.shards.len() as u64) as usize
    }

    /// The shard a salted key routes to.
    pub fn shard(&self, key: u64) -> &Arc<SolveCache> {
        &self.shards[self.shard_index(key)]
    }

    /// A tenant's *home* shard: where engine entry points that compute
    /// their own keys internally (the XNIT overlay deploy path) park
    /// that tenant's solves. Routed by the tenant salt itself so the
    /// choice is stable across requests.
    pub fn home_shard(&self, salt: u64) -> &Arc<SolveCache> {
        self.shard(salt)
    }

    /// Memoized solve, routed to the shard the salted key selects.
    pub fn get_or_solve(
        &self,
        salt: u64,
        repos: &[Repository],
        config: &YumConfig,
        db: &RpmDb,
        request: &SolveRequest,
    ) -> Result<Arc<Solution>, SolveError> {
        let key = SolveCache::salted_key(salt, repos, config, db, request);
        let shard = self.shard(key);
        if let Some(hit) = shard.lookup(key) {
            return Ok(hit);
        }
        let solution = Solver::new(repos, config).resolve(db, request)?;
        Ok(shard.insert(key, solution))
    }

    /// Counter-neutral probe across the bank (routes like
    /// [`get_or_solve`](Self::get_or_solve), touches no counters).
    pub fn peek(&self, key: u64) -> Option<Arc<Solution>> {
        self.shard(key).peek(key)
    }

    /// Per-shard counters, in shard order.
    pub fn shard_stats(&self) -> Vec<CacheStats> {
        self.shards.iter().map(|s| s.stats()).collect()
    }

    /// Bank-wide aggregate of the per-shard counters.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for s in &self.shards {
            let stats = s.stats();
            total.hits += stats.hits;
            total.misses += stats.misses;
            total.entries += stats.entries;
        }
        total
    }

    /// Export per-shard counters as `xcbc_svc_*` families (one series
    /// per shard, labeled `shard="i"`), plus bank-wide totals.
    pub fn register_metrics(&self, registry: &mut MetricRegistry) {
        for (i, stats) in self.shard_stats().iter().enumerate() {
            let shard = i.to_string();
            registry.set_counter(
                "xcbc_svc_cache_hits_total",
                "Tenant-salted depsolve lookups answered from a service cache shard",
                &[("shard", &shard)],
                stats.hits,
            );
            registry.set_counter(
                "xcbc_svc_cache_misses_total",
                "Tenant-salted depsolve lookups that fell through to a real solve",
                &[("shard", &shard)],
                stats.misses,
            );
            registry.set_gauge(
                "xcbc_svc_shard_entries",
                "Distinct solutions currently stored in a service cache shard",
                &[("shard", &shard)],
                stats.entries as f64,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xcbc_rpm::PackageBuilder;

    fn repos() -> Vec<Repository> {
        let mut r = Repository::new("xsede", "XSEDE");
        r.add_package(
            PackageBuilder::new("gromacs", "4.6.5", "2")
                .requires_simple("openmpi")
                .build(),
        );
        r.add_package(PackageBuilder::new("openmpi", "1.6.5", "1").build());
        vec![r]
    }

    #[test]
    fn hit_after_identical_request() {
        let cache = SolveCache::new();
        let repos = repos();
        let cfg = YumConfig::default();
        let db = RpmDb::new();
        let req = SolveRequest::install(["gromacs"]);

        let first = cache.get_or_solve(&repos, &cfg, &db, &req).unwrap();
        let second = cache.get_or_solve(&repos, &cfg, &db, &req).unwrap();
        assert!(Arc::ptr_eq(&first, &second), "second solve must be shared");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!(stats.hit_rate(), 0.5);
    }

    #[test]
    fn equivalent_requests_share_one_entry() {
        let cache = SolveCache::new();
        let repos = repos();
        let cfg = YumConfig::default();
        let db = RpmDb::new();
        cache
            .get_or_solve(&repos, &cfg, &db, &SolveRequest::install(["gromacs"]))
            .unwrap();
        // duplicate targets normalize away → same key, cache hit
        cache
            .get_or_solve(
                &repos,
                &cfg,
                &db,
                &SolveRequest::install(["gromacs", "gromacs"]),
            )
            .unwrap();
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn miss_after_repo_mutation() {
        let cache = SolveCache::new();
        let mut repos = repos();
        let cfg = YumConfig::default();
        let db = RpmDb::new();
        let req = SolveRequest::install(["gromacs"]);

        cache.get_or_solve(&repos, &cfg, &db, &req).unwrap();
        // mutate the repo: revision bumps, fingerprint changes, entry invalid
        repos[0].add_package(PackageBuilder::new("R", "3.1.0", "1").build());
        cache.get_or_solve(&repos, &cfg, &db, &req).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.hits, 0, "mutated repo must not hit");
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn miss_after_db_mutation() {
        let cache = SolveCache::new();
        let repos = repos();
        let cfg = YumConfig::default();
        let mut db = RpmDb::new();
        let req = SolveRequest::install(["gromacs"]);
        cache.get_or_solve(&repos, &cfg, &db, &req).unwrap();
        db.install(PackageBuilder::new("openmpi", "1.6.5", "1").build());
        let sol = cache.get_or_solve(&repos, &cfg, &db, &req).unwrap();
        assert_eq!(cache.stats().misses, 2, "db change must re-solve");
        assert_eq!(sol.installs.len(), 1, "openmpi now satisfied by db");
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = SolveCache::new();
        let mut repos = repos();
        let cfg = YumConfig::default();
        let db = RpmDb::new();
        let req = SolveRequest::install(["meep"]);
        assert!(cache.get_or_solve(&repos, &cfg, &db, &req).is_err());
        assert_eq!(cache.stats().entries, 0);
        // the repo gains the package: the retry must succeed (and miss,
        // because the fingerprint moved with the revision)
        repos[0].add_package(PackageBuilder::new("meep", "1.2.1", "1").build());
        assert!(cache.get_or_solve(&repos, &cfg, &db, &req).is_ok());
    }

    #[test]
    fn clear_drops_entries_keeps_counters() {
        let cache = SolveCache::new();
        let repos = repos();
        let cfg = YumConfig::default();
        let db = RpmDb::new();
        cache
            .get_or_solve(&repos, &cfg, &db, &SolveRequest::install(["gromacs"]))
            .unwrap();
        cache.clear();
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn counters_register_into_shared_registry() {
        let cache = SolveCache::new();
        let repos = repos();
        let cfg = YumConfig::default();
        let db = RpmDb::new();
        let req = SolveRequest::install(["gromacs"]);
        cache.get_or_solve(&repos, &cfg, &db, &req).unwrap();
        cache.get_or_solve(&repos, &cfg, &db, &req).unwrap();

        let mut registry = MetricRegistry::new();
        cache.register_metrics(&mut registry);
        assert_eq!(
            registry.counter_value("xcbc_solvecache_hits_total", &[]),
            Some(1)
        );
        assert_eq!(
            registry.counter_value("xcbc_solvecache_misses_total", &[]),
            Some(1)
        );
        assert_eq!(
            registry.gauge_value("xcbc_solvecache_entries", &[]),
            Some(1.0)
        );
        let prom = registry.render_prometheus();
        assert!(prom.contains("xcbc_solvecache_hits_total 1"), "{prom}");
    }

    #[test]
    fn salt_zero_is_the_identity_key() {
        let repos = repos();
        let cfg = YumConfig::default();
        let db = RpmDb::new();
        let req = SolveRequest::install(["gromacs"]);
        assert_eq!(
            SolveCache::salted_key(0, &repos, &cfg, &db, &req),
            SolveCache::key(&repos, &cfg, &db, &req),
        );
        assert_ne!(
            SolveCache::salted_key(7, &repos, &cfg, &db, &req),
            SolveCache::key(&repos, &cfg, &db, &req),
        );
    }

    #[test]
    fn distinct_salts_never_share_entries() {
        let cache = SolveCache::new();
        let repos = repos();
        let cfg = YumConfig::default();
        let db = RpmDb::new();
        let req = SolveRequest::install(["gromacs"]);
        cache
            .get_or_solve_salted(1, &repos, &cfg, &db, &req)
            .unwrap();
        cache
            .get_or_solve_salted(2, &repos, &cfg, &db, &req)
            .unwrap();
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 2, 2));
    }

    #[test]
    fn sharded_counters_are_per_shard() {
        let bank = ShardedSolveCache::new(4);
        let repos = repos();
        let cfg = YumConfig::default();
        let db = RpmDb::new();
        let req = SolveRequest::install(["gromacs"]);
        let salt = ShardedSolveCache::tenant_salt("campus-a");
        bank.get_or_solve(salt, &repos, &cfg, &db, &req).unwrap();
        bank.get_or_solve(salt, &repos, &cfg, &db, &req).unwrap();

        let key = SolveCache::salted_key(salt, &repos, &cfg, &db, &req);
        let home = bank.shard_index(key);
        let stats = bank.shard_stats();
        assert_eq!((stats[home].hits, stats[home].misses), (1, 1));
        for (i, s) in stats.iter().enumerate() {
            if i != home {
                assert_eq!((s.hits, s.misses, s.entries), (0, 0, 0), "shard {i}");
            }
        }
        assert_eq!(bank.stats().entries, 1);
        assert!(bank.peek(key).is_some());

        let mut registry = MetricRegistry::new();
        bank.register_metrics(&mut registry);
        let shard = home.to_string();
        assert_eq!(
            registry.counter_value("xcbc_svc_cache_hits_total", &[("shard", &shard)]),
            Some(1)
        );
    }

    #[test]
    fn concurrent_lookups_share_solutions() {
        let cache = Arc::new(SolveCache::new());
        let repos = Arc::new(repos());
        let cfg = Arc::new(YumConfig::default());
        let req = SolveRequest::install(["gromacs"]);

        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                let repos = Arc::clone(&repos);
                let cfg = Arc::clone(&cfg);
                let req = req.clone();
                scope.spawn(move || {
                    let db = RpmDb::new();
                    let sol = cache.get_or_solve(&repos, &cfg, &db, &req).unwrap();
                    assert_eq!(sol.installs.len(), 2);
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 8);
        assert_eq!(stats.entries, 1, "all threads share one entry");
        assert!(stats.misses >= 1);
    }
}
