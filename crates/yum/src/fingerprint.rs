//! Stable fingerprints over solver inputs.
//!
//! The fleet-scale solve cache needs a cheap, deterministic way to ask
//! "is this exactly the depsolve I already did?". A solve is a pure
//! function of three inputs: the visible repositories (contents and
//! priorities), the engine configuration (priorities plugin, host arch,
//! obsoletes), and the installed-package database. Each gets a 64-bit
//! FNV-1a fingerprint here; the cache key combines them with the
//! normalized request.
//!
//! Repository fingerprints lean on the `revision` counter a repository
//! bumps on every package add/remove (the repomd revision analog), so
//! fingerprinting is O(#repos), not O(#packages). Database fingerprints
//! walk the installed NEVRAs — `RpmDb` iterates in name order, so the
//! digest is deterministic.

use crate::repo::Repository;
use crate::YumConfig;
use xcbc_rpm::RpmDb;

/// 64-bit FNV-1a — tiny, dependency-free, and stable across platforms.
/// Not cryptographic; collisions merely cause a (correct-by-replay)
/// cache miss ambiguity that the deterministic solver tolerates.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(FNV_OFFSET)
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorb raw bytes.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Absorb a string, terminated so `("ab","c")` ≠ `("a","bc")`.
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write(s.as_bytes()).write(&[0xff])
    }

    /// Absorb a little-endian u64.
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write(&v.to_le_bytes())
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Fingerprint of one repository's solver-visible identity: id,
/// revision, enabledness, and priority. The revision counter stands in
/// for the package payload (it bumps on every mutation).
pub fn repo_fingerprint(repo: &Repository) -> u64 {
    let mut h = Fnv64::new();
    h.write_str(&repo.id)
        .write_u64(repo.revision)
        .write_u64(repo.enabled as u64)
        .write_u64(repo.priority as u64)
        .write_u64(repo.package_count() as u64);
    h.finish()
}

/// Combined fingerprint of a repository set plus the engine config —
/// everything [`crate::Solver::new`] consumes. Order-sensitive, like
/// the solver's own candidate collection.
pub fn repos_fingerprint(repos: &[Repository], config: &YumConfig) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(config.plugin_priorities as u64)
        .write_u64(config.obsoletes as u64)
        .write_str(config.host_arch.as_str());
    for r in repos {
        h.write_u64(repo_fingerprint(r));
    }
    h.finish()
}

/// Fingerprint of an installed-package database: every installed NEVRA
/// in `RpmDb`'s deterministic name order.
pub fn db_fingerprint(db: &RpmDb) -> u64 {
    let mut h = Fnv64::new();
    for ip in db.iter() {
        h.write_str(&ip.package.nevra.to_string());
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xcbc_rpm::PackageBuilder;

    #[test]
    fn fnv_is_order_and_boundary_sensitive() {
        let a = Fnv64::new().write_str("ab").write_str("c").finish();
        let b = Fnv64::new().write_str("a").write_str("bc").finish();
        assert_ne!(a, b);
        let c = Fnv64::new().write_u64(1).write_u64(2).finish();
        let d = Fnv64::new().write_u64(2).write_u64(1).finish();
        assert_ne!(c, d);
    }

    #[test]
    fn repo_fingerprint_tracks_revision() {
        let mut r = Repository::new("xsede", "XSEDE");
        let before = repo_fingerprint(&r);
        r.add_package(PackageBuilder::new("gromacs", "4.6.5", "1").build());
        assert_ne!(repo_fingerprint(&r), before, "mutation must change it");
    }

    #[test]
    fn repos_fingerprint_tracks_config() {
        let repos = vec![Repository::new("a", "A"), Repository::new("b", "B")];
        let cfg = YumConfig::default();
        let noplugin = YumConfig {
            plugin_priorities: false,
            ..YumConfig::default()
        };
        assert_ne!(
            repos_fingerprint(&repos, &cfg),
            repos_fingerprint(&repos, &noplugin)
        );
        assert_eq!(
            repos_fingerprint(&repos, &cfg),
            repos_fingerprint(&repos, &cfg)
        );
    }

    #[test]
    fn db_fingerprint_tracks_installs() {
        let mut db = RpmDb::new();
        let empty = db_fingerprint(&db);
        db.install(PackageBuilder::new("bash", "4.1.2", "15").build());
        let one = db_fingerprint(&db);
        assert_ne!(empty, one);
        let mut db2 = RpmDb::new();
        db2.install(PackageBuilder::new("bash", "4.1.2", "15").build());
        assert_eq!(one, db_fingerprint(&db2), "same contents, same digest");
    }
}
