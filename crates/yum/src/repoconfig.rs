//! `.repo` configuration files — a hand-rolled INI parser/renderer.
//!
//! The paper's §3 gives two ways to enable XNIT: install the repo RPM, or
//! "install the yum-plugin-priorities package, then create the file
//! `/etc/yum.repos.d/xsede.repo` with the lines specified in the XSEDE Yum
//! repository README". This module is that second path: it parses the same
//! INI dialect yum does (sections, `key=value`, `#`/`;` comments) and can
//! render a [`Repository`] back to file form.

use crate::repo::Repository;
use std::fmt;

/// Parsed form of one section of a `.repo` file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepoConfig {
    pub id: String,
    pub name: String,
    pub baseurl: String,
    pub enabled: bool,
    pub gpgcheck: bool,
    pub priority: Option<u32>,
}

/// Errors from [`parse_repo_file`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RepoFileError {
    /// `key=value` line outside any `[section]`.
    KeyOutsideSection { line_no: usize, line: String },
    /// A line that is neither a section, comment, blank, nor `key=value`.
    Malformed { line_no: usize, line: String },
    /// Section missing the mandatory `baseurl`.
    MissingBaseurl { section: String },
    /// Empty section name `[]`.
    EmptySectionName { line_no: usize },
    /// Bad integer value.
    BadValue {
        section: String,
        key: String,
        value: String,
    },
}

impl fmt::Display for RepoFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepoFileError::KeyOutsideSection { line_no, line } => {
                write!(f, "line {line_no}: key/value outside a section: {line}")
            }
            RepoFileError::Malformed { line_no, line } => {
                write!(f, "line {line_no}: malformed line: {line}")
            }
            RepoFileError::MissingBaseurl { section } => {
                write!(f, "repo [{section}] has no baseurl")
            }
            RepoFileError::EmptySectionName { line_no } => {
                write!(f, "line {line_no}: empty section name")
            }
            RepoFileError::BadValue {
                section,
                key,
                value,
            } => {
                write!(f, "repo [{section}]: bad value for {key}: {value}")
            }
        }
    }
}

impl std::error::Error for RepoFileError {}

/// Parse a `.repo` file into its sections.
///
/// ```
/// use xcbc_yum::parse_repo_file;
/// let text = "\
/// [xsede]
/// name=XSEDE National Integration Toolkit
/// baseurl=http://cb-repo.iu.xsede.org/xsederepo/
/// enabled=1
/// gpgcheck=0
/// priority=50
/// ";
/// let repos = parse_repo_file(text).unwrap();
/// assert_eq!(repos[0].id, "xsede");
/// assert_eq!(repos[0].priority, Some(50));
/// ```
pub fn parse_repo_file(text: &str) -> Result<Vec<RepoConfig>, RepoFileError> {
    struct Section {
        id: String,
        name: Option<String>,
        baseurl: Option<String>,
        enabled: bool,
        gpgcheck: bool,
        priority: Option<u32>,
    }
    let finish = |s: Section| -> Result<RepoConfig, RepoFileError> {
        let baseurl = s.baseurl.ok_or(RepoFileError::MissingBaseurl {
            section: s.id.clone(),
        })?;
        Ok(RepoConfig {
            name: s.name.unwrap_or_else(|| s.id.clone()),
            id: s.id,
            baseurl,
            enabled: s.enabled,
            gpgcheck: s.gpgcheck,
            priority: s.priority,
        })
    };

    let mut out = Vec::new();
    let mut current: Option<Section> = None;
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with(';') {
            continue;
        }
        if let Some(stripped) = line.strip_prefix('[') {
            let id = stripped
                .strip_suffix(']')
                .ok_or_else(|| RepoFileError::Malformed {
                    line_no,
                    line: line.to_string(),
                })?
                .trim();
            if id.is_empty() {
                return Err(RepoFileError::EmptySectionName { line_no });
            }
            if let Some(prev) = current.take() {
                out.push(finish(prev)?);
            }
            current = Some(Section {
                id: id.to_string(),
                name: None,
                baseurl: None,
                enabled: true,
                gpgcheck: true,
                priority: None,
            });
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| RepoFileError::Malformed {
                line_no,
                line: line.to_string(),
            })?;
        let (key, value) = (key.trim(), value.trim());
        let section = current
            .as_mut()
            .ok_or_else(|| RepoFileError::KeyOutsideSection {
                line_no,
                line: line.to_string(),
            })?;
        match key {
            "name" => section.name = Some(value.to_string()),
            "baseurl" | "mirrorlist" => section.baseurl = Some(value.to_string()),
            "enabled" => section.enabled = value != "0",
            "gpgcheck" => section.gpgcheck = value != "0",
            "priority" => {
                let p = value.parse::<u32>().map_err(|_| RepoFileError::BadValue {
                    section: section.id.clone(),
                    key: key.to_string(),
                    value: value.to_string(),
                })?;
                section.priority = Some(p);
            }
            // yum ignores keys it doesn't know
            _ => {}
        }
    }
    if let Some(prev) = current.take() {
        out.push(finish(prev)?);
    }
    Ok(out)
}

/// Render a repository back to `.repo` file form.
pub fn render_repo_file(repo: &Repository) -> String {
    format!(
        "[{id}]\nname={name}\nbaseurl={url}\nenabled={en}\ngpgcheck={gpg}\npriority={prio}\n",
        id = repo.id,
        name = repo.name,
        url = repo.baseurl,
        en = repo.enabled as u8,
        gpg = repo.gpgcheck as u8,
        prio = repo.priority,
    )
}

impl RepoConfig {
    /// Materialize an empty [`Repository`] with this configuration (the
    /// packages come from a mirror fetch).
    pub fn into_repository(self) -> Repository {
        let mut r = Repository::new(self.id, self.name).with_baseurl(self.baseurl);
        r.enabled = self.enabled;
        r.gpgcheck = self.gpgcheck;
        if let Some(p) = self.priority {
            r.priority = p;
        }
        r
    }
}

/// The `/etc/yum.repos.d/xsede.repo` contents the XSEDE README specifies,
/// as shipped by the `xsede-release` repo RPM.
pub const XSEDE_REPO_FILE: &str = "\
# XSEDE National Integration Toolkit (XNIT) yum repository
# See: http://cb-repo.iu.xsede.org/xsederepo/readme.xsederepo
[xsede]
name=XSEDE National Integration Toolkit
baseurl=http://cb-repo.iu.xsede.org/xsederepo/
enabled=1
gpgcheck=0
priority=50
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_the_readme_file() {
        let repos = parse_repo_file(XSEDE_REPO_FILE).unwrap();
        assert_eq!(repos.len(), 1);
        let r = &repos[0];
        assert_eq!(r.id, "xsede");
        assert!(r.enabled);
        assert!(!r.gpgcheck);
        assert_eq!(r.priority, Some(50));
        assert!(r.baseurl.contains("xsederepo"));
    }

    #[test]
    fn multiple_sections() {
        let text = "[base]\nbaseurl=http://mirror.centos.org/6.5/os/\n[updates]\nname=updates\nbaseurl=http://mirror.centos.org/6.5/updates/\nenabled=0\n";
        let repos = parse_repo_file(text).unwrap();
        assert_eq!(repos.len(), 2);
        assert_eq!(repos[0].name, "base", "name defaults to id");
        assert!(!repos[1].enabled);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# c1\n\n; c2\n[x]\nbaseurl=u\n# inline-ish\n";
        assert_eq!(parse_repo_file(text).unwrap().len(), 1);
    }

    #[test]
    fn error_key_outside_section() {
        let err = parse_repo_file("enabled=1\n").unwrap_err();
        assert!(matches!(
            err,
            RepoFileError::KeyOutsideSection { line_no: 1, .. }
        ));
    }

    #[test]
    fn error_missing_baseurl() {
        let err = parse_repo_file("[x]\nenabled=1\n").unwrap_err();
        assert!(matches!(err, RepoFileError::MissingBaseurl { .. }));
    }

    #[test]
    fn error_malformed_line() {
        let err = parse_repo_file("[x]\nbaseurl=u\nnot a kv line\n").unwrap_err();
        assert!(matches!(err, RepoFileError::Malformed { line_no: 3, .. }));
    }

    #[test]
    fn error_bad_priority() {
        let err = parse_repo_file("[x]\nbaseurl=u\npriority=high\n").unwrap_err();
        assert!(matches!(err, RepoFileError::BadValue { .. }));
    }

    #[test]
    fn error_empty_section() {
        let err = parse_repo_file("[]\nbaseurl=u\n").unwrap_err();
        assert!(matches!(err, RepoFileError::EmptySectionName { .. }));
    }

    #[test]
    fn unknown_keys_ignored() {
        let text = "[x]\nbaseurl=u\nmetadata_expire=90m\nsslverify=1\n";
        assert!(parse_repo_file(text).is_ok());
    }

    #[test]
    fn render_parse_roundtrip() {
        let repo = Repository::new("xsede", "XSEDE National Integration Toolkit")
            .with_priority(50)
            .with_baseurl("http://cb-repo.iu.xsede.org/xsederepo/");
        let text = render_repo_file(&repo);
        let parsed = parse_repo_file(&text).unwrap();
        assert_eq!(parsed.len(), 1);
        let back = parsed.into_iter().next().unwrap().into_repository();
        assert_eq!(back.id, repo.id);
        assert_eq!(back.name, repo.name);
        assert_eq!(back.baseurl, repo.baseurl);
        assert_eq!(back.priority, repo.priority);
        assert_eq!(back.enabled, repo.enabled);
        assert_eq!(back.gpgcheck, repo.gpgcheck);
    }
}
