//! `yum check-update` — enumerate available updates without applying them.
//!
//! The paper: "As new packages are created, when 'yum update' is called,
//! it will find any new packages in the repositories your server is using
//! and will try to resolve any dependencies for those packages. Then it
//! will provide the administrator with a full list of packages to be
//! updated."

use crate::priorities::apply_priorities;
use crate::repo::Repository;
use crate::YumConfig;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use xcbc_rpm::{Evr, RpmDb};

/// Classification of an available update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UpdateKind {
    /// Same version, newer release (packaging/backport fix).
    ReleaseBump,
    /// Newer upstream version.
    VersionBump,
    /// Epoch raised — a forced upgrade.
    EpochBump,
}

/// One row of `yum check-update` output.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckUpdate {
    pub name: String,
    pub installed: Evr,
    pub available: Evr,
    pub repo_id: String,
    pub kind: UpdateKind,
}

impl CheckUpdate {
    /// Render the way yum prints it: `name.arch  evr  repo`.
    pub fn render(&self) -> String {
        format!(
            "{:<30} {:<20} {}",
            self.name,
            self.available.to_string(),
            self.repo_id
        )
    }
}

/// Compute the available updates for everything installed in `db`.
pub fn check_update(repos: &[Repository], config: &YumConfig, db: &RpmDb) -> Vec<CheckUpdate> {
    let enabled: Vec<&Repository> = repos.iter().filter(|r| r.enabled).collect();
    let candidates = if config.plugin_priorities {
        apply_priorities(&enabled)
    } else {
        enabled
            .iter()
            .flat_map(|r| r.packages().iter().map(move |p| (*r, p)))
            .collect()
    };

    // best candidate per name
    let mut best: HashMap<&str, (&Repository, &xcbc_rpm::Package)> = HashMap::new();
    for (repo, p) in candidates {
        if !p.arch().installable_on(config.host_arch) {
            continue;
        }
        best.entry(p.name())
            .and_modify(|slot| {
                let better_prio = repo.priority < slot.0.priority;
                let same_prio_newer =
                    repo.priority == slot.0.priority && p.nevra.evr > slot.1.nevra.evr;
                if better_prio || same_prio_newer {
                    *slot = (repo, p);
                }
            })
            .or_insert((repo, p));
    }

    let mut out: Vec<CheckUpdate> = Vec::new();
    for ip in db.iter() {
        let name = ip.package.name();
        if let Some((repo, candidate)) = best.get(name) {
            let installed = &ip.package.nevra.evr;
            let available = &candidate.nevra.evr;
            if available > installed {
                let kind = if available.epoch > installed.epoch {
                    UpdateKind::EpochBump
                } else if available.version != installed.version {
                    UpdateKind::VersionBump
                } else {
                    UpdateKind::ReleaseBump
                };
                out.push(CheckUpdate {
                    name: name.to_string(),
                    installed: installed.clone(),
                    available: available.clone(),
                    repo_id: repo.id.clone(),
                    kind,
                });
            }
        }
    }
    out.sort_by(|a, b| a.name.cmp(&b.name));
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xcbc_rpm::PackageBuilder;

    fn setup() -> (Vec<Repository>, YumConfig, RpmDb) {
        let mut repo = Repository::new("xsede", "XSEDE");
        repo.add_package(PackageBuilder::new("R", "3.1.0", "1.el6").build());
        repo.add_package(PackageBuilder::new("gromacs", "4.6.5", "3.el6").build());
        repo.add_package(
            PackageBuilder::new("java", "1.7.0", "1.el6")
                .epoch(1)
                .build(),
        );
        let mut db = RpmDb::new();
        db.install(PackageBuilder::new("R", "3.0.2", "1.el6").build());
        db.install(PackageBuilder::new("gromacs", "4.6.5", "2.el6").build());
        db.install(PackageBuilder::new("java", "1.8.0", "5.el6").build());
        db.install(PackageBuilder::new("local-only", "1.0", "1").build());
        (vec![repo], YumConfig::default(), db)
    }

    #[test]
    fn kinds_classified() {
        let (repos, cfg, db) = setup();
        let updates = check_update(&repos, &cfg, &db);
        assert_eq!(updates.len(), 3);
        let by_name: HashMap<_, _> = updates.iter().map(|u| (u.name.as_str(), u)).collect();
        assert_eq!(by_name["R"].kind, UpdateKind::VersionBump);
        assert_eq!(by_name["gromacs"].kind, UpdateKind::ReleaseBump);
        assert_eq!(by_name["java"].kind, UpdateKind::EpochBump);
    }

    #[test]
    fn not_installed_packages_not_listed() {
        let (repos, cfg, db) = setup();
        let updates = check_update(&repos, &cfg, &db);
        assert!(!updates.iter().any(|u| u.name == "local-only"));
    }

    #[test]
    fn current_packages_not_listed() {
        let (repos, cfg, mut db) = setup();
        db.erase("java");
        db.install(
            PackageBuilder::new("java", "1.7.0", "1.el6")
                .epoch(1)
                .build(),
        );
        let updates = check_update(&repos, &cfg, &db);
        assert!(!updates.iter().any(|u| u.name == "java"));
    }

    #[test]
    fn disabled_repo_produces_no_updates() {
        let (mut repos, cfg, db) = setup();
        repos[0].enabled = false;
        assert!(check_update(&repos, &cfg, &db).is_empty());
    }

    #[test]
    fn priority_shadowing_limits_updates() {
        let mut base = Repository::new("base", "base").with_priority(1);
        base.add_package(PackageBuilder::new("python", "2.6.6", "52").build());
        let mut xsede = Repository::new("xsede", "xsede").with_priority(50);
        xsede.add_package(PackageBuilder::new("python", "2.7.5", "1").build());
        let mut db = RpmDb::new();
        db.install(PackageBuilder::new("python", "2.6.6", "52").build());
        let cfg = YumConfig::default();
        let updates = check_update(&[base, xsede], &cfg, &db);
        assert!(
            updates.is_empty(),
            "shadowed python 2.7.5 must not appear: {updates:?}"
        );
    }

    #[test]
    fn render_contains_fields() {
        let (repos, cfg, db) = setup();
        let updates = check_update(&repos, &cfg, &db);
        let line = updates[0].render();
        assert!(line.contains(&updates[0].name));
        assert!(line.contains("xsede"));
    }
}
