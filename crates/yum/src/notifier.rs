//! Update notification tooling.
//!
//! The paper (§3): "Yum still requires an administrator to periodically
//! run update checks. Tools are available (or admins can write their own
//! scripts and cron jobs) to either automate Yum updates or notify
//! administrators of package updates. Updating packages automatically may
//! cause unexpected behavior in a production environment ... Creating a
//! notification script so that packages may be reviewed and tested on
//! non-production nodes or systems might be the more prudent action."
//!
//! [`UpdateNotifier`] models the cron-driven checker (the "Duke yum
//! updates" analog) under the three policies that paragraph contrasts.

use crate::updates::CheckUpdate;
use crate::{SolveError, Yum};
use serde::{Deserialize, Serialize};
use xcbc_rpm::RpmDb;

/// How a site handles available updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UpdatePolicy {
    /// Apply every update as soon as the cron job sees it.
    Automatic,
    /// Only notify; an administrator applies updates by hand later.
    NotifyOnly,
    /// Notify, and stage updates onto designated test nodes first
    /// ("reviewed and tested on non-production nodes").
    StagedTest,
}

/// One cron-run's outcome.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NotificationReport {
    /// Updates visible at check time.
    pub pending: Vec<String>,
    /// Updates applied during this run (Automatic policy, or staged nodes).
    pub applied: Vec<String>,
    /// Scriptlets that restarted services during the run — the paper's
    /// "unexpected behavior" risk surface.
    pub service_restarts: Vec<String>,
    /// Human-readable mail body.
    pub mail_body: String,
}

/// Periodic update checker bound to a policy.
#[derive(Debug, Clone)]
pub struct UpdateNotifier {
    pub policy: UpdatePolicy,
    /// Cron spec, informational only (e.g. `"0 4 * * *"`).
    pub schedule: String,
    /// Admin mail target.
    pub mailto: String,
}

impl UpdateNotifier {
    pub fn new(policy: UpdatePolicy) -> Self {
        UpdateNotifier {
            policy,
            schedule: "0 4 * * *".to_string(),
            mailto: "root@localhost".to_string(),
        }
    }

    /// Run one check cycle against a production database. For
    /// [`UpdatePolicy::StagedTest`], `test_db` is the non-production node
    /// the updates get applied to for review.
    pub fn run_check(
        &self,
        yum: &mut Yum,
        production_db: &mut RpmDb,
        test_db: Option<&mut RpmDb>,
    ) -> Result<NotificationReport, SolveError> {
        let mut report = NotificationReport::default();
        let pending: Vec<CheckUpdate> = yum.check_update(production_db);
        report.pending = pending
            .iter()
            .map(|u| format!("{} {} -> {}", u.name, u.installed, u.available))
            .collect();

        match self.policy {
            UpdatePolicy::Automatic => {
                let tx_report = yum.update(production_db, None)?;
                report.applied = tx_report.upgraded.clone();
                report.service_restarts = tx_report
                    .scriptlets
                    .iter()
                    .filter(|s| s.action.contains("restart"))
                    .map(|s| format!("{}: {}", s.package, s.action))
                    .collect();
            }
            UpdatePolicy::NotifyOnly => {
                // nothing applied anywhere
            }
            UpdatePolicy::StagedTest => {
                if let Some(tdb) = test_db {
                    let tx_report = yum.update(tdb, None)?;
                    report.applied = tx_report.upgraded.clone();
                    report.service_restarts = tx_report
                        .scriptlets
                        .iter()
                        .filter(|s| s.action.contains("restart"))
                        .map(|s| format!("{}: {}", s.package, s.action))
                        .collect();
                }
            }
        }

        report.mail_body = self.render_mail(&report);
        Ok(report)
    }

    fn render_mail(&self, report: &NotificationReport) -> String {
        let mut body = String::new();
        body.push_str(&format!(
            "To: {}\nSubject: yum update check ({:?})\n\n",
            self.mailto, self.policy
        ));
        if report.pending.is_empty() {
            body.push_str("No updates available.\n");
        } else {
            body.push_str(&format!("{} update(s) available:\n", report.pending.len()));
            for p in &report.pending {
                body.push_str(&format!("  {p}\n"));
            }
        }
        if !report.applied.is_empty() {
            let target = match self.policy {
                UpdatePolicy::Automatic => "production",
                _ => "test nodes",
            };
            body.push_str(&format!(
                "Applied to {target}: {}\n",
                report.applied.join(", ")
            ));
        }
        if !report.service_restarts.is_empty() {
            body.push_str("WARNING: service restarts occurred:\n");
            for s in &report.service_restarts {
                body.push_str(&format!("  {s}\n"));
            }
        }
        body
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Repository, YumConfig};
    use xcbc_rpm::{PackageBuilder, Scriptlet, ScriptletPhase};

    fn setup() -> (Yum, RpmDb, RpmDb) {
        let mut repo = Repository::new("xsede", "XSEDE");
        repo.add_package(
            PackageBuilder::new("torque", "4.2.10", "1.el6")
                .scriptlet(
                    Scriptlet::new(ScriptletPhase::Post, "service pbs_server restart").restarting(),
                )
                .build(),
        );
        let mut yum = Yum::new(YumConfig::default());
        yum.add_repository(repo);
        let mut prod = RpmDb::new();
        prod.install(PackageBuilder::new("torque", "4.2.8", "2.el6").build());
        let mut test = RpmDb::new();
        test.install(PackageBuilder::new("torque", "4.2.8", "2.el6").build());
        (yum, prod, test)
    }

    #[test]
    fn automatic_applies_to_production() {
        let (mut yum, mut prod, _) = setup();
        let notifier = UpdateNotifier::new(UpdatePolicy::Automatic);
        let report = notifier.run_check(&mut yum, &mut prod, None).unwrap();
        assert_eq!(report.pending.len(), 1);
        assert_eq!(report.applied.len(), 1);
        assert_eq!(
            prod.newest("torque").unwrap().package.evr().version,
            "4.2.10"
        );
        assert_eq!(
            report.service_restarts.len(),
            1,
            "restart risk must be visible"
        );
        assert!(report.mail_body.contains("WARNING"));
    }

    #[test]
    fn notify_only_touches_nothing() {
        let (mut yum, mut prod, _) = setup();
        let notifier = UpdateNotifier::new(UpdatePolicy::NotifyOnly);
        let report = notifier.run_check(&mut yum, &mut prod, None).unwrap();
        assert_eq!(report.pending.len(), 1);
        assert!(report.applied.is_empty());
        assert_eq!(
            prod.newest("torque").unwrap().package.evr().version,
            "4.2.8"
        );
        assert!(report.mail_body.contains("1 update(s) available"));
    }

    #[test]
    fn staged_test_applies_only_to_test_node() {
        let (mut yum, mut prod, mut test) = setup();
        let notifier = UpdateNotifier::new(UpdatePolicy::StagedTest);
        let report = notifier
            .run_check(&mut yum, &mut prod, Some(&mut test))
            .unwrap();
        assert_eq!(report.applied.len(), 1);
        assert_eq!(
            prod.newest("torque").unwrap().package.evr().version,
            "4.2.8"
        );
        assert_eq!(
            test.newest("torque").unwrap().package.evr().version,
            "4.2.10"
        );
        assert!(report.mail_body.contains("test nodes"));
    }

    #[test]
    fn no_updates_produces_clean_mail() {
        let (mut yum, mut prod, _) = setup();
        yum.update(&mut prod, None).unwrap();
        let notifier = UpdateNotifier::new(UpdatePolicy::NotifyOnly);
        let report = notifier.run_check(&mut yum, &mut prod, None).unwrap();
        assert!(report.pending.is_empty());
        assert!(report.mail_body.contains("No updates available"));
    }
}
