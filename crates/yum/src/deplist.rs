//! `yum deplist` — render a package's dependency tree against the
//! enabled repositories (what a training lab uses to explain why
//! `yum install gromacs` pulled in fifteen packages).

use crate::solver::Solver;
use std::collections::BTreeSet;

/// One line of deplist output: the dependency and its chosen provider.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepListEntry {
    pub depth: usize,
    pub requirement: String,
    pub provider: Option<String>,
}

/// Walk the dependency tree of `name` breadth-first to `max_depth`,
/// reporting the provider the solver would choose for each requirement.
pub fn deplist(solver: &Solver<'_>, name: &str, max_depth: usize) -> Vec<DepListEntry> {
    let mut out = Vec::new();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let root = match solver.best_by_name(name) {
        Some(p) => p,
        None => {
            out.push(DepListEntry {
                depth: 0,
                requirement: name.to_string(),
                provider: None,
            });
            return out;
        }
    };
    let mut frontier = vec![root];
    seen.insert(root.name().to_string());
    for depth in 0..max_depth {
        let mut next = Vec::new();
        for pkg in frontier {
            for req in &pkg.requires {
                let provider = solver.best_provider(req);
                out.push(DepListEntry {
                    depth,
                    requirement: format!("{} -> {}", pkg.name(), req),
                    provider: provider.map(|p| p.nevra.to_string()),
                });
                if let Some(p) = provider {
                    if seen.insert(p.name().to_string()) {
                        next.push(p);
                    }
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    out
}

/// Render like `yum deplist`.
pub fn render_deplist(entries: &[DepListEntry]) -> String {
    let mut out = String::new();
    for e in entries {
        out.push_str(&format!(
            "{}dependency: {}\n{} provider: {}\n",
            "  ".repeat(e.depth),
            e.requirement,
            "  ".repeat(e.depth),
            e.provider.as_deref().unwrap_or("(none found)")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Repository, YumConfig};
    use xcbc_rpm::PackageBuilder;

    fn repos() -> Vec<Repository> {
        let mut r = Repository::new("t", "t");
        r.add_package(
            PackageBuilder::new("app", "1", "1")
                .requires_simple("lib")
                .build(),
        );
        r.add_package(
            PackageBuilder::new("lib", "1", "1")
                .requires_simple("base")
                .build(),
        );
        r.add_package(PackageBuilder::new("base", "1", "1").build());
        r.add_package(
            PackageBuilder::new("broken", "1", "1")
                .requires_simple("ghost")
                .build(),
        );
        vec![r]
    }

    #[test]
    fn walks_transitive_deps() {
        let repos = repos();
        let cfg = YumConfig::default();
        let solver = Solver::new(&repos, &cfg);
        let entries = deplist(&solver, "app", 10);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].depth, 0);
        assert!(entries[0].provider.as_deref().unwrap().starts_with("lib"));
        assert_eq!(entries[1].depth, 1);
        assert!(entries[1].provider.as_deref().unwrap().starts_with("base"));
    }

    #[test]
    fn missing_provider_reported() {
        let repos = repos();
        let cfg = YumConfig::default();
        let solver = Solver::new(&repos, &cfg);
        let entries = deplist(&solver, "broken", 5);
        assert_eq!(entries[0].provider, None);
        assert!(render_deplist(&entries).contains("(none found)"));
    }

    #[test]
    fn unknown_package_is_single_unprovided_line() {
        let repos = repos();
        let cfg = YumConfig::default();
        let solver = Solver::new(&repos, &cfg);
        let entries = deplist(&solver, "nonexistent", 5);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].provider, None);
    }

    #[test]
    fn depth_limit_respected() {
        let repos = repos();
        let cfg = YumConfig::default();
        let solver = Solver::new(&repos, &cfg);
        let entries = deplist(&solver, "app", 1);
        assert_eq!(entries.len(), 1, "only depth 0 expanded");
    }
}
