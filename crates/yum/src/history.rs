//! `yum history` — the transaction journal.
//!
//! Every install/update/erase run through [`crate::Yum`] is journaled so
//! an administrator can audit what changed (and the training curriculum in
//! `xcbc-core` can grade a student's lab by its history).

use serde::{Deserialize, Serialize};
use xcbc_rpm::TransactionReport;

/// One journaled transaction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HistoryEntry {
    /// Monotonic id (yum history IDs start at 1).
    pub id: u64,
    /// The command line, e.g. `install gromacs`.
    pub command: String,
    pub installed: Vec<String>,
    pub upgraded: Vec<String>,
    pub erased: Vec<String>,
    /// Net disk delta of the transaction.
    pub size_delta_bytes: i64,
}

impl HistoryEntry {
    /// Count of package operations in this entry.
    pub fn action_count(&self) -> usize {
        self.installed.len() + self.upgraded.len() + self.erased.len()
    }
}

/// The journal.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct YumHistory {
    entries: Vec<HistoryEntry>,
}

impl YumHistory {
    pub fn new() -> Self {
        Self::default()
    }

    /// Journal a completed transaction.
    pub fn record(&mut self, command: &str, report: &TransactionReport) {
        let id = self.entries.len() as u64 + 1;
        self.entries.push(HistoryEntry {
            id,
            command: command.to_string(),
            installed: report.installed.clone(),
            upgraded: report.upgraded.clone(),
            erased: report.erased.clone(),
            size_delta_bytes: report.size_delta_bytes,
        });
    }

    pub fn entries(&self) -> &[HistoryEntry] {
        &self.entries
    }

    pub fn last(&self) -> Option<&HistoryEntry> {
        self.entries.last()
    }

    /// Render like `yum history list`.
    pub fn render(&self) -> String {
        let mut out =
            String::from("ID | Command        | Actions\n---+----------------+--------\n");
        for e in self.entries.iter().rev() {
            out.push_str(&format!(
                "{:>2} | {:<14} | {}\n",
                e.id,
                truncate(&e.command, 14),
                e.action_count()
            ));
        }
        out
    }
}

fn truncate(s: &str, n: usize) -> &str {
    if s.len() <= n {
        s
    } else {
        &s[..n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(installed: &[&str]) -> TransactionReport {
        TransactionReport {
            installed: installed.iter().map(|s| s.to_string()).collect(),
            ..Default::default()
        }
    }

    #[test]
    fn ids_are_monotonic_from_one() {
        let mut h = YumHistory::new();
        h.record("install a", &report(&["a-1-1.x86_64"]));
        h.record("install b", &report(&["b-1-1.x86_64"]));
        assert_eq!(h.entries()[0].id, 1);
        assert_eq!(h.entries()[1].id, 2);
        assert_eq!(h.last().unwrap().command, "install b");
    }

    #[test]
    fn action_counts() {
        let mut h = YumHistory::new();
        let mut r = report(&["a-1-1"]);
        r.upgraded.push("b-2-1".into());
        r.erased.push("c-1-1".into());
        h.record("update", &r);
        assert_eq!(h.last().unwrap().action_count(), 3);
    }

    #[test]
    fn render_lists_newest_first() {
        let mut h = YumHistory::new();
        h.record("install old", &report(&["a"]));
        h.record("install new", &report(&["b"]));
        let rendered = h.render();
        let old_pos = rendered.find("install old").unwrap();
        let new_pos = rendered.find("install new").unwrap();
        assert!(new_pos < old_pos);
    }
}
