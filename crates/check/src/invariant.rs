//! The [`Invariant`] trait and the registry of default checkers.

use crate::invariants;
use crate::outcome::SoakOutcome;
use std::fmt;

/// One observed breach of an invariant, with enough context to debug it
/// from the printed soak report alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Name of the invariant that failed ([`Invariant::name`]).
    pub invariant: &'static str,
    /// What exactly was inconsistent, with the offending values.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.invariant, self.detail)
    }
}

/// A cross-crate property that must hold for every
/// [`SoakOutcome`], whatever the seed, fleet shape, fault plan, or
/// workload.
///
/// Checkers are pure observers: they may re-run deterministic
/// computations (a fresh depsolve, a trace walk) but must not mutate
/// the outcome. Returning an empty vec means the invariant held.
pub trait Invariant {
    /// Stable identifier used in reports and by the shrinker to decide
    /// whether a smaller scenario still reproduces the *same* failure.
    fn name(&self) -> &'static str;

    /// Check the outcome, returning every violation found.
    fn check(&self, outcome: &SoakOutcome) -> Vec<Violation>;
}

/// The full default suite, in the order violations are reported.
pub fn default_invariants() -> Vec<Box<dyn Invariant + Send + Sync>> {
    vec![
        Box::new(invariants::RpmTxConservation),
        Box::new(invariants::EvrTotalOrder),
        Box::new(invariants::TimelineMonotone),
        Box::new(invariants::SchedConservation),
        Box::new(invariants::SchedNoStarvation),
        Box::new(invariants::SolveCacheCoherence),
        Box::new(invariants::CheckpointResumeEquivalence),
        Box::new(invariants::GmetadRollup),
        Box::new(invariants::CampaignNoJobLost),
        Box::new(invariants::CampaignConverges),
        Box::new(invariants::ElasticNoJobLost),
        Box::new(invariants::ElasticConverges),
        Box::new(invariants::WorkloadConservation),
        Box::new(invariants::AnalysisCriticalPath),
        Box::new(invariants::SvcAdmission),
        Box::new(invariants::SvcReplay),
    ]
}
