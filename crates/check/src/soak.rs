//! The soak driver: run seeds, report the first violation, shrink it.

use crate::invariant::{Invariant, Violation};
use crate::outcome::SoakOutcome;
use crate::scenario::{Scenario, ScenarioLimits};
use xcbc_core::campaign::CampaignMutation;
use xcbc_core::elastic::ElasticMutation;
use xcbc_sched::JobState;

/// Configuration for one [`soak`] run.
#[derive(Debug, Clone, Copy)]
pub struct SoakConfig {
    /// How many consecutive seeds to run.
    pub seeds: u64,
    /// First seed (`start_seed..start_seed + seeds`).
    pub start_seed: u64,
    /// Enable fault injection in generated scenarios.
    pub faults: bool,
    /// On violation, shrink to a minimal reproducing scenario.
    pub shrink: bool,
    /// Scenario size bounds.
    pub limits: ScenarioLimits,
    /// Whether the mutation (self-test) invariant is in the suite —
    /// recorded so repro commands include `--mutate`.
    pub mutate: bool,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            seeds: 100,
            start_seed: 0,
            faults: false,
            shrink: true,
            limits: ScenarioLimits::default(),
            mutate: false,
        }
    }
}

/// The exact CLI invocation that replays one scenario deterministically.
pub fn repro_command(seed: u64, faults: bool, limits: &ScenarioLimits, mutate: bool) -> String {
    let mut cmd = format!(
        "xcbc soak --seed {seed} --sites {} --fault-specs {} --jobs {} --updates {}",
        limits.sites, limits.fault_specs, limits.jobs, limits.updates
    );
    if faults {
        cmd.push_str(" --faults");
    }
    if mutate {
        cmd.push_str(" --mutate");
    }
    match limits.campaign_mutation {
        Some(CampaignMutation::DropJobOnDrain) => cmd.push_str(" --campaign-mutation drop-job"),
        Some(CampaignMutation::SkipSkewSolve) => cmd.push_str(" --campaign-mutation skip-skew"),
        None => {}
    }
    match limits.elastic_mutation {
        Some(ElasticMutation::DropJobOnScaleDown) => cmd.push_str(" --elastic-mutation drop-job"),
        Some(ElasticMutation::SkipScaleUp) => cmd.push_str(" --elastic-mutation skip-scale-up"),
        None => {}
    }
    if let Some(m) = limits.svc_mutation {
        cmd.push_str(" --svc-mutation ");
        cmd.push_str(m.as_str());
    }
    cmd
}

/// Generate and run one seed, returning every violation the given
/// invariant suite found.
pub fn run_seed(
    seed: u64,
    faults: bool,
    limits: &ScenarioLimits,
    invariants: &[Box<dyn Invariant + Send + Sync>],
) -> Vec<Violation> {
    let outcome = Scenario::generate(seed, faults, limits).run();
    check_outcome(&outcome, invariants)
}

/// Run every invariant over an already-collected outcome.
pub fn check_outcome(
    outcome: &SoakOutcome,
    invariants: &[Box<dyn Invariant + Send + Sync>],
) -> Vec<Violation> {
    invariants.iter().flat_map(|i| i.check(outcome)).collect()
}

/// Result of shrinking one failing seed.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// The failing seed (shrinking never changes the seed — only the
    /// scenario limits, which truncate what the seed generates).
    pub seed: u64,
    /// Fault injection setting of the repro.
    pub faults: bool,
    /// Minimal limits that still reproduce the violation.
    pub limits: ScenarioLimits,
    /// Violations observed at the minimal limits.
    pub violations: Vec<Violation>,
    /// How many candidate scenarios the shrinker ran.
    pub steps: usize,
}

/// One failing seed with everything needed to reproduce and debug it.
#[derive(Debug, Clone)]
pub struct SeedFailure {
    /// The seed that violated an invariant.
    pub seed: u64,
    /// Violations at the original (unshrunk) limits.
    pub violations: Vec<Violation>,
    /// The shrunk repro, when shrinking was enabled.
    pub shrink: Option<ShrinkResult>,
}

/// Outcome of a whole [`soak`] run.
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// The configuration the run used.
    pub config: SoakConfig,
    /// Seeds that ran clean before the failure (or all of them).
    pub seeds_passed: u64,
    /// The first failing seed, if any. The run stops at the first
    /// failure: one minimal repro beats a pile of correlated ones.
    pub failure: Option<SeedFailure>,
    /// How many campaign-stage checkpoint resumes happened across the
    /// clean seeds (faulted soaks should see a nonzero count — it is
    /// the evidence that abort/resume paths were actually exercised).
    pub campaign_resumes: u64,
    /// How many elastic-stage checkpoint resumes happened across the
    /// clean seeds.
    pub elastic_resumes: u64,
    /// How many jobs elastic scale-down drains requeued across the
    /// clean seeds (a nonzero count is the evidence that drains caught
    /// running work and moved it losslessly).
    pub elastic_requeues: u64,
}

impl SoakReport {
    /// Did every seed run clean?
    pub fn passed(&self) -> bool {
        self.failure.is_none()
    }

    /// Human-readable report, ending (on failure) with the exact repro
    /// command.
    pub fn render(&self) -> String {
        let mut out = String::new();
        match &self.failure {
            None => {
                out.push_str(&format!(
                    "soak: {} seed(s) passed ({}..{}), faults={}, campaign-resumes={}, \
                     elastic-resumes={}, elastic-requeues={}, all invariants held\n",
                    self.seeds_passed,
                    self.config.start_seed,
                    self.config.start_seed + self.config.seeds,
                    self.config.faults,
                    self.campaign_resumes,
                    self.elastic_resumes,
                    self.elastic_requeues,
                ));
            }
            Some(fail) => {
                out.push_str(&format!(
                    "soak: seed {} violated {} invariant(s) after {} clean seed(s):\n",
                    fail.seed,
                    fail.violations.len(),
                    self.seeds_passed,
                ));
                for v in &fail.violations {
                    out.push_str(&format!("  {v}\n"));
                }
                match &fail.shrink {
                    Some(shrunk) => {
                        out.push_str(&format!(
                            "shrunk to sites={} fault-specs={} jobs={} updates={} in {} step(s); \
                             {} violation(s) remain:\n",
                            shrunk.limits.sites,
                            shrunk.limits.fault_specs,
                            shrunk.limits.jobs,
                            shrunk.limits.updates,
                            shrunk.steps,
                            shrunk.violations.len(),
                        ));
                        for v in &shrunk.violations {
                            out.push_str(&format!("  {v}\n"));
                        }
                        out.push_str(&format!(
                            "repro: {}\n",
                            repro_command(
                                shrunk.seed,
                                shrunk.faults,
                                &shrunk.limits,
                                self.config.mutate
                            )
                        ));
                    }
                    None => {
                        out.push_str(&format!(
                            "repro: {}\n",
                            repro_command(
                                fail.seed,
                                self.config.faults,
                                &self.config.limits,
                                self.config.mutate
                            )
                        ));
                    }
                }
            }
        }
        out
    }
}

/// Does this seed, at these limits, still violate the *same* invariant?
fn reproduces(
    seed: u64,
    faults: bool,
    limits: &ScenarioLimits,
    invariant_name: &str,
    invariants: &[Box<dyn Invariant + Send + Sync>],
    steps: &mut usize,
) -> Option<Vec<Violation>> {
    *steps += 1;
    let violations = run_seed(seed, faults, limits, invariants);
    if violations.iter().any(|v| v.invariant == invariant_name) {
        Some(violations)
    } else {
        None
    }
}

/// Greedily shrink a failing seed: lower one dimension at a time
/// (sites → fault specs → jobs → updates), keeping a smaller value only
/// if the **same invariant** still fires. Limits only truncate what the
/// seed generates, so every accepted candidate is a strict sub-scenario
/// of the original and has itself been re-run and observed to fail.
pub fn shrink(
    seed: u64,
    faults: bool,
    start: &ScenarioLimits,
    invariant_name: &str,
    invariants: &[Box<dyn Invariant + Send + Sync>],
    initial_violations: Vec<Violation>,
) -> ShrinkResult {
    let mut limits = *start;
    let mut violations = initial_violations;
    let mut steps = 0usize;

    // (accessor, floor): a fleet needs at least one site; everything
    // else can shrink to nothing.
    type Dim = fn(&mut ScenarioLimits) -> &mut usize;
    let dims: [(Dim, usize); 4] = [
        (|l| &mut l.sites, 1),
        (|l| &mut l.fault_specs, 0),
        (|l| &mut l.jobs, 0),
        (|l| &mut l.updates, 0),
    ];

    for (dim, floor) in dims {
        let current = *dim(&mut limits);
        if current <= floor {
            continue;
        }
        // Fast path: does the floor alone still reproduce?
        let mut candidate = limits;
        *dim(&mut candidate) = floor;
        if let Some(v) = reproduces(
            seed,
            faults,
            &candidate,
            invariant_name,
            invariants,
            &mut steps,
        ) {
            limits = candidate;
            violations = v;
            continue;
        }
        // Binary descent between (floor, current): find a small value
        // that still reproduces. The failure need not be monotone in
        // the limit, but every accepted value has actually been re-run.
        let mut lo = floor + 1;
        let mut hi = current;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let mut candidate = limits;
            *dim(&mut candidate) = mid;
            match reproduces(
                seed,
                faults,
                &candidate,
                invariant_name,
                invariants,
                &mut steps,
            ) {
                Some(v) => {
                    limits = candidate;
                    violations = v;
                    hi = mid;
                }
                None => lo = mid + 1,
            }
        }
    }

    ShrinkResult {
        seed,
        faults,
        limits,
        violations,
        steps,
    }
}

/// Run `config.seeds` consecutive seeds through the full stack and the
/// given invariant suite, stopping at the first failure (and shrinking
/// it if configured).
pub fn soak(config: &SoakConfig, invariants: &[Box<dyn Invariant + Send + Sync>]) -> SoakReport {
    let mut seeds_passed = 0u64;
    let mut campaign_resumes = 0u64;
    let mut elastic_resumes = 0u64;
    let mut elastic_requeues = 0u64;
    for seed in config.start_seed..config.start_seed.saturating_add(config.seeds) {
        let outcome = Scenario::generate(seed, config.faults, &config.limits).run();
        if let Some(rec) = &outcome.campaign {
            campaign_resumes += rec.resumes as u64;
        }
        if let Some(rec) = &outcome.elastic {
            elastic_resumes += rec.resumes as u64;
            elastic_requeues += rec.report.requeued_jobs as u64;
        }
        let violations = check_outcome(&outcome, invariants);
        if violations.is_empty() {
            seeds_passed += 1;
            continue;
        }
        let shrunk = if config.shrink {
            let name = violations[0].invariant;
            Some(shrink(
                seed,
                config.faults,
                &config.limits,
                name,
                invariants,
                violations.clone(),
            ))
        } else {
            None
        };
        return SoakReport {
            config: *config,
            seeds_passed,
            failure: Some(SeedFailure {
                seed,
                violations,
                shrink: shrunk,
            }),
            campaign_resumes,
            elastic_resumes,
            elastic_requeues,
        };
    }
    SoakReport {
        config: *config,
        seeds_passed,
        failure: None,
        campaign_resumes,
        elastic_resumes,
        elastic_requeues,
    }
}

/// A deliberately broken invariant — "no job ever times out" — used by
/// `xcbc soak --mutate` and the mutation smoke test to prove the
/// harness catches violations and shrinks them. Generated workloads
/// draw runtimes up to 1.2× the requested walltime, so timeouts are a
/// legitimate, reachable outcome that this invariant wrongly forbids.
pub fn mutation_invariant() -> Box<dyn Invariant + Send + Sync> {
    struct NoTimeouts;
    impl Invariant for NoTimeouts {
        fn name(&self) -> &'static str {
            "mutation.no-timeouts"
        }
        fn check(&self, outcome: &SoakOutcome) -> Vec<Violation> {
            outcome
                .sched
                .sim
                .jobs()
                .filter(|j| matches!(j.state, JobState::TimedOut { .. }))
                .map(|j| Violation {
                    invariant: "mutation.no-timeouts",
                    detail: format!(
                        "job {} ({}) timed out at its walltime limit",
                        j.id, j.request.name
                    ),
                })
                .collect()
        }
    }
    Box::new(NoTimeouts)
}
