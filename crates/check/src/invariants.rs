//! The default cross-crate invariant suite.

use std::collections::BTreeMap;

use xcbc_cluster::monitor::MetricKind;
use xcbc_core::elastic::{Autoscaler, ElasticVerdict};
use xcbc_rpm::{rpmvercmp, Evr, RpmDb};
use xcbc_sched::JobState;
use xcbc_sim::{TraceEvent, TraceKind};
use xcbc_svc::{AdmissionController, Disposition, Journal};
use xcbc_yum::{Solution, SolveCache, Solver};

use crate::invariant::{Invariant, Violation};
use crate::outcome::SoakOutcome;

fn violation(invariant: &'static str, detail: String) -> Violation {
    Violation { invariant, detail }
}

/// Multiset of installed NEVRA strings in a database.
fn nevra_multiset(db: &RpmDb) -> BTreeMap<String, usize> {
    let mut out: BTreeMap<String, usize> = BTreeMap::new();
    for name in db.names() {
        for ip in db.get(name) {
            *out.entry(ip.package.nevra.to_string()).or_default() += 1;
        }
    }
    out
}

/// `a − b` as a multiset difference.
fn multiset_sub(
    a: &BTreeMap<String, usize>,
    b: &BTreeMap<String, usize>,
) -> BTreeMap<String, usize> {
    let mut out = BTreeMap::new();
    for (k, &n) in a {
        let m = b.get(k).copied().unwrap_or(0);
        if n > m {
            out.insert(k.clone(), n - m);
        }
    }
    out
}

/// RPM transaction conservation: what a transaction *reports* doing
/// must equal what actually happened to the database — every reported
/// install/upgrade appears, nothing unreported appears, every reported
/// erase disappears, and the byte delta matches exactly.
pub struct RpmTxConservation;

impl Invariant for RpmTxConservation {
    fn name(&self) -> &'static str {
        "rpm.tx-conservation"
    }

    fn check(&self, outcome: &SoakOutcome) -> Vec<Violation> {
        let mut v = Vec::new();
        for rec in &outcome.transactions {
            let before = nevra_multiset(&rec.before);
            let after = nevra_multiset(&rec.after);
            let added = multiset_sub(&after, &before);
            let removed = multiset_sub(&before, &after);

            let mut expected_added: BTreeMap<String, usize> = BTreeMap::new();
            for n in rec.report.installed.iter().chain(&rec.report.upgraded) {
                *expected_added.entry(n.clone()).or_default() += 1;
            }
            if added != expected_added {
                v.push(violation(
                    self.name(),
                    format!(
                        "{}: db additions {:?} != reported installs+upgrades {:?}",
                        rec.label, added, expected_added
                    ),
                ));
            }
            for erased in &rec.report.erased {
                if !removed.contains_key(erased) {
                    v.push(violation(
                        self.name(),
                        format!(
                            "{}: reported erase of {erased} but it is still installed",
                            rec.label
                        ),
                    ));
                }
            }

            let actual_delta =
                rec.after.installed_size_bytes() as i64 - rec.before.installed_size_bytes() as i64;
            if actual_delta != rec.report.size_delta_bytes {
                v.push(violation(
                    self.name(),
                    format!(
                        "{}: db grew by {actual_delta} bytes but transaction reported {}",
                        rec.label, rec.report.size_delta_bytes
                    ),
                ));
            }

            let broken = rec.after.verify();
            if !broken.is_empty() {
                v.push(violation(
                    self.name(),
                    format!(
                        "{}: post-transaction db fails verify: {broken:?}",
                        rec.label
                    ),
                ));
            }
        }
        v
    }
}

/// EVR comparison is a total order: reflexive, antisymmetric,
/// transitive over the harvested sample set, and `Evr`'s `Eq`/`Hash`
/// agree with `Ord`.
pub struct EvrTotalOrder;

impl Invariant for EvrTotalOrder {
    fn name(&self) -> &'static str {
        "rpm.evr-total-order"
    }

    fn check(&self, outcome: &SoakOutcome) -> Vec<Violation> {
        use std::cmp::Ordering;
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};

        let mut v = Vec::new();
        let samples: Vec<&str> = outcome
            .evr_samples
            .iter()
            .map(String::as_str)
            .take(20)
            .collect();

        for &a in &samples {
            if rpmvercmp(a, a) != Ordering::Equal {
                v.push(violation(
                    self.name(),
                    format!("rpmvercmp({a:?}, {a:?}) != Equal"),
                ));
            }
            for &b in &samples {
                let ab = rpmvercmp(a, b);
                let ba = rpmvercmp(b, a);
                if ab != ba.reverse() {
                    v.push(violation(
                        self.name(),
                        format!(
                            "antisymmetry: cmp({a:?},{b:?})={ab:?} but cmp({b:?},{a:?})={ba:?}"
                        ),
                    ));
                }
                let (ea, eb) = (Evr::new(0, a, "1"), Evr::new(0, b, "1"));
                let eq_by_cmp = ea.cmp(&eb) == Ordering::Equal;
                if (ea == eb) != eq_by_cmp {
                    v.push(violation(
                        self.name(),
                        format!("Eq disagrees with Ord for {a:?} vs {b:?}"),
                    ));
                }
                if eq_by_cmp {
                    let mut ha = DefaultHasher::new();
                    let mut hb = DefaultHasher::new();
                    ea.hash(&mut ha);
                    eb.hash(&mut hb);
                    if ha.finish() != hb.finish() {
                        v.push(violation(
                            self.name(),
                            format!("equal Evrs {a:?} and {b:?} hash differently"),
                        ));
                    }
                }
            }
        }

        let t: Vec<&str> = samples.iter().copied().take(14).collect();
        for &a in &t {
            for &b in &t {
                for &c in &t {
                    let (ab, bc, ac) = (rpmvercmp(a, b), rpmvercmp(b, c), rpmvercmp(a, c));
                    if ab != Ordering::Greater && bc != Ordering::Greater && ac == Ordering::Greater
                    {
                        v.push(violation(
                            self.name(),
                            format!("transitivity: {a:?} <= {b:?} <= {c:?} but {a:?} > {c:?}"),
                        ));
                    }
                }
            }
        }
        v
    }
}

/// A `(label, start_ns, end_ns)` span within one node's stream.
type NodeSpan = (String, u64, u64);

/// Span events grouped by `(source, node)` as `(label, start, end)`.
fn node_spans(trace: &[TraceEvent]) -> BTreeMap<(String, String), Vec<NodeSpan>> {
    let mut out: BTreeMap<(String, String), Vec<NodeSpan>> = BTreeMap::new();
    for e in trace {
        if let TraceKind::Span { .. } = e.kind {
            let node = e.fields.iter().find_map(|(k, val)| {
                if k == "node" {
                    if let xcbc_sim::FieldValue::Str(s) = val {
                        return Some(s.clone());
                    }
                }
                None
            });
            if let Some(node) = node {
                out.entry((e.source.clone(), node)).or_default().push((
                    e.label.clone(),
                    e.t.as_nanos(),
                    e.end().as_nanos(),
                ));
            }
        }
    }
    out
}

/// Per-node timeline sanity: within one `(source, node)` stream, spans
/// are emitted with monotone non-decreasing starts and never overlap —
/// a node cannot be running two install phases at once.
pub struct TimelineMonotone;

impl TimelineMonotone {
    fn check_trace(&self, what: &str, trace: &[TraceEvent], v: &mut Vec<Violation>) {
        for ((source, node), spans) in node_spans(trace) {
            for w in spans.windows(2) {
                let (ref l0, s0, e0) = w[0];
                let (ref l1, s1, _) = w[1];
                if s1 < s0 {
                    v.push(violation(
                        self.name(),
                        format!(
                            "{what}: {source}/{node}: span {l1:?} starts at {s1}ns before predecessor {l0:?} ({s0}ns)"
                        ),
                    ));
                } else if s1 < e0 {
                    v.push(violation(
                        self.name(),
                        format!(
                            "{what}: {source}/{node}: span {l1:?} (start {s1}ns) overlaps {l0:?} (ends {e0}ns)"
                        ),
                    ));
                }
            }
        }
    }
}

impl Invariant for TimelineMonotone {
    fn name(&self) -> &'static str {
        "trace.timeline-monotone"
    }

    fn check(&self, outcome: &SoakOutcome) -> Vec<Violation> {
        let mut v = Vec::new();
        for site in &outcome.fleet.sites {
            if let Ok(dep) = &site.result {
                self.check_trace(&format!("site {}", site.name), &dep.trace, &mut v);
            }
        }
        if let Some(resume) = &outcome.resume {
            self.check_trace("resume:uninterrupted", &resume.uninterrupted_trace, &mut v);
            self.check_trace("resume:resumed", &resume.resumed_trace, &mut v);
        }
        v
    }
}

/// Scheduler job conservation: every submitted job is accounted for,
/// nothing is left running after drain, core-second accounting matches
/// the per-job state, and the trace carries one mark per submit and
/// one span per finished job.
pub struct SchedConservation;

impl Invariant for SchedConservation {
    fn name(&self) -> &'static str {
        "sched.job-conservation"
    }

    fn check(&self, outcome: &SoakOutcome) -> Vec<Violation> {
        let mut v = Vec::new();
        let sched = &outcome.sched;
        let total = sched.sim.jobs().count();
        if total != sched.submitted {
            v.push(violation(
                self.name(),
                format!(
                    "submitted {} jobs but simulator holds {total}",
                    sched.submitted
                ),
            ));
        }

        let mut finished = 0usize;
        let mut core_seconds = 0.0f64;
        for job in sched.sim.jobs() {
            match job.state {
                JobState::Running { .. } => v.push(violation(
                    self.name(),
                    format!(
                        "job {} ({}) still Running after drain",
                        job.id, job.request.name
                    ),
                )),
                JobState::Completed { start_s, end_s } | JobState::TimedOut { start_s, end_s } => {
                    finished += 1;
                    core_seconds += job.request.cores() as f64 * (end_s - start_s);
                    if end_s < start_s {
                        v.push(violation(
                            self.name(),
                            format!(
                                "job {} ends at {end_s} before it starts at {start_s}",
                                job.id
                            ),
                        ));
                    }
                }
                JobState::Queued | JobState::Cancelled => {}
            }
        }

        let reported = sched.sim.used_core_seconds();
        let tol = 1e-6 * core_seconds.abs().max(1.0);
        if (reported - core_seconds).abs() > tol {
            v.push(violation(
                self.name(),
                format!("used_core_seconds {reported} != per-job accounting {core_seconds}"),
            ));
        }

        let spans = sched
            .trace
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::Span { .. }))
            .count();
        let marks = sched
            .trace
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::Mark) && e.label.starts_with("submit "))
            .count();
        if spans != finished {
            v.push(violation(
                self.name(),
                format!("{finished} jobs finished but trace holds {spans} job spans"),
            ));
        }
        if marks != sched.submitted {
            v.push(violation(
                self.name(),
                format!(
                    "{} jobs submitted but trace holds {marks} submit marks",
                    sched.submitted
                ),
            ));
        }
        v
    }
}

/// No starvation: the generator only emits satisfiable jobs (nodes and
/// ppn within the cluster shape), so after the event queue drains every
/// job must have reached a terminal state.
pub struct SchedNoStarvation;

impl Invariant for SchedNoStarvation {
    fn name(&self) -> &'static str {
        "sched.no-starvation"
    }

    fn check(&self, outcome: &SoakOutcome) -> Vec<Violation> {
        let mut v = Vec::new();
        for job in outcome.sched.sim.jobs() {
            if matches!(job.state, JobState::Queued) {
                v.push(violation(
                    self.name(),
                    format!(
                        "job {} ({}, {}x{} cores) starved: still queued after drain",
                        job.id, job.request.name, job.request.nodes, job.request.ppn
                    ),
                ));
            }
        }
        v
    }
}

/// Generated-workload conservation: the open-loop stream's books must
/// balance. Every generated job reaches a terminal state, the job count
/// is conserved end-to-end, and the core-seconds the simulator accounts
/// for equal the generator's own ledger (Σ cores × capped runtime) —
/// i.e. the workload engine neither invents nor loses work.
pub struct WorkloadConservation;

impl Invariant for WorkloadConservation {
    fn name(&self) -> &'static str {
        "workload.conserves-core-seconds"
    }

    fn check(&self, outcome: &SoakOutcome) -> Vec<Violation> {
        let mut v = Vec::new();
        let Some(wl) = &outcome.workload else {
            return v;
        };
        if wl.job_states.len() != wl.generated.len() {
            v.push(violation(
                self.name(),
                format!(
                    "generated {} jobs but the frontend holds {}",
                    wl.generated.len(),
                    wl.job_states.len()
                ),
            ));
        }
        let mut expected = 0.0f64;
        for (_, cores, busy_s) in &wl.generated {
            expected += *cores as f64 * busy_s;
        }
        for (name, state) in &wl.job_states {
            match state {
                JobState::Completed { start_s, end_s } | JobState::TimedOut { start_s, end_s } => {
                    if end_s < start_s {
                        v.push(violation(
                            self.name(),
                            format!("job {name} ends at {end_s} before it starts at {start_s}"),
                        ));
                    }
                }
                other => v.push(violation(
                    self.name(),
                    format!("job {name} not terminal after drain: {other:?}"),
                )),
            }
        }
        let tol = 1e-6 * expected.abs().max(1.0);
        if (wl.used_core_seconds - expected).abs() > tol {
            v.push(violation(
                self.name(),
                format!(
                    "simulator accounted {} core-seconds but the generator's ledger says {expected}",
                    wl.used_core_seconds
                ),
            ));
        }
        // jobs_finished already counts TimedOut terminals
        if wl.metrics.jobs_finished != wl.generated.len() {
            v.push(violation(
                self.name(),
                format!(
                    "metrics count {} terminal jobs but {} were generated",
                    wl.metrics.jobs_finished,
                    wl.generated.len()
                ),
            ));
        }
        v
    }
}

/// Canonical rendering of a solution for byte-comparison.
fn canonical_solution(sol: &Solution) -> String {
    let mut out = String::new();
    for p in &sol.installs {
        out.push_str("i ");
        out.push_str(&p.nevra.to_string());
        out.push('\n');
    }
    for p in &sol.upgrades {
        out.push_str("u ");
        out.push_str(&p.nevra.to_string());
        out.push('\n');
    }
    out
}

/// Solve-cache coherence: for every depsolve the scenario routed
/// through the shared cache, a fresh solve over the recorded inputs
/// must byte-equal what the cache holds for that key.
pub struct SolveCacheCoherence;

impl Invariant for SolveCacheCoherence {
    fn name(&self) -> &'static str {
        "yum.solvecache-coherence"
    }

    fn check(&self, outcome: &SoakOutcome) -> Vec<Violation> {
        let mut v = Vec::new();
        for (i, probe) in outcome.solve_probes.iter().enumerate() {
            let key = SolveCache::key(&probe.repos, &probe.config, &probe.db, &probe.request);
            let Some(cached) = outcome.cache.peek(key) else {
                continue; // solve failed and was (correctly) not cached
            };
            match Solver::new(&probe.repos, &probe.config).resolve(&probe.db, &probe.request) {
                Ok(fresh) => {
                    let (c, f) = (canonical_solution(&cached), canonical_solution(&fresh));
                    if c != f {
                        v.push(violation(
                            self.name(),
                            format!(
                                "probe {i} ({:?}): cached solution differs from fresh solve:\ncached:\n{c}fresh:\n{f}",
                                probe.request
                            ),
                        ));
                    }
                }
                Err(e) => v.push(violation(
                    self.name(),
                    format!(
                        "probe {i} ({:?}): cache holds a solution but a fresh solve fails: {e}",
                        probe.request
                    ),
                )),
            }
        }
        v
    }
}

/// `(label, duration)` pairs of every span in emission order.
fn span_seq(trace: &[TraceEvent]) -> Vec<(String, u64)> {
    trace
        .iter()
        .filter_map(|e| match e.kind {
            TraceKind::Span { dur } => Some((e.label.clone(), dur.as_nanos())),
            _ => None,
        })
        .collect()
}

/// Checkpoint/resume equivalence: resuming an aborted install must
/// converge to the same final per-node databases, and every span the
/// resumed run emits must appear, in order and with the same duration,
/// in the uninterrupted run (the resumed trace is the uninterrupted
/// trace minus the work the checkpoint already committed).
pub struct CheckpointResumeEquivalence;

impl Invariant for CheckpointResumeEquivalence {
    fn name(&self) -> &'static str {
        "rocks.checkpoint-resume"
    }

    fn check(&self, outcome: &SoakOutcome) -> Vec<Violation> {
        let mut v = Vec::new();
        let Some(resume) = &outcome.resume else {
            return v;
        };
        if resume.aborts != 1 {
            v.push(violation(
                self.name(),
                format!(
                    "scheduled exactly one power loss but observed {} aborts",
                    resume.aborts
                ),
            ));
        }
        if resume.resumed_dbs != resume.uninterrupted_dbs {
            let missing: Vec<&String> = resume
                .uninterrupted_dbs
                .keys()
                .filter(|k| !resume.resumed_dbs.contains_key(*k))
                .collect();
            v.push(violation(
                self.name(),
                format!(
                    "resumed install's final node DBs differ from the uninterrupted run \
                     (nodes missing after resume: {missing:?})"
                ),
            ));
        }

        let full = span_seq(&resume.uninterrupted_trace);
        let part = span_seq(&resume.resumed_trace);
        let mut cursor = 0usize;
        for span in &part {
            match full[cursor..].iter().position(|s| s == span) {
                Some(at) => cursor += at + 1,
                None => {
                    v.push(violation(
                        self.name(),
                        format!(
                            "resumed run span {:?} ({}ns) is not an in-order subsequence match \
                             of the uninterrupted trace",
                            span.0, span.1
                        ),
                    ));
                    return v;
                }
            }
        }
        if let (Some(a), Some(b)) = (full.last(), part.last()) {
            if a != b {
                v.push(violation(
                    self.name(),
                    format!(
                        "final spans differ: uninterrupted ends with {:?}, resumed with {:?}",
                        a.0, b.0
                    ),
                ));
            }
        }
        v
    }
}

/// gmetad rollup consistency: the fleet meta-gmetad must hold exactly
/// the per-site hosts (namespaced `site/host`), and for every host and
/// metric kind the meta sample must bit-equal the site gmond's latest.
pub struct GmetadRollup;

impl Invariant for GmetadRollup {
    fn name(&self) -> &'static str {
        "mon.gmetad-rollup"
    }

    fn check(&self, outcome: &SoakOutcome) -> Vec<Violation> {
        let mut v = Vec::new();
        let telemetry = &outcome.telemetry;
        let mut expected_hosts = 0usize;
        for (site, mon) in &telemetry.sites {
            for host in mon.hosts() {
                expected_hosts += 1;
                let meta_name = format!("{site}/{host}");
                for kind in MetricKind::ALL {
                    let local = mon.with_node(&host, |n| n.ring(kind).latest()).flatten();
                    let rolled = telemetry
                        .meta
                        .with_node(&meta_name, |n| n.ring(kind).latest())
                        .flatten();
                    match (local, rolled) {
                        (Some(a), Some(b)) => {
                            if a.time != b.time || a.value.to_bits() != b.value.to_bits() {
                                v.push(violation(
                                    self.name(),
                                    format!(
                                        "{meta_name} {kind:?}: meta-gmetad ({:?} @ {:?}) != site gmond ({:?} @ {:?})",
                                        b.value, b.time, a.value, a.time
                                    ),
                                ));
                            }
                        }
                        (Some(_), None) => v.push(violation(
                            self.name(),
                            format!("{meta_name} {kind:?}: site has a sample the meta-gmetad lost"),
                        )),
                        (None, Some(_)) => v.push(violation(
                            self.name(),
                            format!("{meta_name} {kind:?}: meta-gmetad invented a sample"),
                        )),
                        (None, None) => {}
                    }
                }
            }
        }
        let meta_hosts = telemetry.meta.hosts().len();
        if meta_hosts != expected_hosts {
            v.push(violation(
                self.name(),
                format!(
                    "meta-gmetad tracks {meta_hosts} hosts but the sites have {expected_hosts}"
                ),
            ));
        }
        v
    }
}

/// No job is lost or double-run across a campaign drain: every job
/// submitted before the rolling update finishes exactly once — never
/// cancelled (the scenario cancels nothing, so a cancel means a drain
/// dropped it), never left queued or running after the post-campaign
/// drain, with exactly one `job <name>` completion span in the
/// scheduler trace, and the accounted core-seconds equal the sum over
/// those spans of `cores x duration`.
pub struct CampaignNoJobLost;

impl Invariant for CampaignNoJobLost {
    fn name(&self) -> &'static str {
        "campaign.no-job-lost"
    }

    fn check(&self, outcome: &SoakOutcome) -> Vec<Violation> {
        let mut v = Vec::new();
        let Some(rec) = &outcome.campaign else {
            return v;
        };

        for (name, state) in &rec.job_states {
            match state {
                JobState::Cancelled => v.push(violation(
                    self.name(),
                    format!("job {name} was cancelled: a drain dropped it instead of requeueing"),
                )),
                JobState::Queued | JobState::Running { .. } => v.push(violation(
                    self.name(),
                    format!("job {name} still {state:?} after the post-campaign drain"),
                )),
                _ => {}
            }
        }

        // Exactly one completion span per submitted job: zero means the
        // job vanished, two means a requeue re-ran work it already
        // finished (stale incarnation not fenced off).
        let mut spans: BTreeMap<&str, usize> = BTreeMap::new();
        let mut span_core_seconds = 0.0f64;
        for ev in &rec.trace {
            if let TraceKind::Span { dur } = &ev.kind {
                if let Some(name) = ev.label.strip_prefix("job ") {
                    *spans.entry(name).or_default() += 1;
                    let cores = ev
                        .fields
                        .iter()
                        .find(|(k, _)| k == "cores")
                        .and_then(|(_, f)| match f {
                            xcbc_sim::FieldValue::U64(n) => Some(*n as f64),
                            _ => None,
                        })
                        .unwrap_or(0.0);
                    span_core_seconds += cores * dur.as_secs_f64();
                }
            }
        }
        for name in &rec.submitted {
            match spans.get(name.as_str()).copied().unwrap_or(0) {
                1 => {}
                0 => v.push(violation(
                    self.name(),
                    format!("job {name} has no completion span: it was lost across a drain"),
                )),
                n => v.push(violation(
                    self.name(),
                    format!("job {name} has {n} completion spans: it ran more than once"),
                )),
            }
        }

        let accounted = rec.used_core_seconds;
        if (span_core_seconds - accounted).abs() > 1e-6 * accounted.max(1.0) {
            v.push(violation(
                self.name(),
                format!(
                    "span core-seconds ({span_core_seconds}) != accounted core-seconds \
                     ({accounted}): work was dropped or double-charged across a drain"
                ),
            ));
        }
        v
    }
}

/// No job is lost across an elastic scale-down: every job submitted to
/// the self-scaling fleet is served to completion. A cancelled job
/// means a drain dropped it instead of requeueing it, and is always a
/// violation; a job still queued or running is a violation whenever the
/// run's verdict claims demand was satisfied. Terminal states are
/// counted directly (the simulator's `jobs_finished` counts
/// cancellations as finished, which would mask exactly this bug).
pub struct ElasticNoJobLost;

impl Invariant for ElasticNoJobLost {
    fn name(&self) -> &'static str {
        "elastic.no-job-lost"
    }

    fn check(&self, outcome: &SoakOutcome) -> Vec<Violation> {
        let mut v = Vec::new();
        let Some(rec) = &outcome.elastic else {
            return v;
        };
        let satisfied = matches!(rec.report.verdict, ElasticVerdict::Satisfied);
        let mut served = 0usize;
        for (name, state) in &rec.job_states {
            match state {
                JobState::Cancelled => v.push(violation(
                    self.name(),
                    format!(
                        "job {name} was cancelled: a scale-down drain dropped it \
                         instead of requeueing"
                    ),
                )),
                JobState::Completed { .. } | JobState::TimedOut { .. } => served += 1,
                JobState::Queued | JobState::Running { .. } => {
                    if satisfied {
                        v.push(violation(
                            self.name(),
                            format!(
                                "job {name} still {state:?} although the verdict claims \
                                 demand was satisfied"
                            ),
                        ));
                    }
                }
            }
        }
        if satisfied && served != rec.submitted.len() {
            v.push(violation(
                self.name(),
                format!(
                    "submitted {} jobs but only {served} reached a served terminal state",
                    rec.submitted.len()
                ),
            ));
        }
        v
    }
}

/// The autoscaler does exactly what its policy dictates and the run
/// ends in a consistent verdict: replaying the recorded metric samples
/// through a fresh autoscaler must reproduce every recorded decision
/// (across abort/resume segments), the provisioned fleet stays within
/// the `[floor, ceiling]` policy bounds at every tick, and the final
/// tick's sample agrees with the verdict — demand satisfied means an
/// empty queue and an idle fleet, at-max-size means the reported
/// backlog is what the last sample actually saw.
pub struct ElasticConverges;

impl Invariant for ElasticConverges {
    fn name(&self) -> &'static str {
        "elastic.converges"
    }

    fn check(&self, outcome: &SoakOutcome) -> Vec<Violation> {
        let mut v = Vec::new();
        let Some(rec) = &outcome.elastic else {
            return v;
        };
        let policy = rec.report.policy;

        let replayed = Autoscaler::replay(policy, rec.ticks.iter().map(|t| t.sample));
        for (t, want) in rec.ticks.iter().zip(&replayed) {
            if t.decision != *want {
                v.push(violation(
                    self.name(),
                    format!(
                        "tick {}: recorded decision `{}` but the policy dictates `{}` \
                         for sample {:?}",
                        t.tick,
                        t.decision.render(),
                        want.render(),
                        t.sample
                    ),
                ));
            }
        }

        for t in &rec.ticks {
            let provisioned = t.sample.capacity + t.sample.booting;
            if provisioned < policy.min_nodes || provisioned > policy.max_nodes {
                v.push(violation(
                    self.name(),
                    format!(
                        "tick {}: {provisioned} node(s) provisioned, outside the \
                         [{}, {}] policy bounds",
                        t.tick, policy.min_nodes, policy.max_nodes
                    ),
                ));
            }
        }

        if let Some(last) = rec.ticks.last() {
            match rec.report.verdict {
                ElasticVerdict::Satisfied => {
                    if last.sample.queue_depth != 0 || last.sample.busy_nodes != 0 {
                        v.push(violation(
                            self.name(),
                            format!(
                                "verdict says demand was satisfied but the last tick \
                                 sampled queue={} busy={}",
                                last.sample.queue_depth, last.sample.busy_nodes
                            ),
                        ));
                    }
                }
                ElasticVerdict::AtMaxSize { queued } => {
                    if queued != last.sample.queue_depth {
                        v.push(violation(
                            self.name(),
                            format!(
                                "verdict reports {queued} jobs queued at max size but \
                                 the last tick sampled queue={}",
                                last.sample.queue_depth
                            ),
                        ));
                    }
                }
            }
        }
        v
    }
}

/// The fleet converges to the campaign's target package set — or the
/// campaign reports exactly which nodes did not and why. Every executed
/// wave must carry a skew-probe summary, every node whose final
/// database still needs the target must be accounted for (listed as
/// failed, or the campaign halted/rolled back before reaching it), and
/// no node reported as failed may actually be converged.
pub struct CampaignConverges;

impl Invariant for CampaignConverges {
    fn name(&self) -> &'static str {
        "campaign.converges"
    }

    fn check(&self, outcome: &SoakOutcome) -> Vec<Violation> {
        let mut v = Vec::new();
        let Some(rec) = &outcome.campaign else {
            return v;
        };
        let report = &rec.report;

        for wave in &report.waves {
            if wave.skew.is_none() {
                v.push(violation(
                    self.name(),
                    format!("wave {} committed without a version-skew probe", wave.index),
                ));
            }
        }

        let failed: BTreeMap<&str, &str> = report.checkpoint.failed().collect();
        let completed = matches!(
            report.outcome,
            xcbc_core::campaign::CampaignOutcome::Completed
        );
        let solver = Solver::new(&rec.target.repos, &rec.target.config);
        for (node, db) in &rec.final_dbs {
            let converged = match solver.resolve(db, &rec.target.request) {
                Ok(solution) => solution.is_empty(),
                Err(_) => false,
            };
            if converged {
                if let Some(reason) = failed.get(node.as_str()) {
                    v.push(violation(
                        self.name(),
                        format!("node {node} is converged but reported as failed ({reason})"),
                    ));
                }
            } else if completed && !failed.contains_key(node.as_str()) {
                v.push(violation(
                    self.name(),
                    format!(
                        "node {node} did not reach the target package set and the \
                         completed campaign does not report why"
                    ),
                ));
            }
        }
        v
    }
}

/// Causal-analysis coherence: re-running the trace analyser over any
/// recorded trace is byte-stable (same render, flame, and folded
/// stacks), and the critical path telescopes exactly — every segment's
/// blocked gap plus busy time sums to the trace's span makespan.
pub struct AnalysisCriticalPath;

impl Invariant for AnalysisCriticalPath {
    fn name(&self) -> &'static str {
        "analyze.critical-path"
    }

    fn check(&self, outcome: &SoakOutcome) -> Vec<Violation> {
        let mut v = Vec::new();
        let mut traces: Vec<(String, &[TraceEvent])> = Vec::new();
        for site in &outcome.fleet.sites {
            if let Ok(report) = &site.result {
                traces.push((format!("fleet/{}", site.name), &report.trace));
            }
        }
        traces.push(("sched".to_string(), &outcome.sched.trace));
        if let Some(campaign) = &outcome.campaign {
            traces.push(("campaign".to_string(), &campaign.trace));
        }
        if let Some(resume) = &outcome.resume {
            traces.push((
                "resume/uninterrupted".to_string(),
                &resume.uninterrupted_trace,
            ));
            traces.push(("resume/resumed".to_string(), &resume.resumed_trace));
        }
        for (label, trace) in traces {
            let a = xcbc_sim::analyze(trace);
            let b = xcbc_sim::analyze(trace);
            if a.render() != b.render() || a.flame() != b.flame() || a.folded() != b.folded() {
                v.push(violation(
                    self.name(),
                    format!("{label}: analysis output not replay-stable"),
                ));
                continue;
            }
            if a.path.total() != a.makespan {
                v.push(violation(
                    self.name(),
                    format!(
                        "{label}: critical path total {} != span makespan {} \
                         ({} segment(s), busy {}, blocked {})",
                        xcbc_sim::analyze::fmt_secs(a.path.total()),
                        xcbc_sim::analyze::fmt_secs(a.makespan),
                        a.path.segments.len(),
                        xcbc_sim::analyze::fmt_secs(a.path.busy()),
                        xcbc_sim::analyze::fmt_secs(a.path.blocked()),
                    ),
                ));
            }
            if a.spans > 0 && a.path.segments.is_empty() {
                v.push(violation(
                    self.name(),
                    format!("{label}: {} span(s) but an empty critical path", a.spans),
                ));
            }
        }
        v
    }
}

/// Service admission soundness: the accept/reject stream `xcbcd`
/// produced must be exactly what a clean admission controller derives
/// from the recorded request stream and quota table — dispositions
/// conserve (accepted + rejected == submitted, per tenant and in
/// total), no tenant is ever admitted past its bucket (a leaked quota
/// token shows up as a decision mismatch), and the journal carries no
/// residue of rejected requests (every entry matches the recomputed
/// accepted stream at its sequence number).
pub struct SvcAdmission;

impl Invariant for SvcAdmission {
    fn name(&self) -> &'static str {
        "svc.admission"
    }

    fn check(&self, outcome: &SoakOutcome) -> Vec<Violation> {
        let mut v = Vec::new();
        let Some(svc) = &outcome.svc else {
            return v;
        };
        let report = &svc.report;

        // disposition conservation, in total and per tenant
        if report.accepted + report.rejected_quota + report.rejected_backpressure
            != svc.requests.len()
        {
            v.push(violation(
                self.name(),
                format!(
                    "dispositions do not conserve: accepted={} + quota={} + backpressure={} != submitted={}",
                    report.accepted,
                    report.rejected_quota,
                    report.rejected_backpressure,
                    svc.requests.len()
                ),
            ));
        }
        for (tenant, (acc, quota, bp)) in &report.tenant_dispositions {
            let presented = svc.requests.iter().filter(|r| &r.tenant == tenant).count() as u64;
            if acc + quota + bp != presented {
                v.push(violation(
                    self.name(),
                    format!(
                        "tenant {tenant}: dispositions {acc}+{quota}+{bp} != {presented} presented"
                    ),
                ));
            }
        }

        // re-derive every decision with a clean controller (no mutation)
        let mut clean = AdmissionController::new(svc.config.quotas.clone(), svc.config.queue_limit);
        let mut expected_accepted: Vec<&xcbc_svc::SvcRequest> = Vec::new();
        for (i, (req, resp)) in svc.requests.iter().zip(&report.responses).enumerate() {
            let expected = clean.admit(&req.tenant, req.tick);
            match (expected, resp.disposition) {
                (Ok(()), Disposition::Accepted { seq }) => {
                    if seq != expected_accepted.len() as u64 {
                        v.push(violation(
                            self.name(),
                            format!(
                                "request {i} ({}): accepted under seq {seq}, expected {}",
                                req.tenant,
                                expected_accepted.len()
                            ),
                        ));
                    }
                    expected_accepted.push(req);
                }
                (Err(want), Disposition::Rejected(got)) => {
                    if want != got {
                        v.push(violation(
                            self.name(),
                            format!(
                                "request {i} ({}): rejected {} but a clean controller says {}",
                                req.tenant,
                                got.as_str(),
                                want.as_str()
                            ),
                        ));
                    }
                }
                (Ok(()), Disposition::Rejected(got)) => {
                    v.push(violation(
                        self.name(),
                        format!(
                            "request {i} ({}): rejected {} but a clean controller admits it",
                            req.tenant,
                            got.as_str()
                        ),
                    ));
                    // keep bucket accounting aligned with the clean model
                    expected_accepted.push(req);
                }
                (Err(want), Disposition::Accepted { .. }) => {
                    v.push(violation(
                        self.name(),
                        format!(
                            "request {i} ({}): admitted past its quota (a clean controller rejects it {})",
                            req.tenant,
                            want.as_str()
                        ),
                    ));
                }
            }
            if v.len() >= 8 {
                return v; // one mutation floods; the first few decisions tell the story
            }
        }

        // rejected requests leave no journal residue: every journaled
        // entry must match the recomputed accepted stream at its seq
        match Journal::parse(&report.journal_text) {
            Err(e) => v.push(violation(
                self.name(),
                format!("journal does not parse: {e}"),
            )),
            Ok(journal) => {
                for entry in &journal.entries {
                    match expected_accepted.get(entry.seq as usize) {
                        None => v.push(violation(
                            self.name(),
                            format!(
                                "journal entry seq {} is beyond the {} accepted request(s): rejected residue",
                                entry.seq,
                                expected_accepted.len()
                            ),
                        )),
                        Some(req) => {
                            if entry.tenant != req.tenant || entry.digest != req.op.digest() {
                                v.push(violation(
                                    self.name(),
                                    format!(
                                        "journal entry seq {}: ({}, digest {}) does not match the accepted request ({}, digest {})",
                                        entry.seq,
                                        entry.tenant,
                                        entry.digest,
                                        req.tenant,
                                        req.op.digest()
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
        }
        v
    }
}

/// Service replay fidelity: re-executing the journal single-threaded
/// must reproduce every recorded response-body digest and the exact
/// cache-counter totals, whatever worker count originally served the
/// stream — and the journal itself must account for every accepted
/// request (a dropped entry is unaccounted work).
pub struct SvcReplay;

impl Invariant for SvcReplay {
    fn name(&self) -> &'static str {
        "svc.replay"
    }

    fn check(&self, outcome: &SoakOutcome) -> Vec<Violation> {
        let mut v = Vec::new();
        let Some(svc) = &outcome.svc else {
            return v;
        };
        match xcbc_svc::replay(&svc.report.journal_text) {
            Err(e) => v.push(violation(
                self.name(),
                format!("journal does not parse: {e}"),
            )),
            Ok(replayed) => {
                for m in replayed.mismatches.iter().take(8) {
                    v.push(violation(self.name(), m.clone()));
                }
                // every replayed body must also byte-match the response
                // the live run handed back (digest equality is already
                // checked; this pins the journal to the actual bodies)
                let bodies = svc.report.accepted_bodies();
                for (seq, _tenant, body) in &replayed.responses {
                    match bodies.get(seq) {
                        None => v.push(violation(
                            self.name(),
                            format!("replayed seq {seq} has no live response"),
                        )),
                        Some(live) => {
                            if &live.body != body {
                                v.push(violation(
                                    self.name(),
                                    format!(
                                        "seq {seq}: replayed body {:?} != live body {:?}",
                                        body, live.body
                                    ),
                                ));
                            }
                        }
                    }
                    if v.len() >= 8 {
                        break;
                    }
                }
            }
        }
        v
    }
}
