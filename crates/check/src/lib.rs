//! `xcbc-check` — the deterministic chaos-soak harness.
//!
//! The paper's core claim is operational: an XCBC/XNIT cluster stays
//! correct across bare-metal installs, piecemeal XNIT updates, node
//! failures, and day-to-day scheduling. The sibling crates supply the
//! machinery (seeded fault plans, a shared clock/trace bus, a parallel
//! fleet engine); this crate exercises it all *together*,
//! FoundationDB-style:
//!
//! * [`Scenario`] — a seeded generator that
//!   randomizes fleet size, Table 4 hardware mixes, fault plans, XNIT
//!   update sequences, and scheduler workloads, then runs the whole
//!   stack and collects a [`SoakOutcome`].
//! * [`Invariant`] — cross-crate checkers over
//!   those outcomes: RPM transaction conservation, EVR total-order,
//!   per-node timeline monotonicity, scheduler job conservation and
//!   no-starvation, solve-cache coherence, checkpoint/resume
//!   equivalence, gmetad rollup consistency, campaign job-safety and
//!   convergence, and elastic-fleet job-safety and autoscaler
//!   convergence (the recorded decision stream must replay exactly
//!   from the recorded metric samples).
//! * [`soak`](soak::soak) — the driver: run N seeds, and on any
//!   violation shrink (fewer sites → fewer faults → shorter workload)
//!   to a minimal reproducing seed with an exact repro command.
//!
//! Everything is deterministic for a given seed: a violation printed by
//! `xcbc soak` reproduces byte-for-byte from its repro command.

#![deny(missing_docs)]

pub mod invariant;
pub mod invariants;
pub mod outcome;
pub mod scenario;
pub mod soak;

pub use invariant::{default_invariants, Invariant, Violation};
pub use outcome::SoakOutcome;
pub use scenario::{Scenario, ScenarioLimits};
pub use soak::{
    check_outcome, mutation_invariant, repro_command, run_seed, shrink, soak, SeedFailure,
    ShrinkResult, SoakConfig, SoakReport,
};
