//! Seeded scenario generation and execution.
//!
//! A [`Scenario`] is generated *whole* from a seed — fleet shape,
//! Table 4 hardware mixes, fault plans, XNIT update sequences, and a
//! scheduler workload — then truncated to [`ScenarioLimits`]. Because
//! every section draws from its own salted RNG stream, lowering a limit
//! only drops a suffix and never reshuffles what remains: a shrunk
//! scenario is a strict sub-scenario of the original, which is what
//! makes greedy shrinking sound.

use std::collections::BTreeMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use xcbc_cluster::hw;
use xcbc_cluster::node::{NodeRole, NodeSpec};
use xcbc_cluster::specs::{limulus_hpc200, littlefe_modified};
use xcbc_cluster::topology::{ClusterSpec, NetworkSpec};
use xcbc_core::campaign::{
    run_campaign, CampaignConfig, CampaignError, CampaignMutation, CampaignTarget, CanaryAction,
};
use xcbc_core::deploy::{deploy_from_scratch_resilient, limulus_factory_image};
use xcbc_core::elastic::{
    run_elastic, BurstSite, ElasticConfig, ElasticError, ElasticMutation, ElasticState,
    ElasticWorld,
};
use xcbc_core::fleet::{Fleet, FleetSite, FleetTelemetry};
use xcbc_core::xnit::{xnit_repository, XnitSetupMethod};
use xcbc_fault::{
    CampaignCheckpoint, ElasticCheckpoint, FaultPlan, FaultWindow, InjectionPoint,
    InstallCheckpoint,
};
use xcbc_rocks::install::{InstallErrorKind, ResilienceConfig};
use xcbc_rpm::{PackageBuilder, RpmDb, TransactionSet};
use xcbc_sched::{run_workload, ClusterSim, JobRequest, RmKind, SchedPolicy, WorkloadSpec};
use xcbc_svc::{serve, SvcMutation, SvcWorkload};
use xcbc_yum::{SolveCache, SolveRequest, YumConfig};

use crate::outcome::{
    CampaignRecord, ElasticRecord, ResumeOutcome, SchedOutcome, SoakOutcome, SolveProbe, SvcRecord,
    TxRecord, WorkloadRecord,
};

/// Most sites one scenario deploys.
pub const MAX_SITES: usize = 5;
/// Most scheduled fault specs one scenario injects.
pub const MAX_FAULT_SPECS: usize = 8;
/// Most scheduler jobs one scenario submits.
pub const MAX_JOBS: usize = 24;
/// Most XNIT update requests one scenario applies.
pub const MAX_UPDATES: usize = 4;

/// Upper bounds on each scenario dimension (plus the campaign-stage
/// mutation switch, which rides along so a mutated repro survives
/// shrinking unchanged). The soak driver shrinks a failing seed by
/// lowering the bounds, one dimension at a time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioLimits {
    /// Max fleet sites deployed.
    pub sites: usize,
    /// Max scheduled fault specs (only meaningful with faults enabled).
    pub fault_specs: usize,
    /// Max scheduler jobs submitted.
    pub jobs: usize,
    /// Max XNIT update requests applied.
    pub updates: usize,
    /// Deliberate campaign-stage misbehavior for invariant self-tests
    /// (`None` in normal soaks).
    pub campaign_mutation: Option<CampaignMutation>,
    /// Deliberate elastic-stage misbehavior for invariant self-tests
    /// (`None` in normal soaks).
    pub elastic_mutation: Option<ElasticMutation>,
    /// Deliberate service-stage misbehavior for invariant self-tests
    /// (`None` in normal soaks).
    pub svc_mutation: Option<SvcMutation>,
}

impl Default for ScenarioLimits {
    fn default() -> Self {
        ScenarioLimits {
            sites: MAX_SITES,
            fault_specs: MAX_FAULT_SPECS,
            jobs: MAX_JOBS,
            updates: MAX_UPDATES,
            campaign_mutation: None,
            elastic_mutation: None,
            svc_mutation: None,
        }
    }
}

/// How one fleet site is deployed.
#[derive(Debug, Clone)]
pub enum SiteBlueprint {
    /// Bare-metal Rocks/XCBC install of a generated cluster, under the
    /// given fault plan.
    Scratch {
        /// Generated Table 4-style hardware mix.
        cluster: ClusterSpec,
        /// Per-site deterministic fault plan (empty without `--faults`).
        plan: FaultPlan,
    },
    /// XNIT overlay on an existing (Limulus-style) cluster.
    Overlay {
        /// The XNIT setup method the site's admin uses.
        method: XnitSetupMethod,
    },
}

/// One drawn fault, not yet bound to a site's plan. Kept in a flat,
/// truncatable list so `limits.fault_specs` shrinks faults globally.
#[derive(Debug, Clone)]
struct FaultDraw {
    /// Index into the *generated* site list (may point at a site that
    /// the limits cut — then the draw is inert, which is fine).
    site: usize,
    point: InjectionPoint,
    key: Option<String>,
    window: FaultWindow,
}

/// A fully generated soak scenario. [`Scenario::run`] executes it.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Seed it was generated from.
    pub seed: u64,
    /// Whether fault injection was requested.
    pub faults: bool,
    /// Effective limits (after clamping to the generator maxima).
    pub limits: ScenarioLimits,
    /// Site blueprints, already truncated to the limits.
    pub sites: Vec<(String, SiteBlueprint)>,
    /// Scheduler cluster shape.
    pub sched_nodes: usize,
    /// Cores per scheduler node.
    pub sched_cores: u32,
    /// Scheduling policy in force.
    pub policy: SchedPolicy,
    /// `(submit time, request)` pairs, submit times non-decreasing.
    pub workload: Vec<(f64, JobRequest)>,
    /// XNIT update requests applied in order to one evolving host DB.
    pub updates: Vec<SolveRequest>,
    /// Generated adversarial EVR strings.
    pub evr_samples: Vec<String>,
    /// Rolling-campaign stage: fleet size.
    pub campaign_nodes: usize,
    /// Rolling-campaign stage: canary cohort size.
    pub campaign_canary: usize,
    /// Rolling-campaign stage: total waves.
    pub campaign_waves: usize,
    /// Which scheduler frontend runs the campaign fleet.
    pub campaign_rm: RmKind,
    /// Canary failure policy for the campaign.
    pub campaign_canary_action: CanaryAction,
    /// Long-running jobs the campaign drains around.
    pub campaign_workload: Vec<JobRequest>,
    /// Fault plan the campaign runs under (may schedule `campaign.drain`
    /// aborts, which the stage resumes from checkpoints).
    pub campaign_plan: FaultPlan,
    /// Package names the campaign installs fleet-wide.
    pub campaign_targets: Vec<&'static str>,
    /// Deliberate campaign misbehavior (from the limits), for
    /// invariant self-tests.
    pub campaign_mutation: Option<CampaignMutation>,
    /// Elastic stage: fleet floor (powered-on minimum).
    pub elastic_min: usize,
    /// Elastic stage: fleet ceiling the autoscaler may reach.
    pub elastic_max: usize,
    /// Elastic stage: workload ticks before the settle phase.
    pub elastic_ticks: usize,
    /// Elastic stage: which scheduler frontend runs the fleet.
    pub elastic_rm: RmKind,
    /// Elastic stage: `(tick, request)` job arrivals.
    pub elastic_workload: Vec<(usize, JobRequest)>,
    /// Elastic stage: burst sites as `(join_tick, leave_tick, method)`.
    pub elastic_bursts: Vec<(usize, Option<usize>, XnitSetupMethod)>,
    /// Fault plan the elastic stage runs under (may schedule
    /// `elastic.scale-up` aborts, which the stage resumes from
    /// checkpoints, and `elastic.burst-join` failures).
    pub elastic_plan: FaultPlan,
    /// Deliberate elastic misbehavior (from the limits), for invariant
    /// self-tests.
    pub elastic_mutation: Option<ElasticMutation>,
    /// Generated-workload stage: the open-loop spec driving the stream.
    pub workload_spec: WorkloadSpec,
    /// Generated-workload stage: stream seed.
    pub workload_seed: u64,
    /// Generated-workload stage: jobs drawn from the stream.
    pub workload_jobs: usize,
    /// Generated-workload stage: cluster shape `(nodes, cores/node)`.
    pub workload_shape: (usize, u32),
    /// Generated-workload stage: frontend running the stream.
    pub workload_rm: RmKind,
    /// Generated-workload stage: scheduling policy.
    pub workload_policy: SchedPolicy,
    /// Service stage: tenant count for the `xcbcd` workload.
    pub svc_tenants: usize,
    /// Service stage: request-stream length (capped by `limits.jobs` so
    /// shrinking the jobs dimension also shrinks the service stream).
    pub svc_requests: usize,
    /// Service stage: worker-pool width the stream is served at.
    pub svc_workers: usize,
    /// Service stage: workload-generator seed.
    pub svc_seed: u64,
    /// Deliberate service misbehavior (from the limits), for invariant
    /// self-tests.
    pub svc_mutation: Option<SvcMutation>,
}

fn salted(seed: u64, salt: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ salt.wrapping_mul(0x9e3779b97f4a7c15))
}

/// Generate a Table 4-flavoured hardware mix: 3–6 nodes on the
/// GA-Q87TN board with Haswell-era CPUs, per-node mSATA disks (Rocks
/// needs disks) and a dual-homed frontend.
fn gen_cluster(rng: &mut StdRng, idx: usize) -> ClusterSpec {
    let n_nodes = rng.gen_range(3usize..=6);
    let mut c = ClusterSpec::new(
        format!("soak-{idx}"),
        NetworkSpec::gigabit_ethernet((n_nodes + 2) as u32),
    );
    for i in 0..n_nodes {
        let role = if i == 0 {
            NodeRole::Frontend
        } else {
            NodeRole::Compute
        };
        let name = if i == 0 {
            format!("soak{idx}-fe")
        } else {
            format!("compute-0-{}", i - 1)
        };
        let cpu = if rng.gen_bool(0.5) {
            hw::CELERON_G1840
        } else {
            hw::I7_4770S
        };
        let cooler = if rng.gen_bool(0.5) {
            hw::ROSEWILL_RCX_Z775_LP
        } else {
            hw::INTEL_STOCK_COOLER
        };
        let ram = [4u32, 8, 16][rng.gen_range(0usize..3)];
        let mut b = NodeSpec::new(name, role)
            .board(hw::GA_Q87TN)
            .cpu(cpu)
            .cooler(cooler)
            .ram_gb(ram)
            .disk(hw::CRUCIAL_M550_MSATA)
            .psu(hw::PER_NODE_PSU);
        if i == 0 {
            b = b.nic(hw::GBE_NIC);
        }
        c.nodes.push(b.build());
    }
    c
}

impl Scenario {
    /// Generate the scenario for `seed`, truncated to `limits`.
    pub fn generate(seed: u64, faults: bool, limits: &ScenarioLimits) -> Scenario {
        let limits = ScenarioLimits {
            sites: limits.sites.min(MAX_SITES),
            fault_specs: limits.fault_specs.min(MAX_FAULT_SPECS),
            jobs: limits.jobs.min(MAX_JOBS),
            updates: limits.updates.min(MAX_UPDATES),
            campaign_mutation: limits.campaign_mutation,
            elastic_mutation: limits.elastic_mutation,
            svc_mutation: limits.svc_mutation,
        };

        // Natural sizes: how big the scenario *wants* to be for this
        // seed. Limits can only cut these down.
        let mut shape = salted(seed, 1);
        let natural_sites = shape.gen_range(1usize..=MAX_SITES);
        let natural_faults = if faults {
            shape.gen_range(1usize..=MAX_FAULT_SPECS)
        } else {
            0
        };
        let natural_jobs = shape.gen_range(4usize..=MAX_JOBS);
        let natural_updates = shape.gen_range(1usize..=MAX_UPDATES);

        // Sites: always generate MAX_SITES blueprints from a dedicated
        // stream, then keep a prefix.
        let mut site_rng = salted(seed, 2);
        let mut all_sites: Vec<(String, SiteBlueprint)> = Vec::new();
        for idx in 0..MAX_SITES {
            let site_seed = site_rng.gen_range(0u64..=u64::MAX - 1);
            if site_rng.gen_bool(0.35) {
                let method = if site_rng.gen_bool(0.5) {
                    XnitSetupMethod::RepoRpm
                } else {
                    XnitSetupMethod::ManualRepoFile
                };
                all_sites.push((format!("overlay-{idx}"), SiteBlueprint::Overlay { method }));
            } else {
                let cluster = gen_cluster(&mut site_rng, idx);
                all_sites.push((
                    format!("scratch-{idx}"),
                    SiteBlueprint::Scratch {
                        cluster,
                        plan: FaultPlan::new(site_seed),
                    },
                ));
            }
        }

        // Fault draws: a flat truncatable pool targeting site indices.
        // PowerLoss is deliberately excluded — fleet sites do not
        // resume, so a power loss would just fail the site; the resume
        // stage exercises it under a controlled resume loop instead.
        let mut fault_rng = salted(seed, 3);
        let mut draws: Vec<FaultDraw> = Vec::new();
        for _ in 0..MAX_FAULT_SPECS {
            let site = fault_rng.gen_range(0usize..MAX_SITES);
            let point = match fault_rng.gen_range(0u32..4) {
                0 => InjectionPoint::DhcpDiscover,
                1 => InjectionPoint::NodeBoot,
                2 => InjectionPoint::KickstartGenerate,
                _ => InjectionPoint::RpmScriptlet,
            };
            let key = if fault_rng.gen_bool(0.5) {
                Some(format!("compute-0-{}", fault_rng.gen_range(0u32..3)))
            } else {
                None
            };
            let window = match fault_rng.gen_range(0u32..3) {
                0 => FaultWindow::Nth(fault_rng.gen_range(0u64..2)),
                1 => FaultWindow::FirstN(fault_rng.gen_range(1u64..=2)),
                _ => FaultWindow::Range {
                    start: 0,
                    end: fault_rng.gen_range(1u64..=3),
                },
            };
            draws.push(FaultDraw {
                site,
                point,
                key,
                window,
            });
        }
        let used_faults = natural_faults.min(limits.fault_specs);
        draws.truncate(used_faults);

        let used_sites = natural_sites.min(limits.sites);
        all_sites.truncate(used_sites);
        for (i, (_, blueprint)) in all_sites.iter_mut().enumerate() {
            if let SiteBlueprint::Scratch { plan, .. } = blueprint {
                for d in draws.iter().filter(|d| d.site == i) {
                    *plan = plan.clone().fail(d.point, d.key.as_deref(), d.window);
                }
            }
        }

        // Scheduler workload: satisfiable by construction (nodes and
        // ppn clamped to the cluster shape) so that a job left queued
        // after drain is a genuine no-starvation violation.
        let mut sched_rng = salted(seed, 4);
        let sched_nodes = sched_rng.gen_range(4usize..=8);
        let sched_cores = [2u32, 4][sched_rng.gen_range(0usize..2)];
        let policy = match sched_rng.gen_range(0u32..3) {
            0 => SchedPolicy::Fifo,
            1 => SchedPolicy::EasyBackfill,
            _ => SchedPolicy::maui_default(),
        };
        let mut workload: Vec<(f64, JobRequest)> = Vec::new();
        let mut t = 0.0f64;
        let users = ["alice", "bob", "carol"];
        for j in 0..MAX_JOBS {
            t += sched_rng.gen_range(0.0..900.0);
            let nodes = sched_rng.gen_range(1u32..=(sched_nodes as u32).min(4));
            let ppn = sched_rng.gen_range(1u32..=sched_cores);
            let walltime = sched_rng.gen_range(300.0..3600.0);
            // Some jobs overrun their walltime (and get killed at the
            // limit) — TimedOut is a legitimate terminal state.
            let runtime = walltime * sched_rng.gen_range(0.3..1.2);
            let mut req = JobRequest::new(&format!("job-{j}"), nodes, ppn, walltime, runtime);
            req.user = users[sched_rng.gen_range(0usize..users.len())].to_string();
            workload.push((t, req));
        }
        workload.truncate(natural_jobs.min(limits.jobs));

        // XNIT update sequence against one evolving host database.
        let mut upd_rng = salted(seed, 5);
        let pool = ["paraview", "visit", "wrf", "amber-tools", "gromacs"];
        let mut updates: Vec<SolveRequest> = Vec::new();
        for _ in 0..MAX_UPDATES {
            let req = match upd_rng.gen_range(0u32..4) {
                0..=1 => {
                    let n = upd_rng.gen_range(1usize..=2);
                    let names: Vec<&str> = (0..n)
                        .map(|_| pool[upd_rng.gen_range(0usize..pool.len())])
                        .collect();
                    SolveRequest::install(names)
                }
                2 => SolveRequest::update(vec![pool[upd_rng.gen_range(0usize..pool.len())]]),
                _ => SolveRequest::update_all(),
            };
            updates.push(req);
        }
        updates.truncate(natural_updates.min(limits.updates));

        // Adversarial EVR strings: the shapes that historically trip
        // comparators, plus seeded random compositions.
        let mut evr_rng = salted(seed, 6);
        let atoms = [
            "1", "2", "10", "01", "007", "0", "a", "rc", "alpha", "fc", ".", "-", "_", "~", "^",
        ];
        let mut evr_samples: Vec<String> = vec![
            "1.05".into(),
            "1.5".into(),
            "1.0~rc1".into(),
            "1.0^git1".into(),
            "1.0".into(),
        ];
        for _ in 0..12 {
            let n = evr_rng.gen_range(0usize..=5);
            let s: String = (0..n)
                .map(|_| atoms[evr_rng.gen_range(0usize..atoms.len())])
                .collect();
            evr_samples.push(s);
        }

        // Rolling-campaign stage: a small live fleet updated in drained
        // waves. About half of faulted seeds schedule a `campaign.drain`
        // abort so checkpoint resumes get exercised, and about a third
        // add scriptlet faults so retry budgets and partial rollouts do.
        let mut camp_rng = salted(seed, 7);
        let campaign_nodes = camp_rng.gen_range(3usize..=8);
        let campaign_canary = camp_rng.gen_range(1usize..=2);
        let campaign_waves = camp_rng.gen_range(2usize..=4);
        let campaign_rm = RmKind::ALL[camp_rng.gen_range(0u32..3) as usize];
        let campaign_canary_action = if camp_rng.gen_bool(0.5) {
            CanaryAction::Halt
        } else {
            CanaryAction::Rollback
        };
        let mut campaign_workload = Vec::new();
        for j in 0..camp_rng.gen_range(1usize..=4) {
            // long-running so drains catch them mid-flight; walltime
            // roomy enough that requeues don't time the job out
            let nodes = camp_rng.gen_range(1u32..=2);
            let ppn = camp_rng.gen_range(1u32..=4);
            let runtime = camp_rng.gen_range(1500.0..6000.0);
            campaign_workload.push(JobRequest::new(
                &format!("cjob-{j}"),
                nodes,
                ppn,
                40_000.0,
                runtime,
            ));
        }
        let mut campaign_plan = FaultPlan::new(camp_rng.gen_range(0u64..=u64::MAX - 1));
        if faults {
            if camp_rng.gen_bool(0.5) {
                let wave = camp_rng.gen_range(1usize..campaign_waves.max(2));
                campaign_plan = campaign_plan.fail(
                    InjectionPoint::CampaignDrain,
                    Some(&format!("wave-{wave}")),
                    FaultWindow::Nth(0),
                );
            }
            if camp_rng.gen_bool(0.35) {
                campaign_plan = campaign_plan.fail(
                    InjectionPoint::RpmScriptlet,
                    None,
                    FaultWindow::FirstN(camp_rng.gen_range(1u64..=2)),
                );
            }
        }
        let pool = ["paraview", "visit", "wrf", "amber-tools", "gromacs"];
        let mut campaign_targets = vec![pool[camp_rng.gen_range(0usize..pool.len())]];
        if camp_rng.gen_bool(0.4) {
            campaign_targets.push(pool[camp_rng.gen_range(0usize..pool.len())]);
        }
        campaign_targets.dedup();

        // Elastic-membership stage: a small self-scaling fleet under a
        // bursty workload, with burst sites joining mid-run. About half
        // of faulted seeds schedule an `elastic.scale-up` abort (resumed
        // from a checkpoint) and about a third fail one burst join.
        let mut el_rng = salted(seed, 8);
        let elastic_min = el_rng.gen_range(1usize..=2);
        let elastic_max = elastic_min + el_rng.gen_range(2usize..=4);
        let elastic_ticks = el_rng.gen_range(10usize..=16);
        let elastic_rm = RmKind::ALL[el_rng.gen_range(0u32..3) as usize];
        let mut elastic_workload: Vec<(usize, JobRequest)> = Vec::new();
        let mut job_idx = 0usize;
        for _ in 0..el_rng.gen_range(1usize..=3) {
            // arrivals come in bursts so queue pressure actually
            // persists past the up-streak; jobs are no wider than the
            // floor (satisfiable even after a full scale-down) with
            // walltime roomy enough that a drain requeue never times
            // the job out
            let tick = el_rng.gen_range(0usize..(elastic_ticks * 2) / 3);
            for _ in 0..el_rng.gen_range(3usize..=6) {
                let nodes = el_rng.gen_range(1u32..=elastic_min as u32);
                let ppn = el_rng.gen_range(1u32..=2);
                // a mix of short fillers and multi-tick stragglers: the
                // stragglers keep scaled-up nodes busy into the idle
                // phase so scale-down drains catch live work
                let runtime = if el_rng.gen_bool(0.3) {
                    el_rng.gen_range(2400.0..5400.0)
                } else {
                    el_rng.gen_range(500.0..1600.0)
                };
                elastic_workload.push((
                    tick,
                    JobRequest::new(&format!("ejob-{job_idx}"), nodes, ppn, 40_000.0, runtime),
                ));
                job_idx += 1;
            }
        }
        elastic_workload.sort_by_key(|(t, _)| *t);
        let mut elastic_bursts: Vec<(usize, Option<usize>, XnitSetupMethod)> = Vec::new();
        for _ in 0..el_rng.gen_range(0usize..=2) {
            let join = el_rng.gen_range(1usize..=elastic_ticks / 2);
            let leave = if el_rng.gen_bool(0.5) {
                Some(join + el_rng.gen_range(2usize..=4))
            } else {
                None
            };
            let method = if el_rng.gen_bool(0.5) {
                XnitSetupMethod::RepoRpm
            } else {
                XnitSetupMethod::ManualRepoFile
            };
            elastic_bursts.push((join, leave, method));
        }
        let mut elastic_plan = FaultPlan::new(el_rng.gen_range(0u64..=u64::MAX - 1));
        if faults {
            if el_rng.gen_bool(0.5) {
                let tick = el_rng.gen_range(1usize..=6.min(elastic_ticks));
                elastic_plan = elastic_plan.fail(
                    InjectionPoint::ScaleUp,
                    Some(&format!("tick-{tick}")),
                    FaultWindow::Nth(0),
                );
            }
            if !elastic_bursts.is_empty() && el_rng.gen_bool(0.35) {
                let which = el_rng.gen_range(0usize..elastic_bursts.len());
                elastic_plan = elastic_plan.fail(
                    InjectionPoint::BurstJoin,
                    Some(&format!("burst-{which}")),
                    FaultWindow::Nth(0),
                );
            }
        }

        // Generated-workload stage: an open-loop WorkloadSpec stream
        // (the PR 8 workload engine) run through a per-seed frontend and
        // policy, so the generators themselves soak under the invariant
        // suite. Every spec keeps walltime ≥ runtime, so expected
        // consumption is exactly Σ cores × runtime.
        let mut wl_rng = salted(seed, 9);
        let workload_spec = match wl_rng.gen_range(0u32..3) {
            0 => WorkloadSpec::teaching_lab(),
            1 => WorkloadSpec::campus_research(),
            _ => WorkloadSpec::heavy_tail(),
        };
        let workload_seed = wl_rng.gen_range(0u64..=u64::MAX - 1);
        let workload_jobs = wl_rng.gen_range(40usize..=120).min(limits.jobs.max(1));
        let workload_shape = (
            wl_rng.gen_range(4usize..=8),
            [2u32, 4][wl_rng.gen_range(0usize..2)],
        );
        let workload_rm = RmKind::ALL[wl_rng.gen_range(0u32..3) as usize];
        let workload_policy = match wl_rng.gen_range(0u32..3) {
            0 => SchedPolicy::Fifo,
            1 => SchedPolicy::EasyBackfill,
            _ => SchedPolicy::maui_default(),
        };

        // Service stage: a seeded multi-tenant xcbcd stream, served at a
        // per-seed worker count (the admission/replay invariants must
        // hold at *any* width). Stream length rides the jobs limit so
        // the shrinker can cut it.
        let mut svc_rng = salted(seed, 10);
        let svc_tenants = svc_rng.gen_range(2usize..=4);
        let svc_requests = svc_rng.gen_range(8usize..=24).min(limits.jobs.max(1));
        let svc_workers = svc_rng.gen_range(1usize..=4);
        let svc_seed = svc_rng.gen_range(0u64..=u64::MAX - 1);

        Scenario {
            seed,
            faults,
            limits,
            sites: all_sites,
            sched_nodes,
            sched_cores,
            policy,
            workload,
            updates,
            evr_samples,
            campaign_nodes,
            campaign_canary,
            campaign_waves,
            campaign_rm,
            campaign_canary_action,
            campaign_workload,
            campaign_plan,
            campaign_targets,
            campaign_mutation: limits.campaign_mutation,
            elastic_min,
            elastic_max,
            elastic_ticks,
            elastic_rm,
            elastic_workload,
            elastic_bursts,
            elastic_plan,
            elastic_mutation: limits.elastic_mutation,
            workload_spec,
            workload_seed,
            workload_jobs,
            workload_shape,
            workload_rm,
            workload_policy,
            svc_tenants,
            svc_requests,
            svc_workers,
            svc_seed,
            svc_mutation: limits.svc_mutation,
        }
    }

    /// Execute the scenario and collect everything the invariant suite
    /// needs. Deterministic: the same seed/limits produce an identical
    /// outcome (site traces are byte-identical at any thread count by
    /// the fleet engine's own guarantee).
    pub fn run(&self) -> SoakOutcome {
        let cache: Arc<SolveCache> = Arc::new(SolveCache::new());

        // --- fleet deployment over the shared solve cache ---
        let mut fleet = Fleet::new()
            .with_threads(2)
            .with_solve_cache(Arc::clone(&cache));
        for (name, blueprint) in &self.sites {
            let site = match blueprint {
                SiteBlueprint::Scratch { cluster, plan } => {
                    FleetSite::from_scratch_with_faults(name, cluster.clone(), plan.clone())
                }
                SiteBlueprint::Overlay { method } => {
                    let factory = limulus_factory_image();
                    let existing: BTreeMap<String, RpmDb> = limulus_hpc200()
                        .nodes
                        .iter()
                        .map(|n| (n.hostname.clone(), factory.clone()))
                        .collect();
                    FleetSite::overlay(name, existing, *method)
                }
            };
            fleet = fleet.add_site(site);
        }
        let report = fleet.deploy();
        let telemetry = FleetTelemetry::from_report(&report);

        // --- XNIT update sequence (through the same cache) ---
        let repos = vec![xcbc_core::xnit::xnit_repository()];
        let config = YumConfig::default();
        let mut db = limulus_factory_image();
        let mut solve_probes: Vec<SolveProbe> = Vec::new();
        let mut transactions: Vec<TxRecord> = Vec::new();
        for (i, request) in self.updates.iter().enumerate() {
            solve_probes.push(SolveProbe {
                repos: repos.clone(),
                config: config.clone(),
                db: db.clone(),
                request: request.clone(),
            });
            let solution = match cache.get_or_solve(&repos, &config, &db, request) {
                Ok(s) => s,
                Err(_) => continue, // an unresolvable request is a tolerated outcome
            };
            if solution.is_empty() {
                continue;
            }
            let mut tx = TransactionSet::new();
            for p in &solution.upgrades {
                tx.add_upgrade((**p).clone());
            }
            for p in &solution.installs {
                tx.add_install((**p).clone());
            }
            let before = db.clone();
            let tx_report = match tx.run(&mut db) {
                Ok(r) => r,
                Err(_) => continue,
            };
            transactions.push(TxRecord {
                label: format!("update[{i}] {request:?}"),
                before,
                report: tx_report,
                after: db.clone(),
            });
        }

        // --- scheduler workload ---
        let mut sim = ClusterSim::new(self.sched_nodes, self.sched_cores, self.policy);
        for (t, req) in &self.workload {
            sim.submit_at(*t, req.clone());
        }
        sim.run_to_completion();
        let trace = sim.take_trace();
        let sched = SchedOutcome {
            sim,
            trace,
            submitted: self.workload.len(),
        };

        // --- checkpoint/resume equivalence stage ---
        let resume = run_resume_stage(self.seed);

        // --- rolling-campaign stage over the same shared cache ---
        let campaign = self.run_campaign_stage(&cache);

        // --- elastic-membership stage over the same shared cache ---
        let elastic = self.run_elastic_stage(&cache);

        // --- generated-workload stage: open-loop stream through an RM ---
        let workload = self.run_workload_stage();

        // --- service stage: the multi-tenant xcbcd stream ---
        let svc = self.run_svc_stage();

        // --- EVR harvest: generated edge cases + deployed versions ---
        let mut evr_samples = self.evr_samples.clone();
        'harvest: for site in &report.sites {
            if let Ok(dep) = &site.result {
                if let Some(db) = dep.node_dbs.values().next() {
                    for name in db.names() {
                        if let Some(ip) = db.newest(name) {
                            let evr = ip.package.evr();
                            evr_samples.push(evr.version.clone());
                            if !evr.release.is_empty() {
                                evr_samples.push(evr.release.clone());
                            }
                        }
                        if evr_samples.len() >= 48 {
                            break 'harvest;
                        }
                    }
                }
            }
        }
        evr_samples.sort();
        evr_samples.dedup();

        SoakOutcome {
            seed: self.seed,
            faults: self.faults,
            fleet: report,
            telemetry,
            cache,
            solve_probes,
            transactions,
            sched,
            resume: Some(resume),
            campaign: Some(campaign),
            elastic: Some(elastic),
            workload: Some(workload),
            svc: Some(svc),
            evr_samples,
        }
    }

    /// Run the service stage: generate the seeded multi-tenant stream
    /// and serve it through `xcbcd` at the scenario's worker count,
    /// keeping the submitted requests and config beside the report so
    /// the admission checker can re-derive every decision and the
    /// replay checker can re-execute the journal.
    fn run_svc_stage(&self) -> SvcRecord {
        let workload = SvcWorkload {
            tenants: self.svc_tenants,
            requests: self.svc_requests,
            seed: self.svc_seed,
            ..SvcWorkload::default()
        };
        let requests = workload.generate();
        let mut config = workload.config(self.svc_workers);
        config.mutation = self.svc_mutation;
        let report = serve(&requests, &config);
        SvcRecord {
            requests,
            config,
            report,
        }
    }

    /// Run the generated-workload stage: draw `workload_jobs` arrivals
    /// from the scenario's [`WorkloadSpec`] stream, feed them through
    /// the chosen frontend, and keep the expected-consumption ledger
    /// beside the drained job states for the conservation checker.
    fn run_workload_stage(&self) -> WorkloadRecord {
        let (nodes, cores_per_node) = self.workload_shape;
        let spec = self.workload_spec.normalized();
        let mut generated = Vec::new();
        let mut jobs = Vec::new();
        for (t, req) in spec
            .stream(self.workload_seed, nodes as u32, cores_per_node)
            .take(self.workload_jobs)
        {
            generated.push((
                req.name.clone(),
                req.cores(),
                req.runtime_s.min(req.walltime_s),
            ));
            jobs.push((t, req));
        }
        let mut rm = self
            .workload_rm
            .build(nodes, cores_per_node, self.workload_policy);
        let metrics = run_workload(rm.as_mut(), jobs);
        let job_states = rm
            .sim()
            .jobs()
            .map(|j| (j.request.name.clone(), j.state))
            .collect();
        WorkloadRecord {
            spec_digest: spec.digest(),
            seed: self.workload_seed,
            rm: self.workload_rm,
            generated,
            job_states,
            used_core_seconds: rm.sim().used_core_seconds(),
            metrics,
        }
    }

    /// Run the elastic-membership stage: a fleet that self-scales
    /// between its floor and ceiling under a bursty workload, burst
    /// sites joining mid-run through the shared solve cache, resumed
    /// from an [`ElasticCheckpoint`] whenever the plan's
    /// `elastic.scale-up` fault aborts the run between ticks.
    fn run_elastic_stage(&self, cache: &Arc<SolveCache>) -> ElasticRecord {
        let config = ElasticConfig {
            min_nodes: self.elastic_min,
            max_nodes: self.elastic_max,
            tick_s: 600.0,
            ticks: self.elastic_ticks,
            up_streak: 2,
            down_streak: 3,
            step: 2,
            boot_s: 120.0,
            drain_grace_s: 300.0,
            max_settle_ticks: 200,
            threads: 2,
            mutation: self.elastic_mutation,
        };
        let mut world = ElasticWorld {
            workload: self.elastic_workload.clone(),
            burst_sites: Vec::new(),
        };
        let factory = limulus_factory_image();
        for (i, (join, leave, method)) in self.elastic_bursts.iter().enumerate() {
            let existing: BTreeMap<String, RpmDb> = (0..2)
                .map(|n| (format!("burst{i}-n{n}"), factory.clone()))
                .collect();
            let mut site = BurstSite::new(&format!("burst-{i}"), *join, existing, *method);
            if let Some(leave) = leave {
                site = site.leaving_at(*leave);
            }
            world.burst_sites.push(site);
        }

        let mut state = ElasticState::new(&config);
        let mut rm = self
            .elastic_rm
            .build_default("elastic-head", config.min_nodes, 2);

        let mut resumes = 0usize;
        let mut checkpoint_text: Option<String> = None;
        let mut ticks = Vec::new();
        let mut report = None;
        // fault keys match exactly (a scheduled `tick-1` abort cannot
        // re-fire on `tick-100`), and each resume completes at least
        // one tick, so horizon + settle bounds the loop; the cap only
        // guards a livelock bug
        for _ in 0..=config.ticks + config.max_settle_ticks {
            let resume_cp = checkpoint_text.as_deref().map(|text| {
                ElasticCheckpoint::parse(text).expect("elastic checkpoint round-trips")
            });
            match run_elastic(
                &world,
                &mut state,
                rm.as_mut(),
                &self.elastic_plan,
                cache,
                &config,
                resume_cp.as_ref(),
            ) {
                Ok(r) => {
                    ticks.extend(r.ticks.iter().copied());
                    report = Some(r);
                    break;
                }
                Err(ElasticError::Aborted {
                    checkpoint,
                    ticks: segment,
                    ..
                }) => {
                    resumes += 1;
                    ticks.extend(segment);
                    checkpoint_text = Some(checkpoint.to_text());
                }
                Err(e) => panic!("elastic stage cannot run: {e}"),
            }
        }
        let report = report.expect("elastic run completes within `ticks` resumes");

        let submitted = self
            .elastic_workload
            .iter()
            .map(|(_, r)| r.name.clone())
            .collect();
        let job_states = rm
            .sim()
            .jobs()
            .map(|j| (j.request.name.clone(), j.state))
            .collect();

        ElasticRecord {
            report,
            ticks,
            resumes,
            submitted,
            job_states,
        }
    }

    /// Run the rolling-campaign stage: a small live fleet (per-node
    /// factory databases, one of the three scheduler frontends, a few
    /// long-running jobs) updated wave-by-wave, resuming from a
    /// [`CampaignCheckpoint`] whenever the plan's `campaign.drain`
    /// fault aborts the run between waves.
    fn run_campaign_stage(&self, cache: &Arc<SolveCache>) -> CampaignRecord {
        // Odd-numbered nodes carry an extra site-local package so the
        // campaign's skew probe always sees more than one start state.
        let skew_pkg = PackageBuilder::new("site-local-tool", "1.0", "1").build();
        let mut dbs: BTreeMap<String, RpmDb> = BTreeMap::new();
        for i in 0..self.campaign_nodes {
            let mut db = limulus_factory_image();
            if i % 2 == 1 {
                db.install(skew_pkg.clone());
            }
            dbs.insert(format!("cnode-{i:02}"), db);
        }

        let mut rm = self
            .campaign_rm
            .build_default("campaign-head", self.campaign_nodes, 4);
        let mut submitted = Vec::new();
        for req in &self.campaign_workload {
            submitted.push(req.name.clone());
            rm.sim_mut().submit(req.clone());
        }
        rm.advance_to(5.0);

        let target = CampaignTarget {
            repos: vec![xnit_repository()],
            config: YumConfig::default(),
            request: SolveRequest::install(self.campaign_targets.iter().copied()),
        };
        let config = CampaignConfig {
            canary: self.campaign_canary,
            waves: self.campaign_waves,
            threads: 2,
            drain_grace_s: 90.0,
            on_canary_failure: self.campaign_canary_action,
            retry_budget: 2,
            mutation: self.campaign_mutation,
        };

        let mut resumes = 0usize;
        let mut checkpoint_text: Option<String> = None;
        let mut report = None;
        // each scheduled drain fault fires at most once (Nth windows),
        // so `waves` bounds the abort/resume loop
        for _ in 0..=self.campaign_waves {
            let resume_cp = checkpoint_text.as_deref().map(|text| {
                CampaignCheckpoint::parse(text).expect("campaign checkpoint round-trips")
            });
            match run_campaign(
                &target,
                &mut dbs,
                rm.as_mut(),
                &self.campaign_plan,
                cache,
                &config,
                resume_cp.as_ref(),
            ) {
                Ok(r) => {
                    report = Some(r);
                    break;
                }
                Err(CampaignError::Aborted { checkpoint, .. }) => {
                    resumes += 1;
                    checkpoint_text = Some(checkpoint.to_text());
                }
                Err(e) => panic!("campaign stage cannot run: {e}"),
            }
        }
        let report = report.expect("campaign completes within `waves` resumes");

        // Repair whatever the campaign left offline (failed canaries
        // stay down) so the remaining workload can finish, then drain.
        for i in 0..self.campaign_nodes {
            if rm.sim().is_offline(i) {
                rm.sim_mut().set_online(i);
            }
        }
        rm.sim_mut().run_to_completion();
        let trace = rm.sim_mut().take_trace();
        let job_states = rm
            .sim()
            .jobs()
            .map(|j| (j.request.name.clone(), j.state))
            .collect();
        let used_core_seconds = rm.sim().used_core_seconds();

        CampaignRecord {
            target,
            final_dbs: dbs,
            report,
            resumes,
            submitted,
            job_states,
            trace,
            used_core_seconds,
        }
    }
}

/// Install the modified LittleFe twice with the same seed: once
/// uninterrupted, once with a power loss right after the frontend
/// commit, resumed from the checkpoint. The checkers then require the
/// resumed run to converge to the same final state and for its trace
/// to be a suffix (subsequence) of the uninterrupted one.
fn run_resume_stage(seed: u64) -> ResumeOutcome {
    let cluster = littlefe_modified();
    let cfg = ResilienceConfig::default();
    let fe_host = cluster
        .frontend()
        .expect("littlefe_modified has a frontend")
        .hostname
        .clone();

    let base = FaultPlan::new(seed);
    let clean = deploy_from_scratch_resilient(&cluster, &base, &cfg, InstallCheckpoint::new())
        .expect("uninterrupted littlefe install succeeds");

    let lossy = FaultPlan::new(seed).fail(
        InjectionPoint::PowerLoss,
        Some(&fe_host),
        FaultWindow::Nth(0),
    );
    let mut checkpoint = InstallCheckpoint::new();
    let mut aborts = 0usize;
    let mut resumed = None;
    for _ in 0..=cluster.nodes.len() {
        match deploy_from_scratch_resilient(&cluster, &lossy, &cfg, checkpoint.clone()) {
            Ok(rep) => {
                resumed = Some(rep);
                break;
            }
            Err(e) if matches!(e.kind, InstallErrorKind::PowerLoss) => {
                aborts += 1;
                checkpoint = e.progress.checkpoint.clone();
            }
            Err(e) => panic!("unexpected install error in resume stage: {e}"),
        }
    }
    let resumed = resumed.expect("resume loop converges");

    ResumeOutcome {
        uninterrupted_trace: clean.trace,
        uninterrupted_dbs: clean.node_dbs,
        resumed_trace: resumed.trace,
        resumed_dbs: resumed.node_dbs,
        aborts,
    }
}
