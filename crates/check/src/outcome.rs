//! What one soaked scenario leaves behind for the checkers.

use std::collections::BTreeMap;
use std::sync::Arc;

use xcbc_core::campaign::{CampaignReport, CampaignTarget};
use xcbc_core::elastic::{ElasticReport, TickStat};
use xcbc_core::fleet::{FleetReport, FleetTelemetry};
use xcbc_rpm::{RpmDb, TransactionReport};
use xcbc_sched::{ClusterSim, JobState, RmKind, SimMetrics};
use xcbc_sim::TraceEvent;
use xcbc_svc::{SvcConfig, SvcReport, SvcRequest};
use xcbc_yum::{Repository, SolveCache, SolveRequest, YumConfig};

/// Input snapshot of one depsolve routed through the shared cache,
/// kept so the coherence checker can replay it fresh and byte-compare
/// against what the cache served.
#[derive(Debug, Clone)]
pub struct SolveProbe {
    /// Repositories the solve ran against.
    pub repos: Vec<Repository>,
    /// Yum configuration in effect.
    pub config: YumConfig,
    /// The RPM database state *before* the solve.
    pub db: RpmDb,
    /// The request.
    pub request: SolveRequest,
}

/// One executed RPM transaction with before/after database snapshots,
/// for the conservation checker.
#[derive(Debug, Clone)]
pub struct TxRecord {
    /// Where in the scenario this transaction ran (for reports).
    pub label: String,
    /// Database before the transaction.
    pub before: RpmDb,
    /// What the transaction reported doing.
    pub report: TransactionReport,
    /// Database after the transaction.
    pub after: RpmDb,
}

/// The scheduler stage's outcome: the drained simulator plus the trace
/// it emitted and the ids it handed out.
#[derive(Debug)]
pub struct SchedOutcome {
    /// The simulator after `run_to_completion` (holds final job states).
    pub sim: ClusterSim,
    /// Structured trace drained from the simulator.
    pub trace: Vec<TraceEvent>,
    /// How many jobs the scenario submitted.
    pub submitted: usize,
}

/// The checkpoint/resume stage: the same cluster installed twice —
/// once uninterrupted, once with a power loss after the frontend commit
/// and then resumed from the checkpoint.
#[derive(Debug)]
pub struct ResumeOutcome {
    /// Trace of the uninterrupted run.
    pub uninterrupted_trace: Vec<TraceEvent>,
    /// Final per-node databases of the uninterrupted run.
    pub uninterrupted_dbs: BTreeMap<String, RpmDb>,
    /// Trace of the final (resumed) run after the power loss.
    pub resumed_trace: Vec<TraceEvent>,
    /// Final per-node databases after resume.
    pub resumed_dbs: BTreeMap<String, RpmDb>,
    /// How many power-loss aborts happened before the resumed run
    /// completed (the scenario schedules exactly one).
    pub aborts: usize,
}

/// The rolling-campaign stage: a multi-wave drained update executed
/// against a live scheduler frontend, resumed across any injected
/// `campaign.drain` aborts.
#[derive(Debug)]
pub struct CampaignRecord {
    /// What the campaign was updating the fleet to.
    pub target: CampaignTarget,
    /// Per-node package databases after the campaign.
    pub final_dbs: BTreeMap<String, RpmDb>,
    /// The report of the final (completing) campaign segment.
    pub report: CampaignReport,
    /// How many `campaign.drain` aborts were resumed from a checkpoint.
    pub resumes: usize,
    /// Names of the jobs submitted to the campaign's scheduler.
    pub submitted: Vec<String>,
    /// `(name, state)` of every job after the post-campaign drain.
    pub job_states: Vec<(String, JobState)>,
    /// The scheduler trace across the whole campaign (all segments).
    pub trace: Vec<TraceEvent>,
    /// Core-seconds the scheduler accounted for.
    pub used_core_seconds: f64,
}

/// The elastic-membership stage: a fleet self-scaling between its
/// floor and ceiling under a bursty workload, resumed across any
/// injected `elastic.scale-up` aborts.
#[derive(Debug)]
pub struct ElasticRecord {
    /// The report of the final (completing) run segment.
    pub report: ElasticReport,
    /// Tick stats concatenated across every segment (aborted prefixes
    /// plus the completing run) — the full decision stream the
    /// convergence checker replays through a fresh autoscaler.
    pub ticks: Vec<TickStat>,
    /// How many `elastic.scale-up` aborts were resumed from checkpoints.
    pub resumes: usize,
    /// Names of the jobs submitted to the elastic fleet.
    pub submitted: Vec<String>,
    /// `(name, state)` of every job after the run settled.
    pub job_states: Vec<(String, JobState)>,
}

/// The generated-workload stage: an open-loop
/// [`WorkloadSpec`](xcbc_sched::workload::WorkloadSpec) stream run
/// end-to-end through one RM
/// frontend, with the expected-consumption ledger kept alongside so
/// the conservation checker can audit the books.
#[derive(Debug)]
pub struct WorkloadRecord {
    /// Digest of the normalized spec that generated the stream.
    pub spec_digest: u64,
    /// Stream seed.
    pub seed: u64,
    /// Which frontend ran the stream.
    pub rm: RmKind,
    /// `(name, cores, expected_busy_s)` per generated request in
    /// submission order, where `expected_busy_s` is the runtime capped
    /// at the walltime (the simulator kills at the limit).
    pub generated: Vec<(String, u32, f64)>,
    /// `(name, state)` of every job after the drain.
    pub job_states: Vec<(String, JobState)>,
    /// Core-seconds the simulator accounted for.
    pub used_core_seconds: f64,
    /// Metrics snapshot after the drain.
    pub metrics: SimMetrics,
}

/// The service stage: a seeded multi-tenant request stream served by
/// `xcbcd`, kept with its full input so the admission checker can
/// re-derive every accept/reject decision and the replay checker can
/// re-execute the journal single-threaded.
#[derive(Debug)]
pub struct SvcRecord {
    /// The generated request stream, in submission order.
    pub requests: Vec<SvcRequest>,
    /// The service configuration the stream was served under (includes
    /// any planted mutation).
    pub config: SvcConfig,
    /// What the service produced: responses, journal, counters.
    pub report: SvcReport,
}

/// Everything one soaked seed produced, handed to every
/// [`Invariant`](crate::Invariant).
#[derive(Debug)]
pub struct SoakOutcome {
    /// The seed that generated the scenario.
    pub seed: u64,
    /// Whether fault injection was enabled.
    pub faults: bool,
    /// The fleet deployment report (per-site traces, node DBs).
    pub fleet: FleetReport,
    /// Telemetry rolled up from the fleet report (per-site gmetads plus
    /// the meta-gmetad).
    pub telemetry: FleetTelemetry,
    /// The shared solve cache after the whole scenario ran.
    pub cache: Arc<SolveCache>,
    /// Recorded depsolve inputs for the coherence checker.
    pub solve_probes: Vec<SolveProbe>,
    /// Executed XNIT update transactions with DB snapshots.
    pub transactions: Vec<TxRecord>,
    /// The scheduler workload outcome.
    pub sched: SchedOutcome,
    /// The checkpoint/resume equivalence stage, when the scenario ran it.
    pub resume: Option<ResumeOutcome>,
    /// The rolling-campaign stage, when the scenario ran it.
    pub campaign: Option<CampaignRecord>,
    /// The elastic-membership stage, when the scenario ran it.
    pub elastic: Option<ElasticRecord>,
    /// The generated-workload stage, when the scenario ran it.
    pub workload: Option<WorkloadRecord>,
    /// The service stage, when the scenario ran it.
    pub svc: Option<SvcRecord>,
    /// EVR strings harvested from the scenario (generated edge cases
    /// plus versions seen in deployed node databases).
    pub evr_samples: Vec<String>,
}
