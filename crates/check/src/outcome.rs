//! What one soaked scenario leaves behind for the checkers.

use std::collections::BTreeMap;
use std::sync::Arc;

use xcbc_core::fleet::{FleetReport, FleetTelemetry};
use xcbc_rpm::{RpmDb, TransactionReport};
use xcbc_sched::ClusterSim;
use xcbc_sim::TraceEvent;
use xcbc_yum::{Repository, SolveCache, SolveRequest, YumConfig};

/// Input snapshot of one depsolve routed through the shared cache,
/// kept so the coherence checker can replay it fresh and byte-compare
/// against what the cache served.
#[derive(Debug, Clone)]
pub struct SolveProbe {
    /// Repositories the solve ran against.
    pub repos: Vec<Repository>,
    /// Yum configuration in effect.
    pub config: YumConfig,
    /// The RPM database state *before* the solve.
    pub db: RpmDb,
    /// The request.
    pub request: SolveRequest,
}

/// One executed RPM transaction with before/after database snapshots,
/// for the conservation checker.
#[derive(Debug, Clone)]
pub struct TxRecord {
    /// Where in the scenario this transaction ran (for reports).
    pub label: String,
    /// Database before the transaction.
    pub before: RpmDb,
    /// What the transaction reported doing.
    pub report: TransactionReport,
    /// Database after the transaction.
    pub after: RpmDb,
}

/// The scheduler stage's outcome: the drained simulator plus the trace
/// it emitted and the ids it handed out.
#[derive(Debug)]
pub struct SchedOutcome {
    /// The simulator after `run_to_completion` (holds final job states).
    pub sim: ClusterSim,
    /// Structured trace drained from the simulator.
    pub trace: Vec<TraceEvent>,
    /// How many jobs the scenario submitted.
    pub submitted: usize,
}

/// The checkpoint/resume stage: the same cluster installed twice —
/// once uninterrupted, once with a power loss after the frontend commit
/// and then resumed from the checkpoint.
#[derive(Debug)]
pub struct ResumeOutcome {
    /// Trace of the uninterrupted run.
    pub uninterrupted_trace: Vec<TraceEvent>,
    /// Final per-node databases of the uninterrupted run.
    pub uninterrupted_dbs: BTreeMap<String, RpmDb>,
    /// Trace of the final (resumed) run after the power loss.
    pub resumed_trace: Vec<TraceEvent>,
    /// Final per-node databases after resume.
    pub resumed_dbs: BTreeMap<String, RpmDb>,
    /// How many power-loss aborts happened before the resumed run
    /// completed (the scenario schedules exactly one).
    pub aborts: usize,
}

/// Everything one soaked seed produced, handed to every
/// [`Invariant`](crate::Invariant).
#[derive(Debug)]
pub struct SoakOutcome {
    /// The seed that generated the scenario.
    pub seed: u64,
    /// Whether fault injection was enabled.
    pub faults: bool,
    /// The fleet deployment report (per-site traces, node DBs).
    pub fleet: FleetReport,
    /// Telemetry rolled up from the fleet report (per-site gmetads plus
    /// the meta-gmetad).
    pub telemetry: FleetTelemetry,
    /// The shared solve cache after the whole scenario ran.
    pub cache: Arc<SolveCache>,
    /// Recorded depsolve inputs for the coherence checker.
    pub solve_probes: Vec<SolveProbe>,
    /// Executed XNIT update transactions with DB snapshots.
    pub transactions: Vec<TxRecord>,
    /// The scheduler workload outcome.
    pub sched: SchedOutcome,
    /// The checkpoint/resume equivalence stage, when the scenario ran it.
    pub resume: Option<ResumeOutcome>,
    /// EVR strings harvested from the scenario (generated edge cases
    /// plus versions seen in deployed node databases).
    pub evr_samples: Vec<String>,
}
