//! End-to-end smoke tests for the soak harness: the default suite runs
//! green, and a deliberately-broken invariant is caught, shrunk, and
//! reproduces deterministically from the shrunk limits.

use xcbc_check::{
    default_invariants, mutation_invariant, repro_command, run_seed, soak, ScenarioLimits,
    SoakConfig,
};

#[test]
fn default_suite_green_with_faults() {
    let config = SoakConfig {
        seeds: 2,
        start_seed: 0,
        faults: true,
        shrink: false,
        limits: ScenarioLimits {
            sites: 2,
            fault_specs: 4,
            jobs: 10,
            updates: 2,
            campaign_mutation: None,
            elastic_mutation: None,
            svc_mutation: None,
        },
        mutate: false,
    };
    let report = soak(&config, &default_invariants());
    assert!(
        report.passed(),
        "default invariants violated:\n{}",
        report.render()
    );
    assert_eq!(report.seeds_passed, 2);
}

#[test]
fn run_seed_is_deterministic() {
    let limits = ScenarioLimits {
        sites: 1,
        fault_specs: 2,
        jobs: 6,
        updates: 1,
        campaign_mutation: None,
        elastic_mutation: None,
        svc_mutation: None,
    };
    let mut suite = default_invariants();
    suite.push(mutation_invariant());
    let a = run_seed(7, true, &limits, &suite);
    let b = run_seed(7, true, &limits, &suite);
    assert_eq!(a, b, "same seed and limits must yield identical violations");
}

#[test]
fn mutation_is_caught_and_shrunk_to_a_deterministic_repro() {
    // The mutation invariant forbids job timeouts, which generated
    // workloads legitimately produce; some seed in this window hits one.
    let limits = ScenarioLimits {
        sites: 1,
        fault_specs: 2,
        jobs: 12,
        updates: 1,
        campaign_mutation: None,
        elastic_mutation: None,
        svc_mutation: None,
    };
    let mut suite = default_invariants();
    suite.push(mutation_invariant());
    let config = SoakConfig {
        seeds: 10,
        start_seed: 0,
        faults: false,
        shrink: true,
        limits,
        mutate: true,
    };
    let report = soak(&config, &suite);
    let failure = report
        .failure
        .as_ref()
        .expect("mutation invariant must fire within 10 seeds");
    assert!(failure
        .violations
        .iter()
        .all(|v| v.invariant == "mutation.no-timeouts"));

    let shrunk = failure.shrink.as_ref().expect("shrink was enabled");
    assert!(shrunk.limits.sites <= limits.sites);
    assert!(shrunk.limits.fault_specs <= limits.fault_specs);
    assert!(shrunk.limits.jobs <= limits.jobs);
    assert!(shrunk.limits.updates <= limits.updates);
    // Non-sched dimensions are irrelevant to a timeout violation, so the
    // shrinker must have floored them.
    assert_eq!(shrunk.limits.sites, 1);
    assert_eq!(shrunk.limits.fault_specs, 0);
    assert_eq!(shrunk.limits.updates, 0);
    assert!(shrunk.limits.jobs >= 1, "a timeout needs at least one job");

    // The shrunk repro reproduces the same violation, deterministically.
    let again = run_seed(shrunk.seed, shrunk.faults, &shrunk.limits, &suite);
    assert_eq!(again, shrunk.violations);
    let cmd = repro_command(shrunk.seed, shrunk.faults, &shrunk.limits, true);
    assert!(cmd.contains(&format!("--seed {}", shrunk.seed)), "{cmd}");
    assert!(cmd.ends_with("--mutate"), "{cmd}");
    let rendered = report.render();
    assert!(rendered.contains("repro: xcbc soak --seed"), "{rendered}");
}
