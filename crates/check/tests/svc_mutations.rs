//! Self-tests for the service invariants: each deliberate `xcbcd`
//! mutation must be caught by exactly the invariant built to see it,
//! shrink to a deterministic repro, and carry the mutation flag through
//! to the repro command (so the shrunk scenario replays mutated).

use xcbc_check::{default_invariants, repro_command, run_seed, soak, ScenarioLimits, SoakConfig};
use xcbc_svc::SvcMutation;

fn mutated_config(mutation: SvcMutation) -> SoakConfig {
    SoakConfig {
        seeds: 10,
        start_seed: 0,
        faults: true,
        shrink: true,
        limits: ScenarioLimits {
            sites: 1,
            fault_specs: 2,
            jobs: 8,
            updates: 1,
            campaign_mutation: None,
            elastic_mutation: None,
            svc_mutation: Some(mutation),
        },
        mutate: false,
    }
}

#[test]
fn drop_journal_entry_mutation_is_caught_and_shrunk() {
    let suite = default_invariants();
    let config = mutated_config(SvcMutation::DropJournalEntry);
    let report = soak(&config, &suite);
    let failure = report
        .failure
        .as_ref()
        .expect("a dropped journal entry must break replay within 10 seeds");
    assert!(
        failure
            .violations
            .iter()
            .any(|v| v.invariant == "svc.replay"),
        "expected svc.replay, got:\n{}",
        report.render()
    );

    let shrunk = failure.shrink.as_ref().expect("shrink was enabled");
    // The mutation rides through shrinking: the minimal scenario is
    // still mutated, so the repro still fires.
    assert_eq!(
        shrunk.limits.svc_mutation,
        Some(SvcMutation::DropJournalEntry)
    );
    let again = run_seed(shrunk.seed, shrunk.faults, &shrunk.limits, &suite);
    assert_eq!(
        again, shrunk.violations,
        "shrunk repro must be deterministic"
    );

    let cmd = repro_command(shrunk.seed, shrunk.faults, &shrunk.limits, false);
    assert!(cmd.contains("--svc-mutation drop-journal-entry"), "{cmd}");
}

#[test]
fn leak_quota_mutation_is_caught_and_shrunk() {
    let suite = default_invariants();
    let config = mutated_config(SvcMutation::LeakQuota);
    let report = soak(&config, &suite);
    let failure = report
        .failure
        .as_ref()
        .expect("an admission past an empty bucket must be caught within 10 seeds");
    assert!(
        failure
            .violations
            .iter()
            .any(|v| v.invariant == "svc.admission"),
        "expected svc.admission, got:\n{}",
        report.render()
    );

    let shrunk = failure.shrink.as_ref().expect("shrink was enabled");
    assert_eq!(shrunk.limits.svc_mutation, Some(SvcMutation::LeakQuota));
    let again = run_seed(shrunk.seed, shrunk.faults, &shrunk.limits, &suite);
    assert_eq!(
        again, shrunk.violations,
        "shrunk repro must be deterministic"
    );

    let cmd = repro_command(shrunk.seed, shrunk.faults, &shrunk.limits, false);
    assert!(cmd.contains("--svc-mutation leak-quota"), "{cmd}");
}
