//! Self-tests for the elastic invariants: each deliberate elastic
//! mutation must be caught by exactly the invariant built to see it,
//! shrink to a deterministic repro, and carry the mutation flag through
//! to the repro command (so the shrunk scenario replays mutated).

use xcbc_check::{default_invariants, repro_command, run_seed, soak, ScenarioLimits, SoakConfig};
use xcbc_core::elastic::ElasticMutation;

fn mutated_config(mutation: ElasticMutation, seeds: u64) -> SoakConfig {
    SoakConfig {
        seeds,
        start_seed: 0,
        faults: true,
        shrink: true,
        limits: ScenarioLimits {
            sites: 1,
            fault_specs: 2,
            jobs: 4,
            updates: 1,
            campaign_mutation: None,
            elastic_mutation: Some(mutation),
            svc_mutation: None,
        },
        mutate: false,
    }
}

#[test]
fn drop_job_mutation_is_caught_and_shrunk() {
    let suite = default_invariants();
    // Needs a scale-down drain to catch a *running* job, which only
    // some seeds' workloads produce — give the soak a wider window.
    let config = mutated_config(ElasticMutation::DropJobOnScaleDown, 20);
    let report = soak(&config, &suite);
    let failure = report
        .failure
        .as_ref()
        .expect("a scale-down drain must drop a running job within 20 seeds");
    assert!(
        failure
            .violations
            .iter()
            .any(|v| v.invariant == "elastic.no-job-lost"),
        "expected elastic.no-job-lost, got:\n{}",
        report.render()
    );

    let shrunk = failure.shrink.as_ref().expect("shrink was enabled");
    // The mutation rides through shrinking: the minimal scenario is
    // still mutated, so the repro still fires.
    assert_eq!(
        shrunk.limits.elastic_mutation,
        Some(ElasticMutation::DropJobOnScaleDown)
    );
    let again = run_seed(shrunk.seed, shrunk.faults, &shrunk.limits, &suite);
    assert_eq!(
        again, shrunk.violations,
        "shrunk repro must be deterministic"
    );

    let cmd = repro_command(shrunk.seed, shrunk.faults, &shrunk.limits, false);
    assert!(cmd.contains("--elastic-mutation drop-job"), "{cmd}");
}

#[test]
fn skip_scale_up_mutation_is_caught_and_shrunk() {
    let suite = default_invariants();
    // Suppressed scale-ups diverge from the policy replay as soon as
    // queue pressure persists for the up-streak — nearly every seed.
    let config = mutated_config(ElasticMutation::SkipScaleUp, 10);
    let report = soak(&config, &suite);
    let failure = report
        .failure
        .as_ref()
        .expect("a suppressed scale-up must diverge from the policy replay");
    assert!(
        failure
            .violations
            .iter()
            .any(|v| v.invariant == "elastic.converges"),
        "expected elastic.converges, got:\n{}",
        report.render()
    );

    let shrunk = failure.shrink.as_ref().expect("shrink was enabled");
    assert_eq!(
        shrunk.limits.elastic_mutation,
        Some(ElasticMutation::SkipScaleUp)
    );
    let again = run_seed(shrunk.seed, shrunk.faults, &shrunk.limits, &suite);
    assert_eq!(
        again, shrunk.violations,
        "shrunk repro must be deterministic"
    );

    let cmd = repro_command(shrunk.seed, shrunk.faults, &shrunk.limits, false);
    assert!(cmd.contains("--elastic-mutation skip-scale-up"), "{cmd}");
}

#[test]
fn unmutated_elastic_invariants_hold_over_faulted_seeds() {
    let suite = default_invariants();
    let config = SoakConfig {
        seeds: 5,
        start_seed: 0,
        faults: true,
        shrink: false,
        limits: ScenarioLimits::default(),
        mutate: false,
    };
    let report = soak(&config, &suite);
    assert!(report.passed(), "{}", report.render());
}
