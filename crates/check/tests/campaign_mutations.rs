//! Self-tests for the campaign invariants: each deliberate campaign
//! mutation must be caught by exactly the invariant built to see it,
//! shrink to a deterministic repro, and carry the mutation flag through
//! to the repro command (so the shrunk scenario replays mutated).

use xcbc_check::{default_invariants, repro_command, run_seed, soak, ScenarioLimits, SoakConfig};
use xcbc_core::campaign::CampaignMutation;

fn mutated_config(mutation: CampaignMutation) -> SoakConfig {
    SoakConfig {
        seeds: 10,
        start_seed: 0,
        faults: true,
        shrink: true,
        limits: ScenarioLimits {
            sites: 1,
            fault_specs: 2,
            jobs: 4,
            updates: 1,
            campaign_mutation: Some(mutation),
        },
        mutate: false,
    }
}

#[test]
fn drop_job_mutation_is_caught_and_shrunk() {
    let suite = default_invariants();
    let config = mutated_config(CampaignMutation::DropJobOnDrain);
    let report = soak(&config, &suite);
    let failure = report
        .failure
        .as_ref()
        .expect("a drain must drop a running job within 10 seeds");
    assert!(
        failure
            .violations
            .iter()
            .any(|v| v.invariant == "campaign.no-job-lost"),
        "expected campaign.no-job-lost, got:\n{}",
        report.render()
    );

    let shrunk = failure.shrink.as_ref().expect("shrink was enabled");
    // The mutation rides through shrinking: the minimal scenario is
    // still mutated, so the repro still fires.
    assert_eq!(
        shrunk.limits.campaign_mutation,
        Some(CampaignMutation::DropJobOnDrain)
    );
    let again = run_seed(shrunk.seed, shrunk.faults, &shrunk.limits, &suite);
    assert_eq!(
        again, shrunk.violations,
        "shrunk repro must be deterministic"
    );

    let cmd = repro_command(shrunk.seed, shrunk.faults, &shrunk.limits, false);
    assert!(cmd.contains("--campaign-mutation drop-job"), "{cmd}");
}

#[test]
fn skip_skew_mutation_is_caught_and_shrunk() {
    let suite = default_invariants();
    let config = mutated_config(CampaignMutation::SkipSkewSolve);
    let report = soak(&config, &suite);
    let failure = report
        .failure
        .as_ref()
        .expect("a committed wave without a skew probe must be caught");
    assert!(
        failure
            .violations
            .iter()
            .any(|v| v.invariant == "campaign.converges"),
        "expected campaign.converges, got:\n{}",
        report.render()
    );

    let shrunk = failure.shrink.as_ref().expect("shrink was enabled");
    assert_eq!(
        shrunk.limits.campaign_mutation,
        Some(CampaignMutation::SkipSkewSolve)
    );
    let again = run_seed(shrunk.seed, shrunk.faults, &shrunk.limits, &suite);
    assert_eq!(
        again, shrunk.violations,
        "shrunk repro must be deterministic"
    );

    let cmd = repro_command(shrunk.seed, shrunk.faults, &shrunk.limits, false);
    assert!(cmd.contains("--campaign-mutation skip-skew"), "{cmd}");
}

#[test]
fn unmutated_campaign_invariants_hold_over_faulted_seeds() {
    let suite = default_invariants();
    let config = SoakConfig {
        seeds: 5,
        start_seed: 0,
        faults: true,
        shrink: false,
        limits: ScenarioLimits::default(),
        mutate: false,
    };
    let report = soak(&config, &suite);
    assert!(report.passed(), "{}", report.render());
}
