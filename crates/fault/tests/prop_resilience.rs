//! Property tests for the resilience primitives: retry loops always
//! terminate inside their attempt/backoff budgets, backoff grows
//! monotonically, and everything seeded is bit-reproducible.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use xcbc_fault::{retry_with, FaultPlan, InjectionPoint, RetryPolicy};

fn policy(
    max_attempts: u32,
    base_delay_s: f64,
    multiplier: f64,
    max_delay_s: f64,
    jitter: f64,
    budget_s: f64,
) -> RetryPolicy {
    RetryPolicy {
        max_attempts,
        base_delay_s,
        multiplier,
        max_delay_s,
        jitter,
        budget_s,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A retried operation always terminates within the attempt budget,
    /// and the backoff it charges never exceeds either the backoff
    /// budget or the analytic bound.
    #[test]
    fn retry_terminates_within_budget(
        seed in any::<u64>(),
        max_attempts in 1u32..12,
        base in 0.01f64..20.0,
        multiplier in 1.0f64..4.0,
        cap in 0.01f64..200.0,
        jitter in 0.0f64..0.9,
        budget in 0.0f64..300.0,
        fail_first in 0u32..16,
    ) {
        let p = policy(max_attempts, base, multiplier, cap, jitter, budget);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut calls = 0u32;
        let out = retry_with(&p, &mut rng, |attempt| {
            calls += 1;
            if attempt <= fail_first { Err("injected") } else { Ok(attempt) }
        });
        prop_assert!(out.attempts >= 1);
        prop_assert!(out.attempts <= max_attempts);
        prop_assert_eq!(calls, out.attempts);
        prop_assert!(out.backoff_s <= budget + 1e-9, "{} > {}", out.backoff_s, budget);
        prop_assert!(
            out.backoff_s <= p.total_backoff_bound_s() + 1e-9,
            "{} > bound {}",
            out.backoff_s,
            p.total_backoff_bound_s()
        );
        if out.succeeded() {
            prop_assert_eq!(out.attempts, fail_first + 1);
        }
    }

    /// Nominal per-failure delay is monotone non-decreasing in the
    /// failure number, and cumulative backoff is monotone in how many
    /// failures actually happen (same policy, same jitter seed).
    #[test]
    fn backoff_monotone_in_attempts(
        seed in any::<u64>(),
        max_attempts in 2u32..12,
        base in 0.01f64..20.0,
        multiplier in 1.0f64..4.0,
        jitter in 0.0f64..0.5,
        k in 0u32..10,
    ) {
        let p = policy(max_attempts, base, multiplier, 1e6, jitter, 1e9);
        for failure in 1..max_attempts {
            prop_assert!(p.nominal_delay_s(failure) <= p.nominal_delay_s(failure + 1) + 1e-12);
        }
        let backoff_after = |failures: u32| {
            let mut rng = StdRng::seed_from_u64(seed);
            retry_with(&p, &mut rng, |attempt| {
                if attempt <= failures { Err(()) } else { Ok(()) }
            })
            .backoff_s
        };
        let fewer = k.min(max_attempts);
        let more = (k + 1).min(max_attempts);
        prop_assert!(backoff_after(fewer) <= backoff_after(more) + 1e-12);
    }

    /// Identical seeds give byte-identical retry schedules and fault
    /// decisions; the whole layer is reproducible from (plan, seed).
    #[test]
    fn identical_seeds_identical_schedules(
        seed in any::<u64>(),
        rate in 0.0f64..1.0,
        probes in 1usize..40,
    ) {
        let run = || {
            let plan = FaultPlan::new(seed).with_rate(InjectionPoint::MirrorFetch, rate);
            let mut injector = plan.injector();
            let decisions: Vec<Option<_>> = (0..probes)
                .map(|i| injector.should_fault(InjectionPoint::MirrorFetch, &format!("m{i}")))
                .collect();
            let mut rng = injector.rng_for("schedule");
            let out = retry_with(&RetryPolicy::default(), &mut rng, |_| Err::<(), _>(()));
            (decisions, format!("{:.12}", out.backoff_s), injector.injected_count())
        };
        prop_assert_eq!(run(), run());
    }
}
