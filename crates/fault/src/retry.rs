//! Retry with exponential backoff, seeded jitter, and a delay budget.
//!
//! Real cluster provisioning treats mirror fetches and node discovery as
//! retryable: yum walks its mirror list with per-mirror retries, and
//! insert-ethers happily waits through several DHCP timeouts. The
//! simulation mirrors that, and — because everything here is virtual
//! time — backoff "delays" are numbers the caller charges to the install
//! `Timeline` rather than actual sleeps.

use rand::rngs::StdRng;
use rand::Rng;

/// Backoff configuration for one class of operation.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). At least 1.
    pub max_attempts: u32,
    /// Delay after the first failure, seconds.
    pub base_delay_s: f64,
    /// Multiplier per subsequent failure (>= 1).
    pub multiplier: f64,
    /// Cap on any single delay, seconds.
    pub max_delay_s: f64,
    /// Multiplicative jitter amplitude in [0, 1): each delay is scaled by
    /// a factor drawn uniformly from `1-jitter ..= 1+jitter`.
    pub jitter: f64,
    /// Total backoff budget, seconds: once cumulative backoff would
    /// exceed this, the operation gives up even with attempts left.
    pub budget_s: f64,
}

impl Default for RetryPolicy {
    /// yum-flavored default: 3 attempts, 2 s first backoff, doubling,
    /// 30 s cap, 10% jitter, 120 s budget.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_delay_s: 2.0,
            multiplier: 2.0,
            max_delay_s: 30.0,
            jitter: 0.1,
            budget_s: 120.0,
        }
    }
}

impl RetryPolicy {
    pub fn new(max_attempts: u32, base_delay_s: f64) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base_delay_s: base_delay_s.max(0.0),
            ..RetryPolicy::default()
        }
    }

    /// No retries at all — the pre-resilience one-shot behavior.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// A patient policy for slow hardware paths (node boot, PXE).
    pub fn patient() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_delay_s: 10.0,
            multiplier: 2.0,
            max_delay_s: 120.0,
            jitter: 0.1,
            budget_s: 600.0,
        }
    }

    /// The deterministic (jitter-free) delay after failure number
    /// `failure` (1-based): `base * multiplier^(failure-1)`, capped.
    pub fn nominal_delay_s(&self, failure: u32) -> f64 {
        if failure == 0 {
            return 0.0;
        }
        let exp = (failure - 1).min(63);
        (self.base_delay_s * self.multiplier.powi(exp as i32)).min(self.max_delay_s)
    }

    /// Jittered delay after failure number `failure`, drawn from `rng`.
    pub fn delay_s(&self, failure: u32, rng: &mut StdRng) -> f64 {
        let nominal = self.nominal_delay_s(failure);
        if self.jitter <= 0.0 || nominal == 0.0 {
            return nominal;
        }
        let factor = rng.gen_range((1.0 - self.jitter)..(1.0 + self.jitter));
        (nominal * factor).min(self.max_delay_s)
    }

    /// Upper bound on total backoff across all allowed failures (with
    /// maximal jitter) — used by property tests and budget planning.
    pub fn total_backoff_bound_s(&self) -> f64 {
        let sum: f64 = (1..self.max_attempts)
            .map(|i| self.nominal_delay_s(i))
            .sum();
        (sum * (1.0 + self.jitter)).min(self.budget_s)
    }
}

/// What happened across the attempts of one retried operation.
#[derive(Debug, Clone)]
pub struct RetryOutcome<T, E> {
    /// `Ok` from the first successful attempt, or the error from the
    /// last attempt made.
    pub result: Result<T, E>,
    /// Attempts actually made (1..=max_attempts).
    pub attempts: u32,
    /// Total backoff charged, seconds (excludes the operations' own
    /// simulated durations — callers track those).
    pub backoff_s: f64,
    /// True when the policy stopped retrying because the backoff budget
    /// was exhausted before `max_attempts`.
    pub budget_exhausted: bool,
}

impl<T, E> RetryOutcome<T, E> {
    pub fn succeeded(&self) -> bool {
        self.result.is_ok()
    }

    /// Retries beyond the first attempt (what the post-mortem counts).
    pub fn retries(&self) -> u32 {
        self.attempts.saturating_sub(1)
    }
}

/// Run `op` under `policy`. `op` receives the 1-based attempt number.
/// `rng` drives jitter only; pass a seeded RNG (e.g.
/// [`crate::FaultInjector::rng_for`]) for reproducible schedules.
pub fn retry_with<T, E>(
    policy: &RetryPolicy,
    rng: &mut StdRng,
    mut op: impl FnMut(u32) -> Result<T, E>,
) -> RetryOutcome<T, E> {
    let max_attempts = policy.max_attempts.max(1);
    let mut backoff_s = 0.0;
    let mut attempts = 0;
    loop {
        attempts += 1;
        match op(attempts) {
            Ok(v) => {
                return RetryOutcome {
                    result: Ok(v),
                    attempts,
                    backoff_s,
                    budget_exhausted: false,
                }
            }
            Err(e) => {
                if attempts >= max_attempts {
                    return RetryOutcome {
                        result: Err(e),
                        attempts,
                        backoff_s,
                        budget_exhausted: false,
                    };
                }
                let delay = policy.delay_s(attempts, rng);
                if backoff_s + delay > policy.budget_s {
                    return RetryOutcome {
                        result: Err(e),
                        attempts,
                        backoff_s,
                        budget_exhausted: true,
                    };
                }
                backoff_s += delay;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn first_try_success_has_no_backoff() {
        let out = retry_with(&RetryPolicy::default(), &mut rng(), |_| Ok::<_, ()>(5));
        assert_eq!(out.result, Ok(5));
        assert_eq!(out.attempts, 1);
        assert_eq!(out.backoff_s, 0.0);
        assert_eq!(out.retries(), 0);
    }

    #[test]
    fn transient_failure_recovers_with_backoff_charged() {
        let out = retry_with(&RetryPolicy::default(), &mut rng(), |attempt| {
            if attempt < 3 {
                Err("flaky")
            } else {
                Ok("served")
            }
        });
        assert_eq!(out.result, Ok("served"));
        assert_eq!(out.attempts, 3);
        // two failures: ~2s + ~4s with 10% jitter
        assert!(
            out.backoff_s > 5.0 && out.backoff_s < 7.0,
            "{}",
            out.backoff_s
        );
    }

    #[test]
    fn gives_up_at_max_attempts() {
        let mut calls = 0;
        let out = retry_with(&RetryPolicy::new(4, 1.0), &mut rng(), |_| {
            calls += 1;
            Err::<(), _>("down")
        });
        assert_eq!(out.result, Err("down"));
        assert_eq!(out.attempts, 4);
        assert_eq!(calls, 4);
        assert!(!out.budget_exhausted);
    }

    #[test]
    fn budget_stops_retries_early() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base_delay_s: 50.0,
            multiplier: 2.0,
            max_delay_s: 1000.0,
            jitter: 0.0,
            budget_s: 120.0,
        };
        let out = retry_with(&policy, &mut rng(), |_| Err::<(), _>("down"));
        // 50 + 100 would exceed 120, so exactly one backoff is charged.
        assert_eq!(out.attempts, 2);
        assert_eq!(out.backoff_s, 50.0);
        assert!(out.budget_exhausted);
    }

    #[test]
    fn nominal_delays_grow_and_cap() {
        let p = RetryPolicy::default();
        assert_eq!(p.nominal_delay_s(1), 2.0);
        assert_eq!(p.nominal_delay_s(2), 4.0);
        assert_eq!(p.nominal_delay_s(10), 30.0, "capped at max_delay_s");
    }

    #[test]
    fn zero_attempt_policy_clamped_to_one() {
        let out = retry_with(&RetryPolicy::new(0, 1.0), &mut rng(), |_| Err::<(), _>("x"));
        assert_eq!(out.attempts, 1);
    }

    #[test]
    fn same_seed_same_backoff_schedule() {
        let policy = RetryPolicy::default();
        let run = || {
            let mut r = StdRng::seed_from_u64(4242);
            retry_with(&policy, &mut r, |_| Err::<(), _>("down")).backoff_s
        };
        assert_eq!(run(), run());
    }
}
