//! `xcbc-fault` — the resilience layer of the XCBC/XNIT reproduction.
//!
//! The paper's own evaluation hits the failure class this crate models:
//! Table 5's footnote reports that LittleFe's Rmax had to be *estimated*
//! "due to a hardware failure prior to Linpack", and the §3 bare-metal
//! install leans on flaky realities — PXE/DHCP discovery, yum mirror
//! fetches, RPM scriptlets — that production cluster management treats as
//! retryable, resumable operations.
//!
//! This crate provides the four pieces the provisioning pipeline shares:
//!
//! * [`FaultPlan`] / [`FaultInjector`] — a *deterministic, seeded*
//!   schedule of faults at named [`InjectionPoint`]s. A failure scenario
//!   is a value you can store, print, and replay; never an RNG accident.
//! * [`RetryPolicy`] / [`retry_with`] — exponential backoff with seeded
//!   jitter, bounded attempts, and a wall-clock budget. Backoff delays
//!   are returned so callers can charge them to an install `Timeline`.
//! * [`InstallCheckpoint`] — per-node provisioning progress
//!   (discovered → kickstarted → packages-committed) that survives a
//!   mid-install power loss so a re-run resumes instead of rewiping
//!   healthy nodes.
//! * [`PostMortem`] — the report section a degraded deployment emits:
//!   faults injected, retries spent, nodes quarantined, time lost to
//!   backoff.

pub mod checkpoint;
pub mod plan;
pub mod postmortem;
pub mod retry;

pub use checkpoint::{
    CampaignCheckpoint, CheckpointParseError, ElasticCheckpoint, InstallCheckpoint, NodeStage,
};
pub use plan::{
    key_matches, FaultEvent, FaultInjector, FaultKind, FaultPlan, FaultSpec, FaultWindow,
    InjectionPoint, PlanParseError,
};
pub use postmortem::PostMortem;
pub use retry::{retry_with, RetryOutcome, RetryPolicy};
