//! Install checkpoints: per-node provisioning progress that survives a
//! mid-install power loss.
//!
//! Rocks installs are long — a frontend install alone is ~10 minutes of
//! screens plus package commit, and each compute node reinstalls itself
//! from PXE. If the power fails halfway through, the expensive outcome is
//! rewiping nodes that had already committed their package set. The
//! checkpoint records the furthest stage each node reached so a re-run
//! can skip committed work.
//!
//! Stages are strictly ordered and [`InstallCheckpoint::record`] is
//! monotone: recording an earlier stage for a node never regresses it.
//! The text format round-trips via [`InstallCheckpoint::to_text`] /
//! [`InstallCheckpoint::parse`], standing in for the state file a real
//! frontend would keep under `/var/lib/`.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// How far a node got through provisioning, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NodeStage {
    /// Known to the install but nothing has happened yet.
    Pending,
    /// insert-ethers saw its DHCP request and assigned it a name/MAC.
    Discovered,
    /// A kickstart file was generated and served to it.
    Kickstarted,
    /// Its RPM transaction committed; the node is fully installed.
    PackagesCommitted,
}

impl NodeStage {
    pub const ALL: [NodeStage; 4] = [
        NodeStage::Pending,
        NodeStage::Discovered,
        NodeStage::Kickstarted,
        NodeStage::PackagesCommitted,
    ];

    pub fn as_str(&self) -> &'static str {
        match self {
            NodeStage::Pending => "pending",
            NodeStage::Discovered => "discovered",
            NodeStage::Kickstarted => "kickstarted",
            NodeStage::PackagesCommitted => "packages-committed",
        }
    }

    pub fn parse(s: &str) -> Option<NodeStage> {
        NodeStage::ALL.iter().copied().find(|st| st.as_str() == s)
    }
}

impl fmt::Display for NodeStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Errors from [`InstallCheckpoint::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct CheckpointParseError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for CheckpointParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "checkpoint line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CheckpointParseError {}

/// Durable record of install progress for one cluster.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InstallCheckpoint {
    /// The frontend finished its screens + package commit.
    frontend_committed: bool,
    /// Furthest stage reached per node, keyed by node name.
    stages: BTreeMap<String, NodeStage>,
    /// Nodes pulled from the install with the reason, keyed by node name.
    quarantined: BTreeMap<String, String>,
}

impl InstallCheckpoint {
    pub fn new() -> Self {
        InstallCheckpoint::default()
    }

    pub fn frontend_committed(&self) -> bool {
        self.frontend_committed
    }

    pub fn mark_frontend_committed(&mut self) {
        self.frontend_committed = true;
    }

    /// Record that `node` reached `stage`. Monotone: an earlier stage
    /// never overwrites a later one, so replaying a resumed install's
    /// early steps cannot regress the checkpoint.
    pub fn record(&mut self, node: &str, stage: NodeStage) {
        let entry = self
            .stages
            .entry(node.to_string())
            .or_insert(NodeStage::Pending);
        if stage > *entry {
            *entry = stage;
        }
    }

    /// Furthest stage `node` is known to have reached.
    pub fn stage(&self, node: &str) -> NodeStage {
        self.stages.get(node).copied().unwrap_or(NodeStage::Pending)
    }

    /// True when `node`'s package transaction committed.
    pub fn is_committed(&self, node: &str) -> bool {
        self.stage(node) == NodeStage::PackagesCommitted
    }

    /// Names of all fully installed nodes, sorted.
    pub fn committed_nodes(&self) -> Vec<&str> {
        self.stages
            .iter()
            .filter(|(_, st)| **st == NodeStage::PackagesCommitted)
            .map(|(name, _)| name.as_str())
            .collect()
    }

    /// Pull `node` from the install, recording why.
    pub fn quarantine(&mut self, node: &str, reason: &str) {
        self.quarantined
            .insert(node.to_string(), reason.to_string());
    }

    pub fn is_quarantined(&self, node: &str) -> bool {
        self.quarantined.contains_key(node)
    }

    /// Quarantined nodes with reasons, sorted by name.
    pub fn quarantined(&self) -> impl Iterator<Item = (&str, &str)> {
        self.quarantined
            .iter()
            .map(|(n, r)| (n.as_str(), r.as_str()))
    }

    pub fn quarantined_count(&self) -> usize {
        self.quarantined.len()
    }

    /// All tracked nodes and their stages, sorted by name.
    pub fn nodes(&self) -> impl Iterator<Item = (&str, NodeStage)> {
        self.stages.iter().map(|(n, st)| (n.as_str(), *st))
    }

    pub fn is_empty(&self) -> bool {
        !self.frontend_committed && self.stages.is_empty() && self.quarantined.is_empty()
    }

    /// Serialize to the line-oriented state-file format:
    ///
    /// ```text
    /// frontend committed
    /// node compute-0-0 packages-committed
    /// quarantine compute-0-3 node.boot: retry budget exhausted
    /// ```
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        if self.frontend_committed {
            out.push_str("frontend committed\n");
        }
        for (name, stage) in &self.stages {
            out.push_str(&format!("node {name} {stage}\n"));
        }
        for (name, reason) in &self.quarantined {
            out.push_str(&format!("quarantine {name} {reason}\n"));
        }
        out
    }

    /// Parse the [`to_text`](Self::to_text) format. Blank lines and
    /// `#` comments are ignored.
    pub fn parse(text: &str) -> Result<InstallCheckpoint, CheckpointParseError> {
        let mut cp = InstallCheckpoint::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |message: String| CheckpointParseError {
                line: idx + 1,
                message,
            };
            let mut words = line.splitn(3, ' ');
            match words.next() {
                Some("frontend") => {
                    if words.next() != Some("committed") {
                        return Err(err(format!("expected `frontend committed`, got `{line}`")));
                    }
                    cp.frontend_committed = true;
                }
                Some("node") => {
                    let name = words
                        .next()
                        .ok_or_else(|| err("missing node name".into()))?;
                    // Forward compatibility: only the first token after the
                    // name is the stage; later writers may append fields.
                    let stage_s = words
                        .next()
                        .and_then(|rest| rest.split_whitespace().next())
                        .ok_or_else(|| err("missing node stage".into()))?;
                    let stage = NodeStage::parse(stage_s)
                        .ok_or_else(|| err(format!("unknown stage `{stage_s}`")))?;
                    cp.record(name, stage);
                }
                Some("quarantine") => {
                    let name = words
                        .next()
                        .ok_or_else(|| err("missing node name".into()))?;
                    let reason = words.next().unwrap_or("").to_string();
                    cp.quarantined.insert(name.to_string(), reason);
                }
                Some(other) => {
                    return Err(err(format!("unknown directive `{other}`")));
                }
                None => unreachable!("splitn yields at least one item"),
            }
        }
        Ok(cp)
    }
}

/// Durable record of a rolling update campaign's progress: which waves
/// completed, which nodes committed their update, and which nodes were
/// given up on (retry budget exhausted) with the reason.
///
/// Like [`InstallCheckpoint`], the format is line-oriented text and the
/// recorders are monotone, so replaying a resumed campaign's early waves
/// cannot regress the file. The `digest` line identifies the campaign
/// (target package set + cohort layout) so a resume can refuse to pick
/// up a checkpoint written by a different campaign.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignCheckpoint {
    /// Stable digest of the campaign definition this file belongs to.
    digest: String,
    /// Waves `0..waves_completed` finished (drain + update + skew probe).
    waves_completed: usize,
    /// Nodes whose update transaction committed.
    updated: BTreeSet<String>,
    /// Nodes the campaign gave up on, with the reason.
    failed: BTreeMap<String, String>,
}

impl CampaignCheckpoint {
    pub fn new(digest: &str) -> Self {
        CampaignCheckpoint {
            digest: digest.to_string(),
            ..CampaignCheckpoint::default()
        }
    }

    /// The campaign-definition digest this checkpoint belongs to.
    pub fn digest(&self) -> &str {
        &self.digest
    }

    /// Number of fully completed waves (waves `0..n` are done).
    pub fn waves_completed(&self) -> usize {
        self.waves_completed
    }

    /// Record that wave `wave_index` (0-based) completed. Monotone:
    /// recording an earlier wave never regresses the counter.
    pub fn mark_wave_completed(&mut self, wave_index: usize) {
        self.waves_completed = self.waves_completed.max(wave_index + 1);
    }

    /// Record that `node`'s update transaction committed.
    pub fn record_updated(&mut self, node: &str) {
        self.updated.insert(node.to_string());
    }

    pub fn is_updated(&self, node: &str) -> bool {
        self.updated.contains(node)
    }

    /// Names of all updated nodes, sorted.
    pub fn updated_nodes(&self) -> impl Iterator<Item = &str> {
        self.updated.iter().map(String::as_str)
    }

    /// Give up on `node`, recording why.
    pub fn record_failed(&mut self, node: &str, reason: &str) {
        self.failed.insert(node.to_string(), reason.to_string());
    }

    pub fn is_failed(&self, node: &str) -> bool {
        self.failed.contains_key(node)
    }

    /// Failed nodes with reasons, sorted by name.
    pub fn failed(&self) -> impl Iterator<Item = (&str, &str)> {
        self.failed.iter().map(|(n, r)| (n.as_str(), r.as_str()))
    }

    pub fn failed_count(&self) -> usize {
        self.failed.len()
    }

    pub fn is_empty(&self) -> bool {
        self.waves_completed == 0 && self.updated.is_empty() && self.failed.is_empty()
    }

    /// Serialize to the line-oriented state-file format:
    ///
    /// ```text
    /// campaign 4f2a9c01d3e8b576
    /// waves-completed 2
    /// updated compute-0-0
    /// failed compute-0-3 rpm.scriptlet: retry budget exhausted
    /// ```
    pub fn to_text(&self) -> String {
        let mut out = format!("campaign {}\n", self.digest);
        out.push_str(&format!("waves-completed {}\n", self.waves_completed));
        for name in &self.updated {
            out.push_str(&format!("updated {name}\n"));
        }
        for (name, reason) in &self.failed {
            out.push_str(&format!("failed {name} {reason}\n"));
        }
        out
    }

    /// Parse the [`to_text`](Self::to_text) format. Blank lines and `#`
    /// comments are ignored; unknown *trailing fields* on recognized
    /// directives are tolerated (forward compatibility), but unknown
    /// directives fail with a typed [`CheckpointParseError`].
    pub fn parse(text: &str) -> Result<CampaignCheckpoint, CheckpointParseError> {
        let mut cp = CampaignCheckpoint::default();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |message: String| CheckpointParseError {
                line: idx + 1,
                message,
            };
            let mut words = line.splitn(3, ' ');
            match words.next() {
                Some("campaign") => {
                    cp.digest = words
                        .next()
                        .ok_or_else(|| err("missing campaign digest".into()))?
                        .to_string();
                }
                Some("waves-completed") => {
                    let n = words
                        .next()
                        .ok_or_else(|| err("missing wave count".into()))?;
                    cp.waves_completed = cp.waves_completed.max(
                        n.parse()
                            .map_err(|_| err(format!("bad wave count `{n}`")))?,
                    );
                }
                Some("updated") => {
                    let name = words
                        .next()
                        .ok_or_else(|| err("missing node name".into()))?;
                    cp.updated.insert(name.to_string());
                }
                Some("failed") => {
                    let name = words
                        .next()
                        .ok_or_else(|| err("missing node name".into()))?;
                    let reason = words.next().unwrap_or("").to_string();
                    cp.failed.insert(name.to_string(), reason);
                }
                Some(other) => {
                    return Err(err(format!("unknown directive `{other}`")));
                }
                None => unreachable!("splitn yields at least one item"),
            }
        }
        Ok(cp)
    }
}

/// Durable record of an elastic fleet run's progress: how many
/// autoscaler ticks completed before an abort.
///
/// The heavyweight live state (scheduler, power sequencer, node DBs) is
/// caller-held, exactly as campaigns hold their node DBs across an
/// abort; the checkpoint only pins where the tick loop restarts. Like
/// the other checkpoints the format is line-oriented text, the recorder
/// is monotone, and the `digest` line lets a resume refuse a checkpoint
/// written by a different elastic run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ElasticCheckpoint {
    /// Stable digest of the elastic run definition this file belongs to.
    digest: String,
    /// Ticks `0..ticks_completed` finished (decision + transitions).
    ticks_completed: usize,
}

impl ElasticCheckpoint {
    pub fn new(digest: &str) -> Self {
        ElasticCheckpoint {
            digest: digest.to_string(),
            ..ElasticCheckpoint::default()
        }
    }

    /// The run-definition digest this checkpoint belongs to.
    pub fn digest(&self) -> &str {
        &self.digest
    }

    /// Number of fully completed ticks (ticks `0..n` are done).
    pub fn ticks_completed(&self) -> usize {
        self.ticks_completed
    }

    /// Record that tick `tick_index` (0-based) completed. Monotone:
    /// recording an earlier tick never regresses the counter.
    pub fn mark_tick_completed(&mut self, tick_index: usize) {
        self.ticks_completed = self.ticks_completed.max(tick_index + 1);
    }

    pub fn is_empty(&self) -> bool {
        self.ticks_completed == 0
    }

    /// Serialize to the line-oriented state-file format:
    ///
    /// ```text
    /// elastic 4f2a9c01d3e8b576
    /// ticks-completed 5
    /// ```
    pub fn to_text(&self) -> String {
        format!(
            "elastic {}\nticks-completed {}\n",
            self.digest, self.ticks_completed
        )
    }

    /// Parse the [`to_text`](Self::to_text) format. Blank lines and `#`
    /// comments are ignored; unknown *trailing fields* on recognized
    /// directives are tolerated (forward compatibility), but unknown
    /// directives fail with a typed [`CheckpointParseError`].
    pub fn parse(text: &str) -> Result<ElasticCheckpoint, CheckpointParseError> {
        let mut cp = ElasticCheckpoint::default();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |message: String| CheckpointParseError {
                line: idx + 1,
                message,
            };
            let mut words = line.splitn(3, ' ');
            match words.next() {
                Some("elastic") => {
                    cp.digest = words
                        .next()
                        .ok_or_else(|| err("missing elastic digest".into()))?
                        .to_string();
                }
                Some("ticks-completed") => {
                    let n = words
                        .next()
                        .ok_or_else(|| err("missing tick count".into()))?;
                    cp.ticks_completed = cp.ticks_completed.max(
                        n.parse()
                            .map_err(|_| err(format!("bad tick count `{n}`")))?,
                    );
                }
                Some(other) => {
                    return Err(err(format!("unknown directive `{other}`")));
                }
                None => unreachable!("splitn yields at least one item"),
            }
        }
        Ok(cp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_are_ordered() {
        assert!(NodeStage::Pending < NodeStage::Discovered);
        assert!(NodeStage::Discovered < NodeStage::Kickstarted);
        assert!(NodeStage::Kickstarted < NodeStage::PackagesCommitted);
    }

    #[test]
    fn record_is_monotone() {
        let mut cp = InstallCheckpoint::new();
        cp.record("compute-0-0", NodeStage::Kickstarted);
        cp.record("compute-0-0", NodeStage::Discovered);
        assert_eq!(cp.stage("compute-0-0"), NodeStage::Kickstarted);
        cp.record("compute-0-0", NodeStage::PackagesCommitted);
        assert!(cp.is_committed("compute-0-0"));
    }

    #[test]
    fn unknown_node_is_pending() {
        let cp = InstallCheckpoint::new();
        assert_eq!(cp.stage("compute-9-9"), NodeStage::Pending);
        assert!(!cp.is_committed("compute-9-9"));
    }

    #[test]
    fn committed_nodes_sorted() {
        let mut cp = InstallCheckpoint::new();
        cp.record("compute-0-1", NodeStage::PackagesCommitted);
        cp.record("compute-0-0", NodeStage::PackagesCommitted);
        cp.record("compute-0-2", NodeStage::Kickstarted);
        assert_eq!(cp.committed_nodes(), vec!["compute-0-0", "compute-0-1"]);
    }

    #[test]
    fn quarantine_tracked_with_reason() {
        let mut cp = InstallCheckpoint::new();
        cp.quarantine("compute-0-3", "node.boot: retry budget exhausted");
        assert!(cp.is_quarantined("compute-0-3"));
        assert_eq!(cp.quarantined_count(), 1);
        let q: Vec<_> = cp.quarantined().collect();
        assert_eq!(
            q,
            vec![("compute-0-3", "node.boot: retry budget exhausted")]
        );
    }

    #[test]
    fn text_round_trip() {
        let mut cp = InstallCheckpoint::new();
        cp.mark_frontend_committed();
        cp.record("compute-0-0", NodeStage::PackagesCommitted);
        cp.record("compute-0-1", NodeStage::Discovered);
        cp.quarantine("compute-0-2", "rpm.scriptlet: transaction rolled back");
        let text = cp.to_text();
        let parsed = InstallCheckpoint::parse(&text).unwrap();
        assert_eq!(parsed, cp);
    }

    #[test]
    fn parse_ignores_comments_and_blanks() {
        let cp = InstallCheckpoint::parse(
            "# resumed 2016-07-12\n\nfrontend committed\nnode compute-0-0 kickstarted\n",
        )
        .unwrap();
        assert!(cp.frontend_committed());
        assert_eq!(cp.stage("compute-0-0"), NodeStage::Kickstarted);
    }

    #[test]
    fn parse_rejects_garbage() {
        let err = InstallCheckpoint::parse("node compute-0-0 warp-speed").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("warp-speed"));
        assert!(InstallCheckpoint::parse("reboot now").is_err());
        assert!(InstallCheckpoint::parse("frontend exploded").is_err());
    }

    #[test]
    fn empty_checkpoint_is_empty() {
        assert!(InstallCheckpoint::new().is_empty());
        assert!(InstallCheckpoint::parse("").unwrap().is_empty());
    }

    #[test]
    fn install_parse_tolerates_unknown_trailing_fields() {
        // A future writer may append fields after the stage; old parsers
        // must still read the part they understand.
        let cp = InstallCheckpoint::parse(
            "frontend committed at=2016-07-12\n\
             node compute-0-0 packages-committed epoch=3\n",
        )
        .unwrap();
        assert!(cp.frontend_committed());
        assert!(cp.is_committed("compute-0-0"));
        // Unknown *directives* are still a typed error, not silence.
        let err = InstallCheckpoint::parse("overlay xnit done").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("overlay"));
    }

    #[test]
    fn campaign_checkpoint_round_trip() {
        let mut cp = CampaignCheckpoint::new("4f2a9c01d3e8b576");
        cp.mark_wave_completed(0);
        cp.mark_wave_completed(1);
        cp.record_updated("compute-0-0");
        cp.record_updated("compute-0-1");
        cp.record_failed("compute-0-3", "rpm.scriptlet: retry budget exhausted");
        let parsed = CampaignCheckpoint::parse(&cp.to_text()).unwrap();
        assert_eq!(parsed, cp);
        assert_eq!(parsed.digest(), "4f2a9c01d3e8b576");
        assert_eq!(parsed.waves_completed(), 2);
        assert!(parsed.is_updated("compute-0-1"));
        assert!(parsed.is_failed("compute-0-3"));
        assert_eq!(parsed.failed_count(), 1);
    }

    #[test]
    fn campaign_recorders_are_monotone() {
        let mut cp = CampaignCheckpoint::new("d");
        cp.mark_wave_completed(3);
        cp.mark_wave_completed(1);
        assert_eq!(cp.waves_completed(), 4);
        assert!(!cp.is_empty());
        assert!(CampaignCheckpoint::new("d").is_empty());
    }

    #[test]
    fn campaign_parse_tolerates_unknown_trailing_fields() {
        let cp = CampaignCheckpoint::parse(
            "campaign abc123 schema=2\n\
             waves-completed 1 of=4\n\
             updated compute-0-0 at=wave:0\n\
             failed compute-0-2 canary: health check failed\n",
        )
        .unwrap();
        assert_eq!(cp.digest(), "abc123");
        assert_eq!(cp.waves_completed(), 1);
        assert!(cp.is_updated("compute-0-0"));
        let failed: Vec<_> = cp.failed().collect();
        assert_eq!(failed, vec![("compute-0-2", "canary: health check failed")]);
    }

    #[test]
    fn campaign_parse_rejects_garbage() {
        let err = CampaignCheckpoint::parse("rollback everything").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("rollback"));
        assert!(CampaignCheckpoint::parse("waves-completed many").is_err());
        assert!(CampaignCheckpoint::parse("updated").is_err());
        assert!(CampaignCheckpoint::parse("campaign").is_err());
    }

    #[test]
    fn campaign_comments_and_blanks_ignored() {
        let cp = CampaignCheckpoint::parse(
            "# resumed after power loss\n\ncampaign x\nwaves-completed 2\n",
        )
        .unwrap();
        assert_eq!(cp.waves_completed(), 2);
    }

    #[test]
    fn elastic_checkpoint_round_trip() {
        let mut cp = ElasticCheckpoint::new("4f2a9c01d3e8b576");
        cp.mark_tick_completed(0);
        cp.mark_tick_completed(4);
        let parsed = ElasticCheckpoint::parse(&cp.to_text()).unwrap();
        assert_eq!(parsed, cp);
        assert_eq!(parsed.digest(), "4f2a9c01d3e8b576");
        assert_eq!(parsed.ticks_completed(), 5);
    }

    #[test]
    fn elastic_recorder_is_monotone() {
        let mut cp = ElasticCheckpoint::new("d");
        cp.mark_tick_completed(3);
        cp.mark_tick_completed(1);
        assert_eq!(cp.ticks_completed(), 4);
        assert!(!cp.is_empty());
        assert!(ElasticCheckpoint::new("d").is_empty());
    }

    #[test]
    fn elastic_parse_tolerates_unknown_trailing_fields() {
        let cp = ElasticCheckpoint::parse(
            "# resumed after scale-up fault\n\nelastic abc123 schema=2\nticks-completed 3 of=12\n",
        )
        .unwrap();
        assert_eq!(cp.digest(), "abc123");
        assert_eq!(cp.ticks_completed(), 3);
    }

    #[test]
    fn elastic_parse_rejects_garbage() {
        let err = ElasticCheckpoint::parse("scale everything").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("scale"));
        assert!(ElasticCheckpoint::parse("ticks-completed many").is_err());
        assert!(ElasticCheckpoint::parse("elastic").is_err());
    }
}
