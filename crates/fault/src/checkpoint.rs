//! Install checkpoints: per-node provisioning progress that survives a
//! mid-install power loss.
//!
//! Rocks installs are long — a frontend install alone is ~10 minutes of
//! screens plus package commit, and each compute node reinstalls itself
//! from PXE. If the power fails halfway through, the expensive outcome is
//! rewiping nodes that had already committed their package set. The
//! checkpoint records the furthest stage each node reached so a re-run
//! can skip committed work.
//!
//! Stages are strictly ordered and [`InstallCheckpoint::record`] is
//! monotone: recording an earlier stage for a node never regresses it.
//! The text format round-trips via [`InstallCheckpoint::to_text`] /
//! [`InstallCheckpoint::parse`], standing in for the state file a real
//! frontend would keep under `/var/lib/`.

use std::collections::BTreeMap;
use std::fmt;

/// How far a node got through provisioning, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NodeStage {
    /// Known to the install but nothing has happened yet.
    Pending,
    /// insert-ethers saw its DHCP request and assigned it a name/MAC.
    Discovered,
    /// A kickstart file was generated and served to it.
    Kickstarted,
    /// Its RPM transaction committed; the node is fully installed.
    PackagesCommitted,
}

impl NodeStage {
    pub const ALL: [NodeStage; 4] = [
        NodeStage::Pending,
        NodeStage::Discovered,
        NodeStage::Kickstarted,
        NodeStage::PackagesCommitted,
    ];

    pub fn as_str(&self) -> &'static str {
        match self {
            NodeStage::Pending => "pending",
            NodeStage::Discovered => "discovered",
            NodeStage::Kickstarted => "kickstarted",
            NodeStage::PackagesCommitted => "packages-committed",
        }
    }

    pub fn parse(s: &str) -> Option<NodeStage> {
        NodeStage::ALL.iter().copied().find(|st| st.as_str() == s)
    }
}

impl fmt::Display for NodeStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Errors from [`InstallCheckpoint::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct CheckpointParseError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for CheckpointParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "checkpoint line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CheckpointParseError {}

/// Durable record of install progress for one cluster.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InstallCheckpoint {
    /// The frontend finished its screens + package commit.
    frontend_committed: bool,
    /// Furthest stage reached per node, keyed by node name.
    stages: BTreeMap<String, NodeStage>,
    /// Nodes pulled from the install with the reason, keyed by node name.
    quarantined: BTreeMap<String, String>,
}

impl InstallCheckpoint {
    pub fn new() -> Self {
        InstallCheckpoint::default()
    }

    pub fn frontend_committed(&self) -> bool {
        self.frontend_committed
    }

    pub fn mark_frontend_committed(&mut self) {
        self.frontend_committed = true;
    }

    /// Record that `node` reached `stage`. Monotone: an earlier stage
    /// never overwrites a later one, so replaying a resumed install's
    /// early steps cannot regress the checkpoint.
    pub fn record(&mut self, node: &str, stage: NodeStage) {
        let entry = self
            .stages
            .entry(node.to_string())
            .or_insert(NodeStage::Pending);
        if stage > *entry {
            *entry = stage;
        }
    }

    /// Furthest stage `node` is known to have reached.
    pub fn stage(&self, node: &str) -> NodeStage {
        self.stages.get(node).copied().unwrap_or(NodeStage::Pending)
    }

    /// True when `node`'s package transaction committed.
    pub fn is_committed(&self, node: &str) -> bool {
        self.stage(node) == NodeStage::PackagesCommitted
    }

    /// Names of all fully installed nodes, sorted.
    pub fn committed_nodes(&self) -> Vec<&str> {
        self.stages
            .iter()
            .filter(|(_, st)| **st == NodeStage::PackagesCommitted)
            .map(|(name, _)| name.as_str())
            .collect()
    }

    /// Pull `node` from the install, recording why.
    pub fn quarantine(&mut self, node: &str, reason: &str) {
        self.quarantined
            .insert(node.to_string(), reason.to_string());
    }

    pub fn is_quarantined(&self, node: &str) -> bool {
        self.quarantined.contains_key(node)
    }

    /// Quarantined nodes with reasons, sorted by name.
    pub fn quarantined(&self) -> impl Iterator<Item = (&str, &str)> {
        self.quarantined
            .iter()
            .map(|(n, r)| (n.as_str(), r.as_str()))
    }

    pub fn quarantined_count(&self) -> usize {
        self.quarantined.len()
    }

    /// All tracked nodes and their stages, sorted by name.
    pub fn nodes(&self) -> impl Iterator<Item = (&str, NodeStage)> {
        self.stages.iter().map(|(n, st)| (n.as_str(), *st))
    }

    pub fn is_empty(&self) -> bool {
        !self.frontend_committed && self.stages.is_empty() && self.quarantined.is_empty()
    }

    /// Serialize to the line-oriented state-file format:
    ///
    /// ```text
    /// frontend committed
    /// node compute-0-0 packages-committed
    /// quarantine compute-0-3 node.boot: retry budget exhausted
    /// ```
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        if self.frontend_committed {
            out.push_str("frontend committed\n");
        }
        for (name, stage) in &self.stages {
            out.push_str(&format!("node {name} {stage}\n"));
        }
        for (name, reason) in &self.quarantined {
            out.push_str(&format!("quarantine {name} {reason}\n"));
        }
        out
    }

    /// Parse the [`to_text`](Self::to_text) format. Blank lines and
    /// `#` comments are ignored.
    pub fn parse(text: &str) -> Result<InstallCheckpoint, CheckpointParseError> {
        let mut cp = InstallCheckpoint::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |message: String| CheckpointParseError {
                line: idx + 1,
                message,
            };
            let mut words = line.splitn(3, ' ');
            match words.next() {
                Some("frontend") => {
                    if words.next() != Some("committed") {
                        return Err(err(format!("expected `frontend committed`, got `{line}`")));
                    }
                    cp.frontend_committed = true;
                }
                Some("node") => {
                    let name = words
                        .next()
                        .ok_or_else(|| err("missing node name".into()))?;
                    let stage_s = words
                        .next()
                        .ok_or_else(|| err("missing node stage".into()))?;
                    let stage = NodeStage::parse(stage_s)
                        .ok_or_else(|| err(format!("unknown stage `{stage_s}`")))?;
                    cp.record(name, stage);
                }
                Some("quarantine") => {
                    let name = words
                        .next()
                        .ok_or_else(|| err("missing node name".into()))?;
                    let reason = words.next().unwrap_or("").to_string();
                    cp.quarantined.insert(name.to_string(), reason);
                }
                Some(other) => {
                    return Err(err(format!("unknown directive `{other}`")));
                }
                None => unreachable!("splitn yields at least one item"),
            }
        }
        Ok(cp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_are_ordered() {
        assert!(NodeStage::Pending < NodeStage::Discovered);
        assert!(NodeStage::Discovered < NodeStage::Kickstarted);
        assert!(NodeStage::Kickstarted < NodeStage::PackagesCommitted);
    }

    #[test]
    fn record_is_monotone() {
        let mut cp = InstallCheckpoint::new();
        cp.record("compute-0-0", NodeStage::Kickstarted);
        cp.record("compute-0-0", NodeStage::Discovered);
        assert_eq!(cp.stage("compute-0-0"), NodeStage::Kickstarted);
        cp.record("compute-0-0", NodeStage::PackagesCommitted);
        assert!(cp.is_committed("compute-0-0"));
    }

    #[test]
    fn unknown_node_is_pending() {
        let cp = InstallCheckpoint::new();
        assert_eq!(cp.stage("compute-9-9"), NodeStage::Pending);
        assert!(!cp.is_committed("compute-9-9"));
    }

    #[test]
    fn committed_nodes_sorted() {
        let mut cp = InstallCheckpoint::new();
        cp.record("compute-0-1", NodeStage::PackagesCommitted);
        cp.record("compute-0-0", NodeStage::PackagesCommitted);
        cp.record("compute-0-2", NodeStage::Kickstarted);
        assert_eq!(cp.committed_nodes(), vec!["compute-0-0", "compute-0-1"]);
    }

    #[test]
    fn quarantine_tracked_with_reason() {
        let mut cp = InstallCheckpoint::new();
        cp.quarantine("compute-0-3", "node.boot: retry budget exhausted");
        assert!(cp.is_quarantined("compute-0-3"));
        assert_eq!(cp.quarantined_count(), 1);
        let q: Vec<_> = cp.quarantined().collect();
        assert_eq!(
            q,
            vec![("compute-0-3", "node.boot: retry budget exhausted")]
        );
    }

    #[test]
    fn text_round_trip() {
        let mut cp = InstallCheckpoint::new();
        cp.mark_frontend_committed();
        cp.record("compute-0-0", NodeStage::PackagesCommitted);
        cp.record("compute-0-1", NodeStage::Discovered);
        cp.quarantine("compute-0-2", "rpm.scriptlet: transaction rolled back");
        let text = cp.to_text();
        let parsed = InstallCheckpoint::parse(&text).unwrap();
        assert_eq!(parsed, cp);
    }

    #[test]
    fn parse_ignores_comments_and_blanks() {
        let cp = InstallCheckpoint::parse(
            "# resumed 2016-07-12\n\nfrontend committed\nnode compute-0-0 kickstarted\n",
        )
        .unwrap();
        assert!(cp.frontend_committed());
        assert_eq!(cp.stage("compute-0-0"), NodeStage::Kickstarted);
    }

    #[test]
    fn parse_rejects_garbage() {
        let err = InstallCheckpoint::parse("node compute-0-0 warp-speed").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("warp-speed"));
        assert!(InstallCheckpoint::parse("reboot now").is_err());
        assert!(InstallCheckpoint::parse("frontend exploded").is_err());
    }

    #[test]
    fn empty_checkpoint_is_empty() {
        assert!(InstallCheckpoint::new().is_empty());
        assert!(InstallCheckpoint::parse("").unwrap().is_empty());
    }
}
