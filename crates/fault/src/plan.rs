//! Deterministic fault plans and the injector that executes them.
//!
//! A [`FaultPlan`] is a pure value: a seed plus a list of [`FaultSpec`]s
//! ("the 2nd fetch from any mirror whose URL contains `mirror2` —
//! key filter `*mirror2*` — times out") and optional per-point random
//! rates. The [`FaultInjector`] built
//! from it is consulted at named [`InjectionPoint`]s throughout the
//! provisioning pipeline; identical plans produce identical fault
//! sequences, so any failure scenario — including the randomized ones —
//! is replayable from the plan alone.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::fmt;

/// Named places in the provisioning pipeline where faults can strike.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InjectionPoint {
    /// A yum metadata/package fetch from one mirror (`xcbc-yum`).
    MirrorFetch,
    /// An insert-ethers DHCP discovery exchange (`xcbc-rocks`).
    DhcpDiscover,
    /// Kickstart file generation for a node (`xcbc-rocks`).
    KickstartGenerate,
    /// An RPM scriptlet run inside a package transaction (`xcbc-rpm`).
    RpmScriptlet,
    /// A node's PXE/BIOS boot on its way into the installer (`xcbc-rocks`).
    NodeBoot,
    /// Whole-frontend power loss mid-install (`xcbc-rocks`/`xcbc-core`).
    PowerLoss,
    /// The drain step at a rolling-update wave boundary (`xcbc-core`).
    /// A fault here aborts the campaign driver, leaving the checkpoint.
    CampaignDrain,
    /// The canary health check after the canary wave (`xcbc-core`). A
    /// fault here fails the health check and halts/rolls back the run.
    CampaignCanary,
    /// An elastic scale decision boundary (`xcbc-core`). A fault here
    /// aborts the elastic engine, leaving its checkpoint.
    ScaleUp,
    /// A burst site joining a running fleet (`xcbc-core`). A fault here
    /// fails the join; the fleet continues without the site.
    BurstJoin,
}

impl InjectionPoint {
    pub const ALL: [InjectionPoint; 10] = [
        InjectionPoint::MirrorFetch,
        InjectionPoint::DhcpDiscover,
        InjectionPoint::KickstartGenerate,
        InjectionPoint::RpmScriptlet,
        InjectionPoint::NodeBoot,
        InjectionPoint::PowerLoss,
        InjectionPoint::CampaignDrain,
        InjectionPoint::CampaignCanary,
        InjectionPoint::ScaleUp,
        InjectionPoint::BurstJoin,
    ];

    /// The stable name used in plan syntax and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            InjectionPoint::MirrorFetch => "mirror.fetch",
            InjectionPoint::DhcpDiscover => "dhcp.discover",
            InjectionPoint::KickstartGenerate => "kickstart.generate",
            InjectionPoint::RpmScriptlet => "rpm.scriptlet",
            InjectionPoint::NodeBoot => "node.boot",
            InjectionPoint::PowerLoss => "power.loss",
            InjectionPoint::CampaignDrain => "campaign.drain",
            InjectionPoint::CampaignCanary => "campaign.canary",
            InjectionPoint::ScaleUp => "elastic.scale-up",
            InjectionPoint::BurstJoin => "elastic.burst-join",
        }
    }

    pub fn parse(s: &str) -> Option<InjectionPoint> {
        Self::ALL.into_iter().find(|p| p.as_str() == s)
    }

    /// The fault kind this point produces when a spec names none.
    pub fn default_kind(self) -> FaultKind {
        match self {
            InjectionPoint::MirrorFetch => FaultKind::Transient,
            InjectionPoint::DhcpDiscover => FaultKind::Timeout,
            InjectionPoint::KickstartGenerate => FaultKind::Transient,
            InjectionPoint::RpmScriptlet => FaultKind::ScriptletError,
            InjectionPoint::NodeBoot => FaultKind::Hang,
            InjectionPoint::PowerLoss => FaultKind::PowerLoss,
            InjectionPoint::CampaignDrain => FaultKind::PowerLoss,
            InjectionPoint::CampaignCanary => FaultKind::ScriptletError,
            InjectionPoint::ScaleUp => FaultKind::PowerLoss,
            InjectionPoint::BurstJoin => FaultKind::Transient,
        }
    }
}

impl fmt::Display for InjectionPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What kind of failure an injection produces. Callers map kinds onto
/// their own error types (a `Timeout` at `dhcp.discover` costs a DHCP
/// timeout; a `PowerLoss` aborts the whole install run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// Operation fails immediately but cheaply; retry may succeed.
    Transient,
    /// Operation fails after burning its full timeout.
    Timeout,
    /// Operation never completes; caller charges a hang-detection window.
    Hang,
    /// An RPM scriptlet exits non-zero; the transaction must roll back.
    ScriptletError,
    /// Power loss: the whole install aborts, leaving only the checkpoint.
    PowerLoss,
}

impl FaultKind {
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::Transient => "transient",
            FaultKind::Timeout => "timeout",
            FaultKind::Hang => "hang",
            FaultKind::ScriptletError => "scriptlet-error",
            FaultKind::PowerLoss => "power-loss",
        }
    }

    pub fn parse(s: &str) -> Option<FaultKind> {
        match s {
            "transient" => Some(FaultKind::Transient),
            "timeout" => Some(FaultKind::Timeout),
            "hang" => Some(FaultKind::Hang),
            "scriptlet-error" | "scriptlet" => Some(FaultKind::ScriptletError),
            "power-loss" | "powerloss" => Some(FaultKind::PowerLoss),
            _ => None,
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Which hits (0-based occurrence indices per `(point, key)` stream) a
/// spec fires on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultWindow {
    /// Every hit.
    Always,
    /// Exactly the `n`-th hit.
    Nth(u64),
    /// The first `n` hits.
    FirstN(u64),
    /// Hits in `start..end`.
    Range { start: u64, end: u64 },
}

impl FaultWindow {
    pub fn matches(self, hit: u64) -> bool {
        match self {
            FaultWindow::Always => true,
            FaultWindow::Nth(n) => hit == n,
            FaultWindow::FirstN(n) => hit < n,
            FaultWindow::Range { start, end } => (start..end).contains(&hit),
        }
    }

    fn parse(s: &str) -> Option<FaultWindow> {
        if s == "always" {
            return Some(FaultWindow::Always);
        }
        if let Some(n) = s.strip_prefix("nth:") {
            return n.parse().ok().map(FaultWindow::Nth);
        }
        if let Some(n) = s.strip_prefix("first:") {
            return n.parse().ok().map(FaultWindow::FirstN);
        }
        if let Some((a, b)) = s.split_once("..") {
            let (start, end) = (a.parse().ok()?, b.parse().ok()?);
            if start < end {
                return Some(FaultWindow::Range { start, end });
            }
        }
        None
    }
}

impl fmt::Display for FaultWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultWindow::Always => write!(f, "always"),
            FaultWindow::Nth(n) => write!(f, "nth:{n}"),
            FaultWindow::FirstN(n) => write!(f, "first:{n}"),
            FaultWindow::Range { start, end } => write!(f, "{start}..{end}"),
        }
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    pub point: InjectionPoint,
    /// Filter on the operation key (hostname, mirror URL, package
    /// name, ...). `None` matches every key. A bare filter matches the
    /// key **exactly**; leading/trailing `*` anchors loosen it
    /// (`foo*` prefix, `*foo` suffix, `*foo*` substring). Exact is the
    /// default because keys are often numbered streams — a substring
    /// `tick-1` would also fire on `tick-10` and `tick-100`.
    pub key: Option<String>,
    pub window: FaultWindow,
    pub kind: FaultKind,
}

/// Does `key` satisfy `filter` under the anchored-wildcard rules
/// documented on [`FaultSpec::key`]?
pub fn key_matches(filter: &str, key: &str) -> bool {
    match (filter.strip_prefix('*'), filter.strip_suffix('*')) {
        // "*foo*" (also handles the degenerate "*" → contains "")
        (Some(rest), Some(_)) => {
            let needle = rest.strip_suffix('*').unwrap_or(rest);
            key.contains(needle)
        }
        (Some(suffix), None) => key.ends_with(suffix),
        (None, Some(prefix)) => key.starts_with(prefix),
        (None, None) => key == filter,
    }
}

impl FaultSpec {
    fn applies(&self, point: InjectionPoint, key: &str, hit: u64) -> bool {
        self.point == point
            && self.window.matches(hit)
            && self
                .key
                .as_deref()
                .is_none_or(|filter| key_matches(filter, key))
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.point)?;
        if let Some(k) = &self.key {
            write!(f, " key={k}")?;
        }
        write!(f, " on={} kind={}", self.window, self.kind)
    }
}

/// Error from [`FaultPlan::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct PlanParseError {
    pub clause: String,
    pub message: String,
}

impl fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bad fault plan clause '{}': {}",
            self.clause, self.message
        )
    }
}

impl std::error::Error for PlanParseError {}

/// A reproducible failure scenario: seed + scheduled faults + optional
/// per-point random fault rates.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    pub seed: u64,
    pub specs: Vec<FaultSpec>,
    /// `(point, probability)` — random faults sampled deterministically
    /// from the seed, still fully replayable.
    pub rates: Vec<(InjectionPoint, f64)>,
}

impl FaultPlan {
    /// An empty plan: nothing ever faults (but retries/jitter still draw
    /// deterministically from `seed`).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            specs: Vec::new(),
            rates: Vec::new(),
        }
    }

    /// Schedule a fault. `key` filters by substring of the operation key
    /// (pass `None` to match all).
    pub fn fail_at(
        mut self,
        point: InjectionPoint,
        key: Option<&str>,
        window: FaultWindow,
        kind: FaultKind,
    ) -> Self {
        self.specs.push(FaultSpec {
            point,
            key: key.map(str::to_string),
            window,
            kind,
        });
        self
    }

    /// Schedule a fault with the point's default kind.
    pub fn fail(self, point: InjectionPoint, key: Option<&str>, window: FaultWindow) -> Self {
        let kind = point.default_kind();
        self.fail_at(point, key, window, kind)
    }

    /// Add a seeded random fault rate at a point (0.0..=1.0).
    pub fn with_rate(mut self, point: InjectionPoint, probability: f64) -> Self {
        self.rates.push((point, probability.clamp(0.0, 1.0)));
        self
    }

    /// Parse the compact plan syntax documented in the README:
    ///
    /// ```text
    /// seed=42; mirror.fetch key=*mirror2* on=first:2 kind=timeout; rate mirror.fetch 0.05
    /// ```
    ///
    /// Clauses are `;`-separated. `seed=N` sets the seed (default 0).
    /// `rate <point> <p>` adds a random rate. Any other clause starts
    /// with an injection-point name followed by optional `key=`, `on=`
    /// (default `always`), and `kind=` (default per point) fields.
    pub fn parse(text: &str) -> Result<FaultPlan, PlanParseError> {
        let mut plan = FaultPlan::new(0);
        for clause in text.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let err = |message: &str| PlanParseError {
                clause: clause.to_string(),
                message: message.to_string(),
            };
            if let Some(seed) = clause.strip_prefix("seed=") {
                plan.seed = seed.trim().parse().map_err(|_| err("seed must be a u64"))?;
                continue;
            }
            let mut words = clause.split_whitespace();
            let head = words.next().unwrap();
            if head == "rate" {
                let point = words
                    .next()
                    .and_then(InjectionPoint::parse)
                    .ok_or_else(|| err("rate needs an injection point"))?;
                let p: f64 = words
                    .next()
                    .and_then(|w| w.parse().ok())
                    .ok_or_else(|| err("rate needs a probability"))?;
                plan = plan.with_rate(point, p);
                continue;
            }
            let point =
                InjectionPoint::parse(head).ok_or_else(|| err("unknown injection point"))?;
            let mut key = None;
            let mut window = FaultWindow::Always;
            let mut kind = point.default_kind();
            for field in words {
                if let Some(v) = field.strip_prefix("key=") {
                    key = Some(v.to_string());
                } else if let Some(v) = field.strip_prefix("on=") {
                    window = FaultWindow::parse(v).ok_or_else(|| err("bad on= window"))?;
                } else if let Some(v) = field.strip_prefix("kind=") {
                    kind = FaultKind::parse(v).ok_or_else(|| err("bad kind="))?;
                } else {
                    return Err(err("expected key=, on=, or kind= field"));
                }
            }
            plan.specs.push(FaultSpec {
                point,
                key,
                window,
                kind,
            });
        }
        Ok(plan)
    }

    /// Render back to the parseable syntax (stable for a given plan).
    pub fn render(&self) -> String {
        let mut parts = vec![format!("seed={}", self.seed)];
        for s in &self.specs {
            parts.push(s.to_string());
        }
        for (p, rate) in &self.rates {
            parts.push(format!("rate {p} {rate}"));
        }
        parts.join("; ")
    }

    /// Build the runtime injector for one pipeline run.
    pub fn injector(&self) -> FaultInjector {
        FaultInjector {
            plan: self.clone(),
            hits: BTreeMap::new(),
            events: Vec::new(),
        }
    }
}

/// One injected fault, as recorded for the post-mortem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    pub point: InjectionPoint,
    pub key: String,
    /// 0-based occurrence index within this `(point, key)` stream.
    pub hit: u64,
    pub kind: FaultKind,
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} key={} hit={} -> {}",
            self.point, self.key, self.hit, self.kind
        )
    }
}

/// Runtime fault oracle for one provisioning run.
///
/// Determinism: the decision for a given `(point, key, hit)` triple
/// depends only on the plan, never on call order across different keys,
/// so concurrent-looking pipelines replay identically.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    hits: BTreeMap<(InjectionPoint, String), u64>,
    events: Vec<FaultEvent>,
}

fn fnv64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl FaultInjector {
    /// Consult the oracle at `point` for operation `key` (hostname,
    /// mirror URL, package name...). Each call advances that stream's hit
    /// counter. Returns the fault to inject, if any.
    pub fn should_fault(&mut self, point: InjectionPoint, key: &str) -> Option<FaultKind> {
        let hit = {
            let counter = self.hits.entry((point, key.to_string())).or_insert(0);
            let h = *counter;
            *counter += 1;
            h
        };
        let mut kind = self
            .plan
            .specs
            .iter()
            .find(|s| s.applies(point, key, hit))
            .map(|s| s.kind);
        if kind.is_none() {
            for (p, rate) in &self.plan.rates {
                if *p == point && *rate > 0.0 {
                    let mut rng = StdRng::seed_from_u64(
                        self.plan.seed
                            ^ fnv64(point.as_str())
                            ^ fnv64(key).rotate_left(17)
                            ^ hit.wrapping_mul(0x9e3779b97f4a7c15),
                    );
                    if rng.gen_bool(*rate) {
                        kind = Some(point.default_kind());
                        break;
                    }
                }
            }
        }
        if let Some(kind) = kind {
            self.events.push(FaultEvent {
                point,
                key: key.to_string(),
                hit,
                kind,
            });
        }
        kind
    }

    /// A deterministic RNG for auxiliary randomness (backoff jitter),
    /// derived from the plan seed and a caller label.
    pub fn rng_for(&self, label: &str) -> StdRng {
        StdRng::seed_from_u64(self.plan.seed ^ fnv64(label).rotate_left(31))
    }

    /// Faults injected so far, in injection order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    pub fn injected_count(&self) -> usize {
        self.events.len()
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_names_round_trip() {
        for p in InjectionPoint::ALL {
            assert_eq!(InjectionPoint::parse(p.as_str()), Some(p));
        }
        assert_eq!(InjectionPoint::parse("bogus"), None);
    }

    #[test]
    fn windows_match_expected_hits() {
        assert!(FaultWindow::Always.matches(0) && FaultWindow::Always.matches(99));
        assert!(FaultWindow::Nth(2).matches(2) && !FaultWindow::Nth(2).matches(1));
        assert!(FaultWindow::FirstN(2).matches(1) && !FaultWindow::FirstN(2).matches(2));
        let r = FaultWindow::Range { start: 1, end: 3 };
        assert!(!r.matches(0) && r.matches(1) && r.matches(2) && !r.matches(3));
    }

    #[test]
    fn key_matching_is_exact_unless_anchored() {
        // bare filters are exact: the gotcha PR 7 worked around
        assert!(key_matches("tick-1", "tick-1"));
        assert!(!key_matches("tick-1", "tick-100"));
        assert!(!key_matches("tick-1", "settle-tick-1"));
        // prefix / suffix / contains anchors
        assert!(key_matches("tick-*", "tick-100"));
        assert!(!key_matches("tick-*", "settle-tick-1"));
        assert!(key_matches("*-1", "tick-1"));
        assert!(!key_matches("*-1", "tick-100"));
        assert!(key_matches("*mirror2*", "http://mirror2.example.edu/"));
        assert!(!key_matches("*mirror2*", "http://mirror1.example.edu/"));
        // degenerate "*" matches everything
        assert!(key_matches("*", "anything"));
        assert!(key_matches("**", ""));
    }

    #[test]
    fn scheduled_fault_fires_on_matching_stream_only() {
        let plan = FaultPlan::new(1).fail_at(
            InjectionPoint::MirrorFetch,
            Some("*mirror2*"),
            FaultWindow::FirstN(2),
            FaultKind::Timeout,
        );
        let mut inj = plan.injector();
        // other key: untouched
        assert_eq!(
            inj.should_fault(InjectionPoint::MirrorFetch, "http://cb-repo"),
            None
        );
        // matching key: first two hits fault, third succeeds
        let key = "http://mirror2.example.edu/";
        assert_eq!(
            inj.should_fault(InjectionPoint::MirrorFetch, key),
            Some(FaultKind::Timeout)
        );
        assert_eq!(
            inj.should_fault(InjectionPoint::MirrorFetch, key),
            Some(FaultKind::Timeout)
        );
        assert_eq!(inj.should_fault(InjectionPoint::MirrorFetch, key), None);
        assert_eq!(inj.injected_count(), 2);
        assert_eq!(inj.events()[0].hit, 0);
        assert_eq!(inj.events()[1].hit, 1);
    }

    #[test]
    fn random_rate_is_deterministic_and_order_independent() {
        let plan = FaultPlan::new(7).with_rate(InjectionPoint::DhcpDiscover, 0.5);
        let sample = |keys: &[&str]| -> Vec<Option<FaultKind>> {
            let mut inj = plan.injector();
            keys.iter()
                .map(|k| inj.should_fault(InjectionPoint::DhcpDiscover, k))
                .collect()
        };
        let forward = sample(&["a", "b", "c", "d", "e", "f", "g", "h"]);
        let mut reversed = sample(&["h", "g", "f", "e", "d", "c", "b", "a"]);
        reversed.reverse();
        assert_eq!(
            forward, reversed,
            "per-key decisions must not depend on call order"
        );
        assert_eq!(forward, sample(&["a", "b", "c", "d", "e", "f", "g", "h"]));
        assert!(
            forward.iter().any(Option::is_some),
            "rate 0.5 over 8 keys should fire"
        );
        assert!(forward.iter().any(Option::is_none));
    }

    #[test]
    fn plan_syntax_round_trips() {
        let text = "seed=42; mirror.fetch key=*mirror2* on=first:2 kind=timeout; \
                    node.boot key=compute-0-3 on=nth:0 kind=hang; rate rpm.scriptlet 0.01";
        let plan = FaultPlan::parse(text).unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.specs.len(), 2);
        assert_eq!(plan.rates, vec![(InjectionPoint::RpmScriptlet, 0.01)]);
        let reparsed = FaultPlan::parse(&plan.render()).unwrap();
        assert_eq!(reparsed, plan);
    }

    #[test]
    fn parse_rejects_bad_clauses() {
        assert!(FaultPlan::parse("bogus.point").is_err());
        assert!(FaultPlan::parse("mirror.fetch on=sometimes").is_err());
        assert!(FaultPlan::parse("mirror.fetch kind=gremlins").is_err());
        assert!(FaultPlan::parse("seed=minus-one").is_err());
        assert!(FaultPlan::parse("rate mirror.fetch").is_err());
    }

    #[test]
    fn default_kinds_per_point() {
        let plan = FaultPlan::parse("power.loss on=nth:0; dhcp.discover key=x").unwrap();
        assert_eq!(plan.specs[0].kind, FaultKind::PowerLoss);
        assert_eq!(plan.specs[1].kind, FaultKind::Timeout);
        let campaign = FaultPlan::parse("campaign.drain on=nth:1; campaign.canary").unwrap();
        assert_eq!(campaign.specs[0].kind, FaultKind::PowerLoss);
        assert_eq!(campaign.specs[1].kind, FaultKind::ScriptletError);
    }
}
