//! Post-mortem: the report section a fault-injected deployment emits.
//!
//! After a degraded install completes on its survivors, the operator
//! needs to know what the resilience layer actually did: which faults
//! fired, how many retries were spent absorbing them, how much virtual
//! time was lost to backoff, and which nodes were quarantined. The
//! rendering is deterministic — identical fault plans yield
//! byte-identical post-mortems, which the property tests assert.

use std::fmt;

use crate::plan::FaultEvent;
use xcbc_sim::SimTime;

/// Accumulated resilience telemetry for one deployment.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PostMortem {
    /// Seed of the fault plan that drove the run (None: no injection).
    pub seed: Option<u64>,
    /// Every fault the injector fired, in injection order.
    pub faults: Vec<FaultEvent>,
    /// Retry attempts spent beyond first tries, across all operations.
    pub retries_spent: u32,
    /// Total virtual time charged to backoff delays, seconds.
    pub backoff_s: f64,
    /// Nodes pulled from the install, with reasons (sorted by caller).
    pub quarantined: Vec<(String, String)>,
    /// Nodes skipped on resume because a checkpoint showed them
    /// already committed.
    pub resumed_nodes: Vec<String>,
    /// Notable resilience moments (retry absorbed, quarantine, resume)
    /// stamped on the shared simulation clock, in occurrence order.
    pub moments: Vec<(SimTime, String)>,
    /// Flight-recorder tail: the last events (as JSONL lines) the run
    /// emitted before it finished or faulted, plus how many of the
    /// observed events fell out of the bounded ring. Populated by the
    /// deployment engines for non-clean runs.
    pub flight_tail: Vec<String>,
    /// Total events the flight recorder observed (`0` when no recorder
    /// ran); `flight_dropped` of them were evicted from the ring.
    pub flight_seen: u64,
    /// Events evicted from the flight-recorder ring.
    pub flight_dropped: u64,
}

impl PostMortem {
    pub fn new(seed: Option<u64>) -> Self {
        PostMortem {
            seed,
            ..PostMortem::default()
        }
    }

    /// Record the outcome of one retried operation.
    pub fn charge_retries(&mut self, retries: u32, backoff_s: f64) {
        self.retries_spent += retries;
        self.backoff_s += backoff_s;
    }

    pub fn record_fault(&mut self, event: FaultEvent) {
        self.faults.push(event);
    }

    pub fn record_quarantine(&mut self, node: &str, reason: &str) {
        self.quarantined
            .push((node.to_string(), reason.to_string()));
    }

    pub fn record_resumed(&mut self, node: &str) {
        self.resumed_nodes.push(node.to_string());
    }

    /// Stamp a notable moment on the shared simulation clock, so the
    /// rendered post-mortem reads as a timeline rather than a tally.
    pub fn record_moment(&mut self, at: impl Into<SimTime>, what: impl Into<String>) {
        self.moments.push((at.into(), what.into()));
    }

    /// Attach a flight-recorder tail (last-events JSONL lines plus the
    /// ring's seen/dropped counters) to the report.
    pub fn record_flight_tail(
        &mut self,
        tail: impl IntoIterator<Item = String>,
        seen: u64,
        dropped: u64,
    ) {
        self.flight_tail = tail.into_iter().collect();
        self.flight_seen = seen;
        self.flight_dropped = dropped;
    }

    /// Merge another post-mortem (e.g. from a sub-phase) into this one.
    pub fn absorb(&mut self, other: PostMortem) {
        self.faults.extend(other.faults);
        self.retries_spent += other.retries_spent;
        self.backoff_s += other.backoff_s;
        self.quarantined.extend(other.quarantined);
        self.resumed_nodes.extend(other.resumed_nodes);
        self.moments.extend(other.moments);
        // the latest sub-phase's tail wins: it is closest to the failure
        if !other.flight_tail.is_empty() {
            self.flight_tail = other.flight_tail;
            self.flight_seen = other.flight_seen;
            self.flight_dropped = other.flight_dropped;
        }
    }

    /// True when the run saw no faults, retries, or quarantines — the
    /// report can omit the section entirely.
    pub fn is_clean(&self) -> bool {
        self.faults.is_empty()
            && self.retries_spent == 0
            && self.backoff_s == 0.0
            && self.quarantined.is_empty()
            && self.resumed_nodes.is_empty()
    }

    /// Deterministic text rendering for the deployment report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("== Post-mortem ==\n");
        match self.seed {
            Some(seed) => out.push_str(&format!("fault plan seed   : {seed}\n")),
            None => out.push_str("fault plan seed   : (none)\n"),
        }
        out.push_str(&format!("faults injected   : {}\n", self.faults.len()));
        out.push_str(&format!("retries spent     : {}\n", self.retries_spent));
        out.push_str(&format!("backoff time lost : {:.1}s\n", self.backoff_s));
        out.push_str(&format!("nodes quarantined : {}\n", self.quarantined.len()));
        if !self.resumed_nodes.is_empty() {
            out.push_str(&format!(
                "resumed from checkpoint: {} node(s) skipped ({})\n",
                self.resumed_nodes.len(),
                self.resumed_nodes.join(", ")
            ));
        }
        for event in &self.faults {
            out.push_str(&format!(
                "  fault {} at {} [{}] hit {}\n",
                event.kind.as_str(),
                event.point.as_str(),
                event.key,
                event.hit
            ));
        }
        for (node, reason) in &self.quarantined {
            out.push_str(&format!("  quarantined {node}: {reason}\n"));
        }
        if !self.moments.is_empty() {
            out.push_str("moments:\n");
            for (t, what) in &self.moments {
                out.push_str(&format!("  [{t:>10}] {what}\n"));
            }
        }
        if !self.flight_tail.is_empty() {
            out.push_str(&format!(
                "flight recorder   : last {} of {} event(s) ({} dropped)\n",
                self.flight_tail.len(),
                self.flight_seen,
                self.flight_dropped
            ));
            for line in &self.flight_tail {
                out.push_str(&format!("  | {line}\n"));
            }
        }
        out
    }
}

impl fmt::Display for PostMortem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{FaultKind, InjectionPoint};

    fn sample_event() -> FaultEvent {
        FaultEvent {
            point: InjectionPoint::MirrorFetch,
            key: "mirror-a".to_string(),
            hit: 0,
            kind: FaultKind::Transient,
        }
    }

    #[test]
    fn fresh_postmortem_is_clean() {
        assert!(PostMortem::new(Some(7)).is_clean());
    }

    #[test]
    fn charges_accumulate() {
        let mut pm = PostMortem::new(Some(1));
        pm.charge_retries(2, 6.5);
        pm.charge_retries(1, 2.0);
        assert_eq!(pm.retries_spent, 3);
        assert!((pm.backoff_s - 8.5).abs() < 1e-9);
        assert!(!pm.is_clean());
    }

    #[test]
    fn render_mentions_everything() {
        let mut pm = PostMortem::new(Some(42));
        pm.record_fault(sample_event());
        pm.charge_retries(1, 2.2);
        pm.record_quarantine("compute-0-3", "node.boot: retry budget exhausted");
        pm.record_resumed("compute-0-0");
        let text = pm.render();
        assert!(text.contains("fault plan seed   : 42"));
        assert!(text.contains("faults injected   : 1"));
        assert!(text.contains("retries spent     : 1"));
        assert!(text.contains("backoff time lost : 2.2s"));
        assert!(text.contains("nodes quarantined : 1"));
        assert!(text.contains("mirror.fetch"));
        assert!(text.contains("quarantined compute-0-3"));
        assert!(text.contains("resumed from checkpoint: 1 node(s) skipped (compute-0-0)"));
    }

    #[test]
    fn render_is_deterministic() {
        let mut a = PostMortem::new(Some(3));
        a.record_fault(sample_event());
        a.charge_retries(2, 4.0);
        let mut b = PostMortem::new(Some(3));
        b.record_fault(sample_event());
        b.charge_retries(2, 4.0);
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn moments_render_with_sim_timestamps() {
        use xcbc_sim::SimTime;
        let mut pm = PostMortem::new(Some(9));
        pm.record_moment(
            SimTime::from_secs(690),
            "quarantined compute-0-3 (hang at node.boot)",
        );
        pm.record_moment(900.5, "compute-0-4: rpm.scriptlet absorbed 1 retry");
        let text = pm.render();
        assert!(text.contains("moments:"));
        assert!(text.contains("690.000s] quarantined compute-0-3"));
        assert!(text.contains("900.500s] compute-0-4: rpm.scriptlet absorbed 1 retry"));
        // occurrence order is preserved
        let q = text.find("quarantined compute-0-3").unwrap();
        let r = text.find("absorbed 1 retry").unwrap();
        assert!(q < r);
    }

    #[test]
    fn flight_tail_renders_and_survives_absorb() {
        let mut pm = PostMortem::new(Some(4));
        pm.record_quarantine("compute-0-1", "hang");
        pm.record_flight_tail(
            vec![
                "{\"t_ns\":1,\"source\":\"a\",\"kind\":\"mark\",\"label\":\"x\"}".to_string(),
                "{\"t_ns\":2,\"source\":\"b\",\"kind\":\"mark\",\"label\":\"y\"}".to_string(),
            ],
            10,
            8,
        );
        let text = pm.render();
        assert!(text.contains("flight recorder   : last 2 of 10 event(s) (8 dropped)"));
        assert!(text.contains("  | {\"t_ns\":2"));

        let mut main = PostMortem::new(Some(4));
        main.absorb(pm);
        assert_eq!(main.flight_tail.len(), 2);
        assert_eq!(main.flight_seen, 10);
        // absorbing a tail-less report keeps the existing tail
        main.absorb(PostMortem::new(Some(4)));
        assert_eq!(main.flight_dropped, 8);
    }

    #[test]
    fn absorb_merges_sub_reports() {
        let mut main = PostMortem::new(Some(5));
        main.charge_retries(1, 2.0);
        let mut sub = PostMortem::new(Some(5));
        sub.record_fault(sample_event());
        sub.charge_retries(2, 3.0);
        sub.record_quarantine("compute-0-1", "hang");
        main.absorb(sub);
        assert_eq!(main.retries_spent, 3);
        assert_eq!(main.faults.len(), 1);
        assert_eq!(main.quarantined.len(), 1);
        assert!((main.backoff_s - 5.0).abs() < 1e-9);
    }
}
