//! Versioned dependency specifications (RPM "dependency sets").
//!
//! A [`Dependency`] is a name plus an optional comparison against an
//! [`Evr`], e.g. `openmpi >= 1.6` or `mpi`. Provides, Requires, Conflicts
//! and Obsoletes headers all use this shape; satisfaction between a
//! Provides and a Requires follows RPM's range-overlap rule
//! (`rpmdsCompare`).

use crate::evr::Evr;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// The comparison operator attached to a dependency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DepFlag {
    /// Unversioned: any version satisfies.
    Any,
    /// `= EVR`
    Eq,
    /// `< EVR`
    Lt,
    /// `<= EVR`
    Le,
    /// `> EVR`
    Gt,
    /// `>= EVR`
    Ge,
}

impl DepFlag {
    /// True if the flag admits versions below the anchor.
    fn opens_down(self) -> bool {
        matches!(self, DepFlag::Lt | DepFlag::Le | DepFlag::Any)
    }
    /// True if the flag admits versions above the anchor.
    fn opens_up(self) -> bool {
        matches!(self, DepFlag::Gt | DepFlag::Ge | DepFlag::Any)
    }
    /// True if the flag admits the anchor itself.
    fn closed(self) -> bool {
        matches!(self, DepFlag::Eq | DepFlag::Le | DepFlag::Ge | DepFlag::Any)
    }

    pub fn symbol(self) -> &'static str {
        match self {
            DepFlag::Any => "",
            DepFlag::Eq => "=",
            DepFlag::Lt => "<",
            DepFlag::Le => "<=",
            DepFlag::Gt => ">",
            DepFlag::Ge => ">=",
        }
    }
}

/// A single dependency: `name [op evr]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Dependency {
    pub name: String,
    pub flag: DepFlag,
    pub evr: Option<Evr>,
}

impl Dependency {
    /// Unversioned dependency on `name` (also used for file deps such as
    /// `/usr/bin/perl`).
    pub fn any(name: impl Into<String>) -> Self {
        Dependency {
            name: name.into(),
            flag: DepFlag::Any,
            evr: None,
        }
    }

    /// Versioned dependency.
    pub fn versioned(name: impl Into<String>, flag: DepFlag, evr: impl Into<Evr>) -> Self {
        let evr = evr.into();
        debug_assert!(flag != DepFlag::Any, "versioned() needs a real comparison");
        Dependency {
            name: name.into(),
            flag,
            evr: Some(evr),
        }
    }

    /// Parse `"name"`, `"name = 1.0-1"`, `"name >= 2:3.4"` etc.
    ///
    /// ```
    /// use xcbc_rpm::{Dependency, DepFlag};
    /// let d = Dependency::parse("openmpi >= 1.6.5");
    /// assert_eq!(d.name, "openmpi");
    /// assert_eq!(d.flag, DepFlag::Ge);
    /// ```
    pub fn parse(s: &str) -> Self {
        let mut parts = s.split_whitespace();
        let name = parts.next().unwrap_or("").to_string();
        let op = parts.next();
        let ver = parts.next();
        match (op, ver) {
            (Some(op), Some(ver)) => {
                let flag = match op {
                    "=" | "==" => DepFlag::Eq,
                    "<" => DepFlag::Lt,
                    "<=" => DepFlag::Le,
                    ">" => DepFlag::Gt,
                    ">=" => DepFlag::Ge,
                    _ => DepFlag::Any,
                };
                if flag == DepFlag::Any {
                    Dependency::any(name)
                } else {
                    Dependency::versioned(name, flag, Evr::parse(ver))
                }
            }
            _ => Dependency::any(name),
        }
    }

    /// Is this a file dependency (`/usr/bin/env` style)?
    pub fn is_file_dep(&self) -> bool {
        self.name.starts_with('/')
    }

    /// Range-overlap test between a Provides (`self`) and a Requires
    /// (`req`), per RPM semantics: names must match exactly, and the two
    /// version ranges must intersect. An unversioned side always overlaps.
    ///
    /// ```
    /// use xcbc_rpm::Dependency;
    /// let provides = Dependency::parse("mpi = 1.6.5");
    /// assert!(provides.satisfies(&Dependency::parse("mpi >= 1.6")));
    /// assert!(!provides.satisfies(&Dependency::parse("mpi > 1.6.5")));
    /// assert!(provides.satisfies(&Dependency::parse("mpi")));
    /// ```
    pub fn satisfies(&self, req: &Dependency) -> bool {
        if self.name != req.name {
            return false;
        }
        ranges_overlap(self.flag, self.evr.as_ref(), req.flag, req.evr.as_ref())
    }
}

/// Do the version ranges `(fa, ea)` and `(fb, eb)` intersect?
fn ranges_overlap(fa: DepFlag, ea: Option<&Evr>, fb: DepFlag, eb: Option<&Evr>) -> bool {
    let (ea, eb) = match (ea, eb) {
        (None, _) | (_, None) => return true,
        (Some(a), Some(b)) => (a, b),
    };
    if fa == DepFlag::Any || fb == DepFlag::Any {
        return true;
    }
    match ea.cmp(eb) {
        Ordering::Equal => {
            // Same anchor: overlap iff both include the anchor, or both open
            // the same direction.
            (fa.closed() && fb.closed())
                || (fa.opens_up() && fb.opens_up())
                || (fa.opens_down() && fb.opens_down())
        }
        Ordering::Less => {
            // a anchored below b: need a to open upward or b to open downward.
            fa.opens_up() || fb.opens_down()
        }
        Ordering::Greater => fa.opens_down() || fb.opens_up(),
    }
}

impl fmt::Display for Dependency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.evr {
            Some(evr) => write!(f, "{} {} {}", self.name, self.flag.symbol(), evr),
            None => write!(f, "{}", self.name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sat(p: &str, r: &str) -> bool {
        Dependency::parse(p).satisfies(&Dependency::parse(r))
    }

    #[test]
    fn name_mismatch_never_satisfies() {
        assert!(!sat("openmpi = 1.6.5", "mpich2 >= 1.0"));
    }

    #[test]
    fn unversioned_sides() {
        assert!(sat("mpi", "mpi"));
        assert!(sat("mpi = 1.0", "mpi"));
        assert!(sat("mpi", "mpi >= 99"));
    }

    #[test]
    fn eq_vs_ranges() {
        assert!(sat("mpi = 1.6.5", "mpi = 1.6.5"));
        assert!(!sat("mpi = 1.6.5", "mpi = 1.6.4"));
        assert!(sat("mpi = 1.6.5", "mpi >= 1.6"));
        assert!(sat("mpi = 1.6.5", "mpi <= 1.7"));
        assert!(!sat("mpi = 1.6.5", "mpi < 1.6.5"));
        assert!(!sat("mpi = 1.6.5", "mpi > 1.6.5"));
        assert!(sat("mpi = 1.6.5", "mpi >= 1.6.5"));
    }

    #[test]
    fn open_range_pairs() {
        assert!(sat("mpi >= 1.0", "mpi >= 2.0"));
        assert!(sat("mpi <= 1.0", "mpi <= 0.5"));
        assert!(sat("mpi >= 1.0", "mpi <= 1.0"));
        assert!(!sat("mpi > 1.0", "mpi < 1.0"));
        assert!(!sat("mpi >= 2.0", "mpi <= 1.0"));
        assert!(sat("mpi > 1.0", "mpi < 2.0"));
    }

    #[test]
    fn same_anchor_half_open() {
        assert!(!sat("mpi > 1.0", "mpi = 1.0"));
        assert!(sat("mpi >= 1.0", "mpi = 1.0"));
        assert!(sat("mpi > 1.0", "mpi > 1.0"));
        assert!(sat("mpi > 1.0", "mpi >= 1.0"));
        assert!(!sat("mpi < 1.0", "mpi > 1.0"));
    }

    #[test]
    fn epochs_respected() {
        assert!(sat("mpi = 1:0.5", "mpi >= 1.0"));
        assert!(!sat("mpi = 0.5", "mpi >= 1:0.1"));
    }

    #[test]
    fn parse_forms() {
        assert_eq!(Dependency::parse("gcc").flag, DepFlag::Any);
        assert_eq!(Dependency::parse("gcc == 4.4.7").flag, DepFlag::Eq);
        assert!(Dependency::parse("/usr/bin/perl").is_file_dep());
        assert_eq!(
            Dependency::parse("hdf5 <= 1.8.9").to_string(),
            "hdf5 <= 1.8.9"
        );
    }

    #[test]
    fn satisfies_is_symmetric_in_overlap() {
        // Range overlap is symmetric when the names match.
        let cases = [
            ("mpi = 1.0", "mpi >= 0.5"),
            ("mpi > 1.0", "mpi < 2.0"),
            ("mpi >= 3.0", "mpi <= 2.0"),
            ("mpi < 1.0", "mpi <= 1.0"),
        ];
        for (a, b) in cases {
            assert_eq!(sat(a, b), sat(b, a), "overlap({a},{b}) not symmetric");
        }
    }
}
