//! Scriptlets: the `%pre`/`%post`/`%preun`/`%postun` hooks RPM runs around
//! package install and erase.
//!
//! The paper warns that "updating packages automatically may cause
//! unexpected behavior in a production environment" — the concrete
//! mechanism is almost always a scriptlet with side effects. We model
//! scriptlets as declarative actions with a failure probability knob so the
//! update-strategy experiments in `xcbc-core::update` can inject realistic
//! breakage.

use serde::{Deserialize, Serialize};

/// When a scriptlet runs relative to the file operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScriptletPhase {
    /// Before the package's files are laid down.
    Pre,
    /// After the package's files are laid down.
    Post,
    /// Before the package's files are removed.
    PreUn,
    /// After the package's files are removed.
    PostUn,
}

impl ScriptletPhase {
    pub fn label(self) -> &'static str {
        match self {
            ScriptletPhase::Pre => "%pre",
            ScriptletPhase::Post => "%post",
            ScriptletPhase::PreUn => "%preun",
            ScriptletPhase::PostUn => "%postun",
        }
    }

    /// Phases that run on install-side elements.
    pub fn is_install_phase(self) -> bool {
        matches!(self, ScriptletPhase::Pre | ScriptletPhase::Post)
    }
}

/// A single scriptlet attached to a package.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scriptlet {
    pub phase: ScriptletPhase,
    /// Human-readable description of what the script does
    /// (e.g. "restart pbs_server", "ldconfig", "useradd slurm").
    pub action: String,
    /// Whether the action touches a running service — the paper's
    /// "unexpected behavior" risk concentrates here.
    pub restarts_service: bool,
}

impl Scriptlet {
    pub fn new(phase: ScriptletPhase, action: impl Into<String>) -> Self {
        Scriptlet {
            phase,
            action: action.into(),
            restarts_service: false,
        }
    }

    /// Mark this scriptlet as restarting a service (risky in production).
    pub fn restarting(mut self) -> Self {
        self.restarts_service = true;
        self
    }
}

/// One executed scriptlet in a transaction's trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScriptletTrace {
    pub package: String,
    pub phase: ScriptletPhase,
    pub action: String,
    pub succeeded: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_labels() {
        assert_eq!(ScriptletPhase::Pre.label(), "%pre");
        assert_eq!(ScriptletPhase::PostUn.label(), "%postun");
    }

    #[test]
    fn install_vs_erase_phases() {
        assert!(ScriptletPhase::Pre.is_install_phase());
        assert!(ScriptletPhase::Post.is_install_phase());
        assert!(!ScriptletPhase::PreUn.is_install_phase());
        assert!(!ScriptletPhase::PostUn.is_install_phase());
    }

    #[test]
    fn restarting_flag() {
        let s = Scriptlet::new(ScriptletPhase::Post, "service pbs_server restart").restarting();
        assert!(s.restarts_service);
        let s2 = Scriptlet::new(ScriptletPhase::Post, "ldconfig");
        assert!(!s2.restarts_service);
    }
}
