//! Ordered install/erase/upgrade transactions over an [`RpmDb`].
//!
//! Mirrors RPM's transaction-set flow: elements are added, the set is
//! *checked* against the database (unresolved requires, conflicts, file
//! conflicts, already-installed, not-installed), *ordered* so that
//! dependencies install before their dependents (Kahn's algorithm with
//! deterministic cycle-breaking, as RPM does for dependency loops), and
//! then *run*, producing a [`TransactionReport`] with a scriptlet trace.

use crate::db::RpmDb;
use crate::dep::Dependency;
use crate::package::Package;
use crate::scriptlet::ScriptletTrace;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::fmt;
use xcbc_fault::{FaultInjector, InjectionPoint};

/// One element of a transaction set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TransactionElement {
    /// Install a new package.
    Install(Package),
    /// Upgrade: install `new`, erase older instances of the same name
    /// (and anything it Obsoletes).
    Upgrade(Package),
    /// Erase an installed package by name.
    Erase(String),
}

impl TransactionElement {
    pub fn label(&self) -> String {
        match self {
            TransactionElement::Install(p) => format!("install {}", p.nevra),
            TransactionElement::Upgrade(p) => format!("upgrade {}", p.nevra),
            TransactionElement::Erase(n) => format!("erase {n}"),
        }
    }
}

/// A problem detected by [`TransactionSet::check`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TransactionProblem {
    /// A Requires of an incoming package is satisfied neither by the
    /// post-transaction database nor by another incoming package.
    UnresolvedRequire { package: String, require: String },
    /// An incoming package conflicts with an installed or incoming one.
    Conflict { package: String, with: String },
    /// Two packages in the result set would own the same file.
    FileConflict { path: String, a: String, b: String },
    /// Install of something already installed at the same or newer EVR.
    AlreadyInstalled { package: String },
    /// Erase of something not installed.
    NotInstalled { name: String },
    /// Erasing this package would break an installed package's Requires.
    BreaksDependents {
        erased: String,
        dependent: String,
        require: String,
    },
    /// Upgrade target is not actually newer.
    NotAnUpgrade { package: String, installed: String },
}

impl fmt::Display for TransactionProblem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransactionProblem::UnresolvedRequire { package, require } => {
                write!(f, "{package} requires {require} which is not provided")
            }
            TransactionProblem::Conflict { package, with } => {
                write!(f, "{package} conflicts with {with}")
            }
            TransactionProblem::FileConflict { path, a, b } => {
                write!(f, "file {path} conflicts between {a} and {b}")
            }
            TransactionProblem::AlreadyInstalled { package } => {
                write!(f, "{package} is already installed")
            }
            TransactionProblem::NotInstalled { name } => write!(f, "{name} is not installed"),
            TransactionProblem::BreaksDependents {
                erased,
                dependent,
                require,
            } => {
                write!(
                    f,
                    "erasing {erased} breaks {dependent} (requires {require})"
                )
            }
            TransactionProblem::NotAnUpgrade { package, installed } => {
                write!(f, "{package} is not newer than installed {installed}")
            }
        }
    }
}

/// Error returned by [`TransactionSet::run`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TransactionError {
    /// `check` found problems; the database was not touched.
    CheckFailed(Vec<TransactionProblem>),
    /// The set was empty.
    Empty,
    /// A scriptlet failed mid-transaction (fault-injected). The database
    /// was rolled back to its pre-transaction state; `completed` lists
    /// the element labels that had executed before the failure.
    ScriptletFailed {
        package: String,
        completed: Vec<String>,
    },
}

impl fmt::Display for TransactionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransactionError::CheckFailed(ps) => {
                writeln!(f, "transaction check failed ({} problems):", ps.len())?;
                for p in ps {
                    writeln!(f, "  - {p}")?;
                }
                Ok(())
            }
            TransactionError::Empty => write!(f, "empty transaction"),
            TransactionError::ScriptletFailed { package, completed } => write!(
                f,
                "scriptlet failed for {package} after {} element(s); transaction rolled back",
                completed.len()
            ),
        }
    }
}

impl std::error::Error for TransactionError {}

/// Result of a successful [`TransactionSet::run`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TransactionReport {
    /// Elements in execution order (labels).
    pub executed: Vec<String>,
    pub installed: Vec<String>,
    pub upgraded: Vec<String>,
    pub erased: Vec<String>,
    pub scriptlets: Vec<ScriptletTrace>,
    /// Net change in installed bytes (can be negative for erases).
    pub size_delta_bytes: i64,
}

/// A set of package operations applied atomically to an [`RpmDb`].
#[derive(Debug, Clone, Default)]
pub struct TransactionSet {
    elements: Vec<TransactionElement>,
}

impl TransactionSet {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    pub fn len(&self) -> usize {
        self.elements.len()
    }

    pub fn add_install(&mut self, p: Package) -> &mut Self {
        self.elements.push(TransactionElement::Install(p));
        self
    }

    pub fn add_upgrade(&mut self, p: Package) -> &mut Self {
        self.elements.push(TransactionElement::Upgrade(p));
        self
    }

    pub fn add_erase(&mut self, name: impl Into<String>) -> &mut Self {
        self.elements.push(TransactionElement::Erase(name.into()));
        self
    }

    pub fn elements(&self) -> &[TransactionElement] {
        &self.elements
    }

    fn incoming(&self) -> Vec<&Package> {
        self.elements
            .iter()
            .filter_map(|e| match e {
                TransactionElement::Install(p) | TransactionElement::Upgrade(p) => Some(p),
                TransactionElement::Erase(_) => None,
            })
            .collect()
    }

    fn erased_names(&self) -> HashSet<&str> {
        self.elements
            .iter()
            .filter_map(|e| match e {
                TransactionElement::Erase(n) => Some(n.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Names that will be *removed* from the db by this transaction
    /// (explicit erases + upgrade victims + obsoleted packages).
    fn removed_names(&self, db: &RpmDb) -> HashSet<String> {
        let mut removed: HashSet<String> =
            self.erased_names().iter().map(|s| s.to_string()).collect();
        for e in &self.elements {
            if let TransactionElement::Upgrade(p) = e {
                if db.is_installed(p.name()) {
                    removed.insert(p.name().to_string());
                }
                for ip in db.iter() {
                    if p.obsoletes_package(&ip.package) {
                        removed.insert(ip.package.name().to_string());
                    }
                }
            }
        }
        removed
    }

    /// Is `req` satisfied in the post-transaction world: by an incoming
    /// package, or by an installed package that is not being removed?
    fn satisfied_post(&self, db: &RpmDb, req: &Dependency, removed: &HashSet<String>) -> bool {
        if self.incoming().iter().any(|p| p.satisfies(req)) {
            return true;
        }
        db.whatprovides(req)
            .iter()
            .any(|ip| !removed.contains(ip.package.name()))
    }

    /// Run RPM's pre-flight checks. An empty vector means the transaction
    /// is sound and [`run`](Self::run) will succeed.
    pub fn check(&self, db: &RpmDb) -> Vec<TransactionProblem> {
        let mut problems = Vec::new();
        let removed = self.removed_names(db);
        let incoming = self.incoming();

        for e in &self.elements {
            match e {
                TransactionElement::Install(p) => {
                    if let Some(existing) = db.newest(p.name()) {
                        if existing.package.nevra.evr >= p.nevra.evr {
                            problems.push(TransactionProblem::AlreadyInstalled {
                                package: p.nevra.to_string(),
                            });
                        }
                    }
                }
                TransactionElement::Upgrade(p) => {
                    if let Some(existing) = db.newest(p.name()) {
                        if existing.package.nevra.evr >= p.nevra.evr {
                            problems.push(TransactionProblem::NotAnUpgrade {
                                package: p.nevra.to_string(),
                                installed: existing.package.nevra.to_string(),
                            });
                        }
                    }
                }
                TransactionElement::Erase(name) => {
                    if !db.is_installed(name) {
                        problems.push(TransactionProblem::NotInstalled { name: name.clone() });
                        continue;
                    }
                    // Would the erase break a surviving dependent?
                    for dependent in db.iter() {
                        if removed.contains(dependent.package.name()) {
                            continue;
                        }
                        for req in &dependent.package.requires {
                            let only_from_erased =
                                db.get(name).iter().any(|ip| ip.package.satisfies(req))
                                    && !self.satisfied_post(db, req, &removed);
                            if only_from_erased {
                                problems.push(TransactionProblem::BreaksDependents {
                                    erased: name.clone(),
                                    dependent: dependent.package.nevra.to_string(),
                                    require: req.to_string(),
                                });
                            }
                        }
                    }
                }
            }
        }

        // Requires of incoming packages.
        for p in &incoming {
            for req in &p.requires {
                if !self.satisfied_post(db, req, &removed) {
                    problems.push(TransactionProblem::UnresolvedRequire {
                        package: p.nevra.to_string(),
                        require: req.to_string(),
                    });
                }
            }
        }

        // Conflicts: incoming vs (surviving installed + other incoming).
        for p in &incoming {
            for conflict in &p.conflicts {
                for ip in db.whatprovides(conflict) {
                    if !removed.contains(ip.package.name()) && ip.package.name() != p.name() {
                        problems.push(TransactionProblem::Conflict {
                            package: p.nevra.to_string(),
                            with: ip.package.nevra.to_string(),
                        });
                    }
                }
                for other in &incoming {
                    if other.name() != p.name() && other.satisfies(conflict) {
                        problems.push(TransactionProblem::Conflict {
                            package: p.nevra.to_string(),
                            with: other.nevra.to_string(),
                        });
                    }
                }
            }
            // Reverse direction: surviving installed packages that conflict
            // with the incoming package.
            for ip in db.iter() {
                if removed.contains(ip.package.name()) || ip.package.name() == p.name() {
                    continue;
                }
                if ip.package.conflicts.iter().any(|c| p.satisfies(c)) {
                    problems.push(TransactionProblem::Conflict {
                        package: p.nevra.to_string(),
                        with: ip.package.nevra.to_string(),
                    });
                }
            }
        }

        // File conflicts among the post-transaction set.
        let mut owners: BTreeMap<&str, &Package> = BTreeMap::new();
        for p in &incoming {
            for f in &p.files {
                if let Some(other) = owners.get(f.as_str()) {
                    if other.name() != p.name() {
                        problems.push(TransactionProblem::FileConflict {
                            path: f.clone(),
                            a: other.nevra.to_string(),
                            b: p.nevra.to_string(),
                        });
                    }
                } else {
                    owners.insert(f, p);
                }
            }
        }
        for p in &incoming {
            for f in &p.files {
                for ip in db.iter() {
                    if removed.contains(ip.package.name()) || ip.package.name() == p.name() {
                        continue;
                    }
                    if ip.package.files.contains(f) {
                        problems.push(TransactionProblem::FileConflict {
                            path: f.clone(),
                            a: ip.package.nevra.to_string(),
                            b: p.nevra.to_string(),
                        });
                    }
                }
            }
        }

        problems
    }

    /// Topologically order the install-side elements so dependencies come
    /// first (Kahn's algorithm; ties and cycles broken by name order, the
    /// way RPM falls back on presentation order for dependency loops).
    /// Erases run last, in reverse-dependency order.
    pub fn order(&self) -> Vec<TransactionElement> {
        let incoming = self.incoming();
        let n = incoming.len();
        // edge u -> v  means "u must install before v" (v requires u).
        let mut before: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut indeg = vec![0usize; n];
        for (vi, v) in incoming.iter().enumerate() {
            for req in &v.requires {
                for (ui, u) in incoming.iter().enumerate() {
                    if ui != vi && u.satisfies(req) {
                        before[ui].push(vi);
                        indeg[vi] += 1;
                    }
                }
            }
        }
        // Deterministic Kahn: pick the ready node with the smallest name.
        let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order: Vec<usize> = Vec::with_capacity(n);
        let mut done = vec![false; n];
        while order.len() < n {
            ready.sort_by(|&a, &b| incoming[b].name().cmp(incoming[a].name()));
            let next = match ready.pop() {
                Some(i) => i,
                None => {
                    // Cycle: break it at the not-yet-done node with the
                    // smallest name.
                    let i = (0..n)
                        .filter(|&i| !done[i])
                        .min_by(|&a, &b| incoming[a].name().cmp(incoming[b].name()))
                        .expect("cycle-break candidate exists");
                    i
                }
            };
            if done[next] {
                continue;
            }
            done[next] = true;
            order.push(next);
            for &v in &before[next] {
                if indeg[v] > 0 {
                    indeg[v] -= 1;
                    if indeg[v] == 0 && !done[v] {
                        ready.push(v);
                    }
                }
            }
        }

        let mut out: Vec<TransactionElement> = Vec::with_capacity(self.elements.len());
        // Map ordered incoming packages back to their original elements.
        let mut used = vec![false; self.elements.len()];
        for &idx in &order {
            let target = incoming[idx];
            for (ei, e) in self.elements.iter().enumerate() {
                if used[ei] {
                    continue;
                }
                match e {
                    TransactionElement::Install(p) | TransactionElement::Upgrade(p)
                        if std::ptr::eq(p, target) =>
                    {
                        used[ei] = true;
                        out.push(e.clone());
                        break;
                    }
                    _ => {}
                }
            }
        }
        for (ei, e) in self.elements.iter().enumerate() {
            if !used[ei] {
                if let TransactionElement::Erase(_) = e {
                    out.push(e.clone());
                }
            }
        }
        out
    }

    /// Check, order, and execute the transaction against `db`.
    pub fn run(&self, db: &mut RpmDb) -> Result<TransactionReport, TransactionError> {
        self.preflight(db)?;
        Ok(self
            .execute(db, &mut |_| false)
            .expect("ungated execution cannot fail"))
    }

    /// Like [`run`](Self::run), but scriptlets can be failed by a
    /// `rpm.scriptlet` fault from `injector` (keyed by package name).
    /// On a scriptlet fault the database is rolled back to its
    /// pre-transaction state and
    /// [`TransactionError::ScriptletFailed`] reports how far execution
    /// had gotten.
    pub fn run_injected(
        &self,
        db: &mut RpmDb,
        injector: &mut FaultInjector,
    ) -> Result<TransactionReport, TransactionError> {
        self.preflight(db)?;
        let snapshot = db.clone();
        self.execute(db, &mut |p| {
            injector
                .should_fault(InjectionPoint::RpmScriptlet, p.name())
                .is_some()
        })
        .inspect_err(|_| *db = snapshot)
    }

    fn preflight(&self, db: &RpmDb) -> Result<(), TransactionError> {
        if self.is_empty() {
            return Err(TransactionError::Empty);
        }
        let problems = self.check(db);
        if !problems.is_empty() {
            return Err(TransactionError::CheckFailed(problems));
        }
        Ok(())
    }

    /// The execution loop shared by [`run`](Self::run) and
    /// [`run_injected`](Self::run_injected). `scriptlet_fails` is
    /// consulted once per install-side element, before its scriptlets
    /// run; a `true` aborts with [`TransactionError::ScriptletFailed`]
    /// (the caller owns rollback).
    fn execute(
        &self,
        db: &mut RpmDb,
        scriptlet_fails: &mut dyn FnMut(&Package) -> bool,
    ) -> Result<TransactionReport, TransactionError> {
        let mut report = TransactionReport::default();
        let ordered = self.order();
        let mut queue: VecDeque<TransactionElement> = ordered.into_iter().collect();
        while let Some(e) = queue.pop_front() {
            if let TransactionElement::Install(p) | TransactionElement::Upgrade(p) = &e {
                if scriptlet_fails(p) {
                    return Err(TransactionError::ScriptletFailed {
                        package: p.nevra.to_string(),
                        completed: report.executed,
                    });
                }
            }
            report.executed.push(e.label());
            match e {
                TransactionElement::Install(p) => {
                    run_scriptlets(&p, true, &mut report);
                    report.size_delta_bytes += p.size_bytes as i64;
                    report.installed.push(p.nevra.to_string());
                    db.install(p);
                }
                TransactionElement::Upgrade(p) => {
                    // Erase obsoleted + older same-name instances first.
                    let mut victims: Vec<String> = Vec::new();
                    if db.is_installed(p.name()) {
                        victims.push(p.name().to_string());
                    }
                    for ip in db.iter() {
                        if p.obsoletes_package(&ip.package) {
                            victims.push(ip.package.name().to_string());
                        }
                    }
                    victims.dedup();
                    run_scriptlets(&p, true, &mut report);
                    for v in victims {
                        for old in db.erase(&v) {
                            report.size_delta_bytes -= old.package.size_bytes as i64;
                            run_scriptlets(&old.package, false, &mut report);
                        }
                    }
                    report.size_delta_bytes += p.size_bytes as i64;
                    report.upgraded.push(p.nevra.to_string());
                    db.install(p);
                }
                TransactionElement::Erase(name) => {
                    for old in db.erase(&name) {
                        report.size_delta_bytes -= old.package.size_bytes as i64;
                        run_scriptlets(&old.package, false, &mut report);
                        report.erased.push(old.package.nevra.to_string());
                    }
                }
            }
        }
        Ok(report)
    }
}

fn run_scriptlets(p: &Package, install_side: bool, report: &mut TransactionReport) {
    for s in &p.scriptlets {
        if s.phase.is_install_phase() == install_side {
            report.scriptlets.push(ScriptletTrace {
                package: p.nevra.to_string(),
                phase: s.phase,
                action: s.action.clone(),
                succeeded: true,
            });
        }
    }
}

/// Convenience: build an upgrade transaction that takes `db` from its
/// current contents to the newest EVR available in `candidates` for every
/// installed name (the core of `yum update`).
pub fn upgrade_all<'a>(
    db: &RpmDb,
    candidates: impl IntoIterator<Item = &'a Package>,
) -> TransactionSet {
    let mut best: BTreeMap<&str, &Package> = BTreeMap::new();
    for c in candidates {
        if let Some(installed) = db.newest(c.name()) {
            if c.nevra.evr > installed.package.nevra.evr {
                let slot = best.entry(c.name()).or_insert(c);
                if c.nevra.evr > slot.nevra.evr {
                    *slot = c;
                }
            }
        }
    }
    let mut tx = TransactionSet::new();
    for (_, p) in best {
        tx.add_upgrade(p.clone());
    }
    tx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PackageBuilder;
    use crate::scriptlet::{Scriptlet, ScriptletPhase};

    #[test]
    fn empty_transaction_is_error() {
        let mut db = RpmDb::new();
        assert!(matches!(
            TransactionSet::new().run(&mut db),
            Err(TransactionError::Empty)
        ));
    }

    #[test]
    fn simple_install() {
        let mut db = RpmDb::new();
        let mut tx = TransactionSet::new();
        tx.add_install(
            PackageBuilder::new("gcc", "4.4.7", "17")
                .size_mb(80)
                .build(),
        );
        let report = tx.run(&mut db).unwrap();
        assert_eq!(report.installed, vec!["gcc-4.4.7-17.x86_64"]);
        assert_eq!(report.size_delta_bytes, 80 << 20);
        assert!(db.is_installed("gcc"));
    }

    #[test]
    fn unresolved_require_rejected() {
        let mut db = RpmDb::new();
        let mut tx = TransactionSet::new();
        tx.add_install(
            PackageBuilder::new("gromacs", "4.6.5", "2")
                .requires_simple("mpi")
                .build(),
        );
        match tx.run(&mut db) {
            Err(TransactionError::CheckFailed(ps)) => {
                assert!(matches!(
                    ps[0],
                    TransactionProblem::UnresolvedRequire { .. }
                ))
            }
            other => panic!("expected check failure, got {other:?}"),
        }
        assert!(db.is_empty(), "failed transaction must not touch the db");
    }

    #[test]
    fn require_satisfied_by_co_installed() {
        let mut db = RpmDb::new();
        let mut tx = TransactionSet::new();
        tx.add_install(
            PackageBuilder::new("gromacs", "4.6.5", "2")
                .requires_simple("mpi")
                .build(),
        );
        tx.add_install(
            PackageBuilder::new("openmpi", "1.6.5", "1")
                .provides_versioned("mpi")
                .build(),
        );
        assert!(tx.check(&db).is_empty());
        let report = tx.run(&mut db).unwrap();
        // dependency must be installed first
        let pos_mpi = report
            .executed
            .iter()
            .position(|l| l.contains("openmpi"))
            .unwrap();
        let pos_gro = report
            .executed
            .iter()
            .position(|l| l.contains("gromacs"))
            .unwrap();
        assert!(
            pos_mpi < pos_gro,
            "openmpi must install before gromacs: {:?}",
            report.executed
        );
    }

    #[test]
    fn ordering_is_topological_chain() {
        let mut tx = TransactionSet::new();
        tx.add_install(
            PackageBuilder::new("c", "1", "1")
                .requires_simple("b")
                .build(),
        );
        tx.add_install(PackageBuilder::new("a", "1", "1").build());
        tx.add_install(
            PackageBuilder::new("b", "1", "1")
                .requires_simple("a")
                .build(),
        );
        let order: Vec<String> = tx.order().iter().map(|e| e.label()).collect();
        let pos = |n: &str| {
            order
                .iter()
                .position(|l| l.contains(&format!("install {n}-")))
                .unwrap()
        };
        assert!(pos("a") < pos("b"));
        assert!(pos("b") < pos("c"));
    }

    #[test]
    fn cycle_is_broken_deterministically() {
        let mut tx = TransactionSet::new();
        tx.add_install(
            PackageBuilder::new("x", "1", "1")
                .requires_simple("y")
                .build(),
        );
        tx.add_install(
            PackageBuilder::new("y", "1", "1")
                .requires_simple("x")
                .build(),
        );
        let order = tx.order();
        assert_eq!(order.len(), 2);
        let mut db = RpmDb::new();
        tx.run(&mut db).unwrap();
        assert!(db.is_installed("x") && db.is_installed("y"));
    }

    #[test]
    fn conflict_with_installed_rejected() {
        let mut db = RpmDb::new();
        db.install(PackageBuilder::new("slurm", "14.03", "1").build());
        let mut tx = TransactionSet::new();
        tx.add_install(
            PackageBuilder::new("torque", "4.2.10", "1")
                .conflicts_spec("slurm")
                .build(),
        );
        let ps = tx.check(&db);
        assert!(ps
            .iter()
            .any(|p| matches!(p, TransactionProblem::Conflict { .. })));
    }

    #[test]
    fn conflict_resolved_by_erasing_other_side() {
        // The paper's XNIT workflow: "change the schedulers" — erase slurm,
        // install torque, in one transaction.
        let mut db = RpmDb::new();
        db.install(PackageBuilder::new("slurm", "14.03", "1").build());
        let mut tx = TransactionSet::new();
        tx.add_erase("slurm");
        tx.add_install(
            PackageBuilder::new("torque", "4.2.10", "1")
                .conflicts_spec("slurm")
                .build(),
        );
        assert!(tx.check(&db).is_empty(), "{:?}", tx.check(&db));
        tx.run(&mut db).unwrap();
        assert!(db.is_installed("torque"));
        assert!(!db.is_installed("slurm"));
    }

    #[test]
    fn reverse_conflict_detected() {
        let mut db = RpmDb::new();
        db.install(
            PackageBuilder::new("torque", "4.2.10", "1")
                .conflicts_spec("slurm")
                .build(),
        );
        let mut tx = TransactionSet::new();
        tx.add_install(PackageBuilder::new("slurm", "14.03", "1").build());
        let ps = tx.check(&db);
        assert!(ps
            .iter()
            .any(|p| matches!(p, TransactionProblem::Conflict { .. })));
    }

    #[test]
    fn erase_that_breaks_dependent_rejected() {
        let mut db = RpmDb::new();
        db.install(
            PackageBuilder::new("openmpi", "1.6.5", "1")
                .provides_versioned("mpi")
                .build(),
        );
        db.install(
            PackageBuilder::new("gromacs", "4.6.5", "2")
                .requires_simple("mpi")
                .build(),
        );
        let mut tx = TransactionSet::new();
        tx.add_erase("openmpi");
        let ps = tx.check(&db);
        assert!(ps
            .iter()
            .any(|p| matches!(p, TransactionProblem::BreaksDependents { .. })));
    }

    #[test]
    fn erase_ok_when_replacement_provided() {
        let mut db = RpmDb::new();
        db.install(
            PackageBuilder::new("openmpi", "1.6.5", "1")
                .provides_versioned("mpi")
                .build(),
        );
        db.install(
            PackageBuilder::new("gromacs", "4.6.5", "2")
                .requires_simple("mpi")
                .build(),
        );
        let mut tx = TransactionSet::new();
        tx.add_erase("openmpi");
        tx.add_install(
            PackageBuilder::new("mpich2", "1.4.1", "1")
                .provides_versioned("mpi")
                .build(),
        );
        assert!(tx.check(&db).is_empty(), "{:?}", tx.check(&db));
    }

    #[test]
    fn upgrade_replaces_old_and_runs_scriptlets() {
        let mut db = RpmDb::new();
        db.install(
            PackageBuilder::new("R", "3.0.2", "1.el6")
                .size_mb(60)
                .scriptlet(Scriptlet::new(ScriptletPhase::PostUn, "cleanup R 3.0"))
                .build(),
        );
        let mut tx = TransactionSet::new();
        tx.add_upgrade(
            PackageBuilder::new("R", "3.1.0", "1.el6")
                .size_mb(70)
                .scriptlet(Scriptlet::new(ScriptletPhase::Post, "register R 3.1"))
                .build(),
        );
        let report = tx.run(&mut db).unwrap();
        assert_eq!(db.get("R").len(), 1);
        assert_eq!(db.newest("R").unwrap().package.evr().version, "3.1.0");
        assert_eq!(report.size_delta_bytes, (70i64 - 60) << 20);
        assert!(report
            .scriptlets
            .iter()
            .any(|s| s.action == "register R 3.1"));
        assert!(report
            .scriptlets
            .iter()
            .any(|s| s.action == "cleanup R 3.0"));
    }

    #[test]
    fn downgrade_rejected_as_upgrade() {
        let mut db = RpmDb::new();
        db.install(PackageBuilder::new("R", "3.1.0", "1").build());
        let mut tx = TransactionSet::new();
        tx.add_upgrade(PackageBuilder::new("R", "3.0.2", "1").build());
        let ps = tx.check(&db);
        assert!(ps
            .iter()
            .any(|p| matches!(p, TransactionProblem::NotAnUpgrade { .. })));
    }

    #[test]
    fn obsoletes_pulls_out_old_package() {
        let mut db = RpmDb::new();
        db.install(PackageBuilder::new("pbs", "2.3.16", "1").build());
        let mut tx = TransactionSet::new();
        tx.add_upgrade(
            PackageBuilder::new("torque", "4.2.10", "1")
                .obsoletes(Dependency::parse("pbs < 3.0"))
                .build(),
        );
        tx.run(&mut db).unwrap();
        assert!(db.is_installed("torque"));
        assert!(!db.is_installed("pbs"));
    }

    #[test]
    fn file_conflict_between_incoming_rejected() {
        let db = RpmDb::new();
        let mut tx = TransactionSet::new();
        tx.add_install(
            PackageBuilder::new("a", "1", "1")
                .file("/usr/bin/tool")
                .build(),
        );
        tx.add_install(
            PackageBuilder::new("b", "1", "1")
                .file("/usr/bin/tool")
                .build(),
        );
        let ps = tx.check(&db);
        assert!(ps
            .iter()
            .any(|p| matches!(p, TransactionProblem::FileConflict { .. })));
    }

    #[test]
    fn already_installed_rejected() {
        let mut db = RpmDb::new();
        db.install(PackageBuilder::new("gcc", "4.4.7", "17").build());
        let mut tx = TransactionSet::new();
        tx.add_install(PackageBuilder::new("gcc", "4.4.7", "17").build());
        let ps = tx.check(&db);
        assert!(ps
            .iter()
            .any(|p| matches!(p, TransactionProblem::AlreadyInstalled { .. })));
    }

    #[test]
    fn erase_not_installed_rejected() {
        let db = RpmDb::new();
        let mut tx = TransactionSet::new();
        tx.add_erase("ghost");
        let ps = tx.check(&db);
        assert!(ps
            .iter()
            .any(|p| matches!(p, TransactionProblem::NotInstalled { .. })));
    }

    #[test]
    fn upgrade_all_builds_minimal_set() {
        let mut db = RpmDb::new();
        db.install(PackageBuilder::new("R", "3.0.2", "1").build());
        db.install(PackageBuilder::new("gcc", "4.4.7", "17").build());
        let candidates = [
            PackageBuilder::new("R", "3.1.0", "1").build(),
            PackageBuilder::new("R", "3.1.1", "1").build(),
            PackageBuilder::new("gcc", "4.4.7", "17").build(), // same, skipped
            PackageBuilder::new("newpkg", "1.0", "1").build(), // not installed, skipped
        ];
        let tx = upgrade_all(&db, candidates.iter());
        assert_eq!(tx.len(), 1);
        assert_eq!(tx.elements()[0].label(), "upgrade R-3.1.1-1.x86_64");
    }

    #[test]
    fn injected_scriptlet_fault_rolls_back_cleanly() {
        use xcbc_fault::{FaultPlan, FaultWindow, InjectionPoint};
        let mut db = RpmDb::new();
        db.install(PackageBuilder::new("base", "1", "1").build());
        let before = db.clone();
        let mut tx = TransactionSet::new();
        tx.add_install(
            PackageBuilder::new("openmpi", "1.6.5", "1")
                .provides_versioned("mpi")
                .build(),
        );
        tx.add_install(
            PackageBuilder::new("gromacs", "4.6.5", "2")
                .requires_simple("mpi")
                .scriptlet(Scriptlet::new(ScriptletPhase::Post, "register gromacs"))
                .build(),
        );
        let plan = FaultPlan::new(3).fail(
            InjectionPoint::RpmScriptlet,
            Some("gromacs"),
            FaultWindow::Always,
        );
        let mut inj = plan.injector();
        match tx.run_injected(&mut db, &mut inj) {
            Err(TransactionError::ScriptletFailed { package, completed }) => {
                assert!(package.contains("gromacs"));
                // openmpi orders first, so one element had executed.
                assert_eq!(completed, vec!["install openmpi-1.6.5-1.x86_64"]);
            }
            other => panic!("expected scriptlet failure, got {other:?}"),
        }
        assert_eq!(db, before, "rollback must restore the pre-transaction db");
        assert!(
            !db.is_installed("openmpi"),
            "partial installs must be undone"
        );
    }

    #[test]
    fn injected_run_without_matching_fault_behaves_like_run() {
        use xcbc_fault::FaultPlan;
        let mut db_a = RpmDb::new();
        let mut db_b = RpmDb::new();
        let mut tx = TransactionSet::new();
        tx.add_install(
            PackageBuilder::new("gcc", "4.4.7", "17")
                .size_mb(80)
                .build(),
        );
        let plain = tx.run(&mut db_a).unwrap();
        let mut inj = FaultPlan::new(5).injector();
        let injected = tx.run_injected(&mut db_b, &mut inj).unwrap();
        assert_eq!(plain.executed, injected.executed);
        assert_eq!(db_a, db_b);
        assert_eq!(inj.injected_count(), 0);
    }

    #[test]
    fn install_erase_roundtrip_restores_db() {
        let mut db = RpmDb::new();
        let before = db.len();
        let mut tx = TransactionSet::new();
        tx.add_install(
            PackageBuilder::new("valgrind", "3.8.1", "3")
                .file("/usr/bin/valgrind")
                .build(),
        );
        tx.run(&mut db).unwrap();
        let mut tx2 = TransactionSet::new();
        tx2.add_erase("valgrind");
        let report = tx2.run(&mut db).unwrap();
        assert_eq!(db.len(), before);
        assert_eq!(report.erased.len(), 1);
        assert_eq!(db.installed_size_bytes(), 0);
    }
}
