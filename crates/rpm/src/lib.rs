//! # xcbc-rpm — RPM package substrate
//!
//! A from-scratch reimplementation of the parts of RPM that the XCBC/XNIT
//! toolchain (CLUSTER 2015) depends on: the `[epoch:]version-release`
//! ordering algorithm (`rpmvercmp`), versioned dependency specs
//! (Provides/Requires/Conflicts/Obsoletes), an installed-package database,
//! and ordered install/erase/upgrade transactions with scriptlet tracing.
//!
//! The paper's XNIT distribution is "based on the Yum repository for
//! installation or updates of RPMs"; everything in the higher layers
//! (`xcbc-yum`, `xcbc-rocks`, `xcbc-core`) is built on the types here.
//!
//! ## Quick example
//!
//! ```
//! use xcbc_rpm::{PackageBuilder, RpmDb, TransactionSet, Evr};
//!
//! let openmpi = PackageBuilder::new("openmpi", "1.6.5", "1.el6")
//!     .summary("Open MPI message passing library")
//!     .provides_simple("mpi")
//!     .build();
//! let gromacs = PackageBuilder::new("gromacs", "4.6.5", "2.el6")
//!     .requires_simple("mpi")
//!     .build();
//!
//! let mut db = RpmDb::new();
//! let mut tx = TransactionSet::new();
//! tx.add_install(openmpi);
//! tx.add_install(gromacs);
//! assert!(tx.check(&db).is_empty());
//! tx.run(&mut db).unwrap();
//! assert!(db.is_installed("gromacs"));
//! assert!(Evr::parse("2:1.0-1") > Evr::parse("1.2-5"));
//! ```

pub mod arch;
pub mod builder;
pub mod db;
pub mod dep;
pub mod evr;
pub mod package;
pub mod query;
pub mod scriptlet;
pub mod spec;
pub mod transaction;

pub use arch::Arch;
pub use builder::PackageBuilder;
pub use db::{InstalledPackage, RpmDb, VerifyProblem};
pub use dep::{DepFlag, Dependency};
pub use evr::{rpmvercmp, Evr};
pub use package::{Nevra, Package, PackageGroup};
pub use query::{query_all, query_file_owner, query_files, query_format, query_info};
pub use scriptlet::{Scriptlet, ScriptletPhase, ScriptletTrace};
pub use spec::{parse_spec, SpecError};
pub use transaction::{
    upgrade_all, TransactionElement, TransactionError, TransactionProblem, TransactionReport,
    TransactionSet,
};
