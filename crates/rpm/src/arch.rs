//! Package architectures and compatibility.
//!
//! XCBC targets x86_64 CentOS (the paper stresses that Raspberry-Pi-class
//! ARM systems are "not based on the x86 instruction set" and therefore
//! unsuitable); we model the small architecture lattice a CentOS 6 yum
//! stack actually deals with.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Machine architecture of a package or host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Arch {
    /// 64-bit x86 — the XSEDE/XCBC baseline.
    X86_64,
    /// 32-bit x86, installable on x86_64 hosts (multilib).
    I686,
    /// Architecture-independent (scripts, data, Java).
    Noarch,
    /// Source package.
    Src,
    /// ARM (e.g. Raspberry Pi) — present so we can model *incompatibility*.
    Armv7,
}

impl Arch {
    /// Can a package of architecture `self` be installed on a host of
    /// architecture `host`?
    ///
    /// ```
    /// use xcbc_rpm::Arch;
    /// assert!(Arch::Noarch.installable_on(Arch::X86_64));
    /// assert!(Arch::I686.installable_on(Arch::X86_64));
    /// assert!(!Arch::X86_64.installable_on(Arch::Armv7));
    /// ```
    pub fn installable_on(self, host: Arch) -> bool {
        match self {
            Arch::Noarch => true,
            Arch::Src => false,
            Arch::X86_64 => host == Arch::X86_64,
            Arch::I686 => matches!(host, Arch::X86_64 | Arch::I686),
            Arch::Armv7 => host == Arch::Armv7,
        }
    }

    /// Preference score when several candidates provide the same thing:
    /// native 64-bit beats multilib 32-bit beats noarch ties.
    pub fn preference_on(self, host: Arch) -> u8 {
        if !self.installable_on(host) {
            return 0;
        }
        match (self, host) {
            (Arch::X86_64, Arch::X86_64) | (Arch::Armv7, Arch::Armv7) => 3,
            (Arch::I686, Arch::I686) => 3,
            (Arch::Noarch, _) => 2,
            (Arch::I686, Arch::X86_64) => 1,
            _ => 1,
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            Arch::X86_64 => "x86_64",
            Arch::I686 => "i686",
            Arch::Noarch => "noarch",
            Arch::Src => "src",
            Arch::Armv7 => "armv7hl",
        }
    }
}

impl fmt::Display for Arch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Arch {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "x86_64" => Ok(Arch::X86_64),
            "i686" | "i386" | "i586" => Ok(Arch::I686),
            "noarch" => Ok(Arch::Noarch),
            "src" => Ok(Arch::Src),
            "armv7hl" | "armv7" | "arm" => Ok(Arch::Armv7),
            other => Err(format!("unknown architecture: {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noarch_installs_everywhere() {
        for host in [Arch::X86_64, Arch::I686, Arch::Armv7] {
            assert!(Arch::Noarch.installable_on(host));
        }
    }

    #[test]
    fn src_installs_nowhere() {
        for host in [Arch::X86_64, Arch::I686, Arch::Armv7] {
            assert!(!Arch::Src.installable_on(host));
        }
    }

    #[test]
    fn multilib() {
        assert!(Arch::I686.installable_on(Arch::X86_64));
        assert!(!Arch::X86_64.installable_on(Arch::I686));
    }

    #[test]
    fn arm_is_isolated() {
        assert!(!Arch::Armv7.installable_on(Arch::X86_64));
        assert!(!Arch::X86_64.installable_on(Arch::Armv7));
        assert!(Arch::Armv7.installable_on(Arch::Armv7));
    }

    #[test]
    fn native_preferred_over_multilib_over_incompatible() {
        let host = Arch::X86_64;
        assert!(Arch::X86_64.preference_on(host) > Arch::Noarch.preference_on(host));
        assert!(Arch::Noarch.preference_on(host) > Arch::I686.preference_on(host));
        assert_eq!(Arch::Armv7.preference_on(host), 0);
    }

    #[test]
    fn parse_roundtrip() {
        for a in [
            Arch::X86_64,
            Arch::I686,
            Arch::Noarch,
            Arch::Src,
            Arch::Armv7,
        ] {
            assert_eq!(a.as_str().parse::<Arch>().unwrap(), a);
        }
        assert!("mips".parse::<Arch>().is_err());
        assert_eq!("i386".parse::<Arch>().unwrap(), Arch::I686);
    }
}
