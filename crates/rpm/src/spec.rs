//! Minimal RPM `.spec` file parsing — the packaging pipeline.
//!
//! The XCBC team's day job is *packaging*: "the common software packages
//! and configurations on XSEDE resources packaged for local clusters."
//! This module parses the subset of spec syntax needed to turn a recipe
//! into a [`Package`]: the preamble tags, `%description`, `%files`, and
//! the scriptlet sections.

use crate::builder::PackageBuilder;
use crate::dep::Dependency;
use crate::package::{Package, PackageGroup};
use crate::scriptlet::{Scriptlet, ScriptletPhase};

/// Errors from spec parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    MissingTag(&'static str),
    UnknownSection { line_no: usize, section: String },
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::MissingTag(t) => write!(f, "spec is missing the {t} tag"),
            SpecError::UnknownSection { line_no, section } => {
                write!(f, "line {line_no}: unknown section %{section}")
            }
        }
    }
}

impl std::error::Error for SpecError {}

fn group_from(s: &str) -> PackageGroup {
    match s.trim() {
        "Applications/Engineering" | "Applications/Science" => PackageGroup::ScientificApplications,
        "Development/Languages" | "Development/Libraries" | "Development/Tools" => {
            PackageGroup::CompilersLibraries
        }
        "System Environment/Daemons" => PackageGroup::SchedulerResourceManager,
        _ => PackageGroup::Other,
    }
}

/// Parse a spec file into a buildable [`Package`].
///
/// ```
/// use xcbc_rpm::spec::parse_spec;
/// let spec = "\
/// Name: gromacs
/// Version: 4.6.5
/// Release: 2.el6
/// Summary: GROMACS molecular dynamics
/// License: GPLv2
/// Group: Applications/Science
/// Requires: openmpi
/// Requires: fftw >= 3.3
///
/// %description
/// Fast molecular dynamics.
///
/// %post
/// /sbin/ldconfig
///
/// %files
/// /usr/bin/mdrun
/// /usr/bin/grompp
/// ";
/// let pkg = parse_spec(spec).unwrap();
/// assert_eq!(pkg.name(), "gromacs");
/// assert_eq!(pkg.requires.len(), 2);
/// assert_eq!(pkg.files.len(), 2);
/// ```
pub fn parse_spec(text: &str) -> Result<Package, SpecError> {
    #[derive(PartialEq)]
    enum Section {
        Preamble,
        Description,
        Files,
        Script(ScriptletPhase),
        Ignored,
    }

    let mut name = None;
    let mut version = None;
    let mut release = None;
    let mut summary = String::new();
    let mut license = String::new();
    let mut group = PackageGroup::Other;
    let mut requires: Vec<Dependency> = Vec::new();
    let mut provides: Vec<Dependency> = Vec::new();
    let mut conflicts: Vec<Dependency> = Vec::new();
    let mut obsoletes: Vec<Dependency> = Vec::new();
    let mut files: Vec<String> = Vec::new();
    let mut scriptlets: Vec<Scriptlet> = Vec::new();

    let mut section = Section::Preamble;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('%') {
            let word = rest.split_whitespace().next().unwrap_or("");
            section = match word {
                "description" => Section::Description,
                "files" => Section::Files,
                "pre" => Section::Script(ScriptletPhase::Pre),
                "post" => Section::Script(ScriptletPhase::Post),
                "preun" => Section::Script(ScriptletPhase::PreUn),
                "postun" => Section::Script(ScriptletPhase::PostUn),
                "prep" | "build" | "install" | "clean" | "changelog" | "check" => Section::Ignored,
                other => {
                    return Err(SpecError::UnknownSection {
                        line_no: i + 1,
                        section: other.to_string(),
                    })
                }
            };
            continue;
        }
        if line.is_empty() {
            continue;
        }
        match &section {
            Section::Preamble => {
                if let Some((tag, value)) = line.split_once(':') {
                    let value = value.trim();
                    match tag.trim() {
                        "Name" => name = Some(value.to_string()),
                        "Version" => version = Some(value.to_string()),
                        "Release" => release = Some(value.to_string()),
                        "Summary" => summary = value.to_string(),
                        "License" => license = value.to_string(),
                        "Group" => group = group_from(value),
                        "Requires" => requires.push(Dependency::parse(value)),
                        "Provides" => provides.push(Dependency::parse(value)),
                        "Conflicts" => conflicts.push(Dependency::parse(value)),
                        "Obsoletes" => obsoletes.push(Dependency::parse(value)),
                        // BuildRequires, Source0, URL, ... parsed but unused
                        _ => {}
                    }
                }
            }
            Section::Description => {
                if summary.is_empty() {
                    summary = line.to_string();
                }
            }
            Section::Files => files.push(line.to_string()),
            Section::Script(phase) => {
                let restarting = line.contains("service") && line.contains("restart");
                let mut s = Scriptlet::new(*phase, line);
                if restarting {
                    s = s.restarting();
                }
                scriptlets.push(s);
            }
            Section::Ignored => {}
        }
    }

    let name = name.ok_or(SpecError::MissingTag("Name"))?;
    let version = version.ok_or(SpecError::MissingTag("Version"))?;
    let release = release.ok_or(SpecError::MissingTag("Release"))?;

    let mut b = PackageBuilder::new(&name, &version, &release)
        .summary(summary)
        .group(group);
    if !license.is_empty() {
        b = b.license(license);
    }
    for d in requires {
        b = b.requires(d);
    }
    for d in provides {
        b = b.provides(d);
    }
    for d in conflicts {
        b = b.conflicts(d);
    }
    for d in obsoletes {
        b = b.obsoletes(d);
    }
    b = b.files(files);
    for s in scriptlets {
        b = b.scriptlet(s);
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = "\
# XCBC packaging for torque
Name: torque
Version: 4.2.6
Release: 1.el6
Summary: Torque resource manager
License: OpenPBS
Group: System Environment/Daemons
Provides: pbs = 4.2.6
Conflicts: slurm
Obsoletes: openpbs < 3.0

%description
Batch system.

%prep
rm -rf build

%post
/sbin/chkconfig --add pbs_server
service pbs_server restart

%postun
userdel pbs

%files
/usr/bin/qsub
/usr/sbin/pbs_server
";

    #[test]
    fn full_spec_parses() {
        let p = parse_spec(SPEC).unwrap();
        assert_eq!(p.nevra.to_string(), "torque-4.2.6-1.el6.x86_64");
        assert_eq!(p.license, "OpenPBS");
        assert_eq!(p.group, PackageGroup::SchedulerResourceManager);
        assert_eq!(p.provides.len(), 1);
        assert_eq!(p.conflicts.len(), 1);
        assert_eq!(p.obsoletes.len(), 1);
        assert_eq!(p.files, vec!["/usr/bin/qsub", "/usr/sbin/pbs_server"]);
        assert_eq!(p.scriptlets.len(), 3);
        assert!(p.scriptlets.iter().any(|s| s.restarts_service));
        assert_eq!(p.summary, "Torque resource manager");
    }

    #[test]
    fn description_fills_missing_summary() {
        let p = parse_spec(
            "Name: x\nVersion: 1\nRelease: 1\n%description\nFirst line wins.\nSecond ignored.\n",
        )
        .unwrap();
        assert_eq!(p.summary, "First line wins.");
    }

    #[test]
    fn missing_tags_rejected() {
        assert_eq!(
            parse_spec("Version: 1\nRelease: 1\n"),
            Err(SpecError::MissingTag("Name"))
        );
        assert_eq!(
            parse_spec("Name: x\nRelease: 1\n"),
            Err(SpecError::MissingTag("Version"))
        );
        assert_eq!(
            parse_spec("Name: x\nVersion: 1\n"),
            Err(SpecError::MissingTag("Release"))
        );
    }

    #[test]
    fn unknown_section_rejected() {
        let err = parse_spec("Name: x\nVersion: 1\nRelease: 1\n%frobnicate\n").unwrap_err();
        assert!(matches!(err, SpecError::UnknownSection { line_no: 4, .. }));
    }

    #[test]
    fn build_sections_ignored() {
        let p = parse_spec(
            "Name: x\nVersion: 1\nRelease: 1\n%build\nmake -j4\n%install\nmake install\n%files\n/usr/bin/x\n",
        )
        .unwrap();
        assert_eq!(p.files.len(), 1);
    }

    #[test]
    fn parsed_package_installs() {
        let p = parse_spec(SPEC).unwrap();
        let mut db = crate::RpmDb::new();
        let mut tx = crate::TransactionSet::new();
        tx.add_install(p);
        tx.run(&mut db).unwrap();
        assert!(db.is_installed("torque"));
        assert!(db.provides(&Dependency::parse("pbs >= 4.0")));
    }

    #[test]
    fn versioned_requires_parse() {
        let p = parse_spec("Name: x\nVersion: 1\nRelease: 1\nRequires: fftw >= 3.3\n").unwrap();
        assert_eq!(p.requires[0].to_string(), "fftw >= 3.3");
    }
}
