//! Fluent construction of [`Package`] values.
//!
//! The XCBC catalog in `xcbc-core` declares ~190 packages; the builder
//! keeps those declarations one-liners.

use crate::arch::Arch;
use crate::dep::{DepFlag, Dependency};
use crate::evr::Evr;
use crate::package::{Nevra, Package, PackageGroup};
use crate::scriptlet::Scriptlet;

/// Builder for [`Package`].
///
/// ```
/// use xcbc_rpm::{PackageBuilder, PackageGroup, Arch};
/// let pkg = PackageBuilder::new("lammps", "2014.06.28", "1.el6")
///     .group(PackageGroup::ScientificApplications)
///     .summary("LAMMPS molecular dynamics")
///     .requires_simple("openmpi")
///     .size_mb(120)
///     .build();
/// assert_eq!(pkg.arch(), Arch::X86_64);
/// ```
#[derive(Debug, Clone)]
pub struct PackageBuilder {
    pkg: Package,
}

impl PackageBuilder {
    /// Start a new x86_64 package with the given name/version/release.
    pub fn new(name: &str, version: &str, release: &str) -> Self {
        PackageBuilder {
            pkg: Package {
                nevra: Nevra::new(name, Evr::new(0, version, release), Arch::X86_64),
                summary: String::new(),
                license: "Open Source".to_string(),
                group: PackageGroup::Other,
                size_bytes: 1 << 20,
                provides: Vec::new(),
                requires: Vec::new(),
                conflicts: Vec::new(),
                obsoletes: Vec::new(),
                files: Vec::new(),
                scriptlets: Vec::new(),
                buildtime: 0,
            },
        }
    }

    pub fn epoch(mut self, epoch: u32) -> Self {
        self.pkg.nevra.evr.epoch = epoch;
        self
    }

    pub fn arch(mut self, arch: Arch) -> Self {
        self.pkg.nevra.arch = arch;
        self
    }

    pub fn summary(mut self, s: impl Into<String>) -> Self {
        self.pkg.summary = s.into();
        self
    }

    pub fn license(mut self, s: impl Into<String>) -> Self {
        self.pkg.license = s.into();
        self
    }

    pub fn group(mut self, g: PackageGroup) -> Self {
        self.pkg.group = g;
        self
    }

    pub fn size_bytes(mut self, n: u64) -> Self {
        self.pkg.size_bytes = n;
        self
    }

    pub fn size_mb(self, n: u64) -> Self {
        self.size_bytes(n << 20)
    }

    pub fn buildtime(mut self, t: u64) -> Self {
        self.pkg.buildtime = t;
        self
    }

    pub fn provides(mut self, d: Dependency) -> Self {
        self.pkg.provides.push(d);
        self
    }

    /// Unversioned Provides.
    pub fn provides_simple(self, name: &str) -> Self {
        let d = Dependency::any(name);
        self.provides(d)
    }

    /// Versioned Provides at this package's own EVR.
    pub fn provides_versioned(self, name: &str) -> Self {
        let evr = self.pkg.nevra.evr.clone();
        self.provides(Dependency::versioned(name, DepFlag::Eq, evr))
    }

    pub fn requires(mut self, d: Dependency) -> Self {
        self.pkg.requires.push(d);
        self
    }

    /// Unversioned Requires.
    pub fn requires_simple(self, name: &str) -> Self {
        let d = Dependency::any(name);
        self.requires(d)
    }

    /// Parse-and-add Requires (`"hdf5 >= 1.8"`).
    pub fn requires_spec(self, spec: &str) -> Self {
        let d = Dependency::parse(spec);
        self.requires(d)
    }

    pub fn conflicts(mut self, d: Dependency) -> Self {
        self.pkg.conflicts.push(d);
        self
    }

    pub fn conflicts_spec(self, spec: &str) -> Self {
        let d = Dependency::parse(spec);
        self.conflicts(d)
    }

    pub fn obsoletes(mut self, d: Dependency) -> Self {
        self.pkg.obsoletes.push(d);
        self
    }

    pub fn file(mut self, path: impl Into<String>) -> Self {
        self.pkg.files.push(path.into());
        self
    }

    pub fn files<I: IntoIterator<Item = S>, S: Into<String>>(mut self, paths: I) -> Self {
        self.pkg.files.extend(paths.into_iter().map(Into::into));
        self
    }

    pub fn scriptlet(mut self, s: Scriptlet) -> Self {
        self.pkg.scriptlets.push(s);
        self
    }

    pub fn build(self) -> Package {
        self.pkg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scriptlet::ScriptletPhase;

    #[test]
    fn defaults() {
        let p = PackageBuilder::new("gcc", "4.4.7", "17.el6").build();
        assert_eq!(p.nevra.to_string(), "gcc-4.4.7-17.el6.x86_64");
        assert_eq!(p.size_bytes, 1 << 20);
        assert!(p.requires.is_empty());
    }

    #[test]
    fn full_chain() {
        let p = PackageBuilder::new("openmpi", "1.6.5", "1.el6")
            .epoch(1)
            .arch(Arch::X86_64)
            .summary("Open MPI")
            .license("BSD")
            .group(PackageGroup::CompilersLibraries)
            .size_mb(40)
            .provides_versioned("mpi")
            .requires_spec("librdmacm >= 1.0")
            .conflicts_spec("mpich2")
            .file("/usr/lib64/openmpi/bin/mpirun")
            .scriptlet(Scriptlet::new(ScriptletPhase::Post, "ldconfig"))
            .build();
        assert_eq!(p.nevra.evr.epoch, 1);
        assert_eq!(p.size_bytes, 40 << 20);
        assert_eq!(p.provides.len(), 1);
        assert_eq!(p.requires.len(), 1);
        assert_eq!(p.conflicts.len(), 1);
        assert_eq!(p.files.len(), 1);
        assert_eq!(p.scriptlets.len(), 1);
        assert!(p.satisfies(&Dependency::parse("mpi = 1:1.6.5-1.el6")));
    }

    #[test]
    fn provides_versioned_uses_own_evr() {
        let p = PackageBuilder::new("python27", "2.7.5", "3")
            .provides_versioned("python")
            .build();
        assert!(p.satisfies(&Dependency::parse("python >= 2.7")));
        assert!(!p.satisfies(&Dependency::parse("python >= 3.0")));
    }
}
