//! The [`Package`] type: a binary RPM's header as the rest of the stack
//! sees it — NEVRA identity, dependency headers, file list and metadata.

use crate::arch::Arch;
use crate::dep::Dependency;
use crate::evr::Evr;
use crate::scriptlet::Scriptlet;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Name-Epoch-Version-Release-Architecture: the full identity of a package.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Nevra {
    pub name: String,
    pub evr: Evr,
    pub arch: Arch,
}

impl Nevra {
    pub fn new(name: impl Into<String>, evr: impl Into<Evr>, arch: Arch) -> Self {
        Nevra {
            name: name.into(),
            evr: evr.into(),
            arch,
        }
    }

    /// The `name-version-release.arch` filename stem, as yum prints it.
    pub fn filename(&self) -> String {
        format!("{}-{}.{}.rpm", self.name, self.evr.vr(), self.arch)
    }
}

impl fmt::Display for Nevra {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}.{}", self.name, self.evr, self.arch)
    }
}

/// RPM "Group:" classification, trimmed to the groups XCBC actually uses.
/// Table 2 of the paper partitions the XSEDE run-alike set into exactly
/// these categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PackageGroup {
    /// Base OS / cluster basics (CentOS, modules, make tools).
    Basics,
    /// Compilers, libraries, and programming (Table 2 row 1).
    CompilersLibraries,
    /// Scientific applications (Table 2 row 2).
    ScientificApplications,
    /// Miscellaneous supporting tools (Table 2 row 3).
    MiscellaneousTools,
    /// Scheduler and resource manager (Table 2 row 4).
    SchedulerResourceManager,
    /// XSEDE integration tools — Globus, Genesis II, GFFS (Table 2 row 5).
    XsedeTools,
    /// Security (the Rocks area51 roll).
    Security,
    /// Monitoring (ganglia).
    Monitoring,
    /// Anything else.
    Other,
}

impl PackageGroup {
    pub fn label(self) -> &'static str {
        match self {
            PackageGroup::Basics => "Basics",
            PackageGroup::CompilersLibraries => "Compilers, libraries, and programming",
            PackageGroup::ScientificApplications => "Scientific Applications",
            PackageGroup::MiscellaneousTools => "Miscellaneous Tools",
            PackageGroup::SchedulerResourceManager => "Scheduler and Resource Manager",
            PackageGroup::XsedeTools => "XSEDE Tools",
            PackageGroup::Security => "Security",
            PackageGroup::Monitoring => "Monitoring",
            PackageGroup::Other => "Other",
        }
    }
}

/// A binary package: identity plus everything the solver and the
/// transaction machinery need.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Package {
    pub nevra: Nevra,
    pub summary: String,
    pub license: String,
    pub group: PackageGroup,
    /// Installed size in bytes (drives disk-space accounting in kickstart).
    pub size_bytes: u64,
    pub provides: Vec<Dependency>,
    pub requires: Vec<Dependency>,
    pub conflicts: Vec<Dependency>,
    pub obsoletes: Vec<Dependency>,
    /// Paths owned by this package (also serve as file-provides).
    pub files: Vec<String>,
    pub scriptlets: Vec<Scriptlet>,
    /// Seconds since epoch the package was built (orders update releases).
    pub buildtime: u64,
}

impl Package {
    pub fn name(&self) -> &str {
        &self.nevra.name
    }

    pub fn evr(&self) -> &Evr {
        &self.nevra.evr
    }

    pub fn arch(&self) -> Arch {
        self.nevra.arch
    }

    /// Every Provides of this package, including the implicit
    /// `name = EVR` self-provide RPM adds automatically.
    pub fn all_provides(&self) -> Vec<Dependency> {
        let mut out = Vec::with_capacity(self.provides.len() + 1);
        out.push(Dependency::versioned(
            self.nevra.name.clone(),
            crate::dep::DepFlag::Eq,
            self.nevra.evr.clone(),
        ));
        out.extend(self.provides.iter().cloned());
        out
    }

    /// Does this package satisfy `req`, via self-provide, explicit
    /// Provides, or file ownership?
    pub fn satisfies(&self, req: &Dependency) -> bool {
        if req.is_file_dep() {
            return self.files.iter().any(|f| f == &req.name);
        }
        self.all_provides().iter().any(|p| p.satisfies(req))
    }

    /// Does this package obsolete the installed package `other`?
    /// (Obsoletes match against the *name* of the target, per RPM.)
    pub fn obsoletes_package(&self, other: &Package) -> bool {
        let target = Dependency::versioned(
            other.nevra.name.clone(),
            crate::dep::DepFlag::Eq,
            other.nevra.evr.clone(),
        );
        self.obsoletes.iter().any(|o| target.satisfies(o))
    }

    /// Is this package a strictly newer build of the same (name, arch)?
    pub fn is_upgrade_of(&self, other: &Package) -> bool {
        self.nevra.name == other.nevra.name
            && self.nevra.arch == other.nevra.arch
            && self.nevra.evr > other.nevra.evr
    }
}

impl fmt::Display for Package {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.nevra)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PackageBuilder;
    use crate::dep::DepFlag;

    #[test]
    fn self_provide_is_automatic() {
        let p = PackageBuilder::new("gcc", "4.4.7", "17.el6").build();
        assert!(p.satisfies(&Dependency::parse("gcc")));
        assert!(p.satisfies(&Dependency::parse("gcc = 4.4.7-17.el6")));
        assert!(p.satisfies(&Dependency::parse("gcc >= 4.4")));
        assert!(!p.satisfies(&Dependency::parse("gcc >= 4.5")));
    }

    #[test]
    fn file_provides() {
        let p = PackageBuilder::new("perl", "5.10.1", "136.el6")
            .file("/usr/bin/perl")
            .build();
        assert!(p.satisfies(&Dependency::parse("/usr/bin/perl")));
        assert!(!p.satisfies(&Dependency::parse("/usr/bin/python")));
    }

    #[test]
    fn explicit_provides() {
        let p = PackageBuilder::new("openmpi", "1.6.5", "1")
            .provides(Dependency::versioned(
                "mpi",
                DepFlag::Eq,
                Evr::parse("1.6.5"),
            ))
            .build();
        assert!(p.satisfies(&Dependency::parse("mpi >= 1.5")));
        assert!(!p.satisfies(&Dependency::parse("mpi >= 1.7")));
    }

    #[test]
    fn obsoletes_by_name_and_range() {
        let newer = PackageBuilder::new("torque", "4.2.10", "1")
            .obsoletes(Dependency::parse("torque-old"))
            .obsoletes(Dependency::parse("pbs < 3.0"))
            .build();
        let old_named = PackageBuilder::new("torque-old", "2.5.13", "1").build();
        let pbs_old = PackageBuilder::new("pbs", "2.3.16", "1").build();
        let pbs_new = PackageBuilder::new("pbs", "3.1", "1").build();
        assert!(newer.obsoletes_package(&old_named));
        assert!(newer.obsoletes_package(&pbs_old));
        assert!(!newer.obsoletes_package(&pbs_new));
    }

    #[test]
    fn upgrade_relation() {
        let old = PackageBuilder::new("R", "3.0.2", "1.el6").build();
        let new = PackageBuilder::new("R", "3.1.0", "1.el6").build();
        assert!(new.is_upgrade_of(&old));
        assert!(!old.is_upgrade_of(&new));
        assert!(!new.is_upgrade_of(&new));
    }

    #[test]
    fn nevra_filename() {
        let p = PackageBuilder::new("gromacs", "4.6.5", "2.el6").build();
        assert_eq!(p.nevra.filename(), "gromacs-4.6.5-2.el6.x86_64.rpm");
    }
}
