//! `rpm -q` query formatting.
//!
//! The training curriculum has students interrogate nodes with
//! `rpm -qa`, `rpm -qi`, `rpm -ql`, and `--queryformat`; the
//! compatibility tooling and lab graders consume the same output.

use crate::db::RpmDb;
use crate::package::Package;

/// `rpm -qa`: every installed package as `name-version-release.arch`,
/// sorted by name.
pub fn query_all(db: &RpmDb) -> Vec<String> {
    let mut out: Vec<String> = db.iter().map(|ip| ip.package.nevra.to_string()).collect();
    out.sort();
    out
}

/// `rpm -qi <pkg>`: the information block.
pub fn query_info(p: &Package) -> String {
    format!(
        "Name        : {}\n\
         Epoch       : {}\n\
         Version     : {}\n\
         Release     : {}\n\
         Architecture: {}\n\
         Group       : {}\n\
         Size        : {}\n\
         License     : {}\n\
         Summary     : {}\n",
        p.name(),
        p.evr().epoch,
        p.evr().version,
        p.evr().release,
        p.arch(),
        p.group.label(),
        p.size_bytes,
        p.license,
        p.summary,
    )
}

/// `rpm -ql <pkg>`: the file list.
pub fn query_files(p: &Package) -> String {
    if p.files.is_empty() {
        "(contains no files)\n".to_string()
    } else {
        let mut files = p.files.clone();
        files.sort();
        files.join("\n") + "\n"
    }
}

/// `rpm -q --queryformat <fmt>`: supports the common tags
/// `%{NAME}`, `%{VERSION}`, `%{RELEASE}`, `%{ARCH}`, `%{EPOCH}`,
/// `%{SIZE}`, `%{SUMMARY}`, `%{GROUP}`, `%{LICENSE}` and `\n`/`\t`.
pub fn query_format(p: &Package, fmt: &str) -> String {
    fmt.replace("%{NAME}", p.name())
        .replace("%{VERSION}", &p.evr().version)
        .replace("%{RELEASE}", &p.evr().release)
        .replace("%{ARCH}", p.arch().as_str())
        .replace("%{EPOCH}", &p.evr().epoch.to_string())
        .replace("%{SIZE}", &p.size_bytes.to_string())
        .replace("%{SUMMARY}", &p.summary)
        .replace("%{GROUP}", p.group.label())
        .replace("%{LICENSE}", &p.license)
        .replace("\\n", "\n")
        .replace("\\t", "\t")
}

/// `rpm -qf <path>`: which installed package owns a file?
pub fn query_file_owner<'a>(db: &'a RpmDb, path: &str) -> Option<&'a Package> {
    db.whatprovides(&crate::dep::Dependency::any(path))
        .first()
        .map(|ip| &ip.package)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PackageBuilder;
    use crate::package::PackageGroup;

    fn sample() -> Package {
        PackageBuilder::new("gromacs", "4.6.5", "2.el6")
            .group(PackageGroup::ScientificApplications)
            .summary("GROMACS molecular dynamics")
            .license("GPLv2")
            .size_mb(50)
            .file("/usr/bin/mdrun")
            .file("/usr/bin/grompp")
            .build()
    }

    #[test]
    fn qa_sorted() {
        let mut db = RpmDb::new();
        db.install(PackageBuilder::new("zsh", "4.3.11", "4").build());
        db.install(PackageBuilder::new("bash", "4.1.2", "15").build());
        assert_eq!(
            query_all(&db),
            vec!["bash-4.1.2-15.x86_64", "zsh-4.3.11-4.x86_64"]
        );
    }

    #[test]
    fn qi_block() {
        let info = query_info(&sample());
        assert!(info.contains("Name        : gromacs"));
        assert!(info.contains("Version     : 4.6.5"));
        assert!(info.contains("License     : GPLv2"));
        assert!(info.contains("Group       : Scientific Applications"));
    }

    #[test]
    fn ql_sorted_and_empty() {
        let files = query_files(&sample());
        assert_eq!(files, "/usr/bin/grompp\n/usr/bin/mdrun\n");
        let none = query_files(&PackageBuilder::new("meta", "1", "1").build());
        assert!(none.contains("no files"));
    }

    #[test]
    fn queryformat_tags() {
        let out = query_format(&sample(), "%{NAME}\\t%{VERSION}-%{RELEASE}.%{ARCH}\\n");
        assert_eq!(out, "gromacs\t4.6.5-2.el6.x86_64\n");
        let out = query_format(&sample(), "%{EPOCH}:%{SIZE}");
        assert_eq!(out, format!("0:{}", 50 << 20));
    }

    #[test]
    fn qf_owner() {
        let mut db = RpmDb::new();
        db.install(sample());
        assert_eq!(
            query_file_owner(&db, "/usr/bin/mdrun").unwrap().name(),
            "gromacs"
        );
        assert!(query_file_owner(&db, "/no/such").is_none());
    }
}
