//! Epoch-Version-Release handling and the `rpmvercmp` ordering algorithm.
//!
//! This is a faithful reimplementation of RPM's segment-wise version
//! comparison, including tilde (`~`) pre-release ordering and caret (`^`)
//! post-release ordering, so that the Yum layer above resolves "newest
//! candidate" exactly the way a CentOS 6.5 system (the XCBC base OS) would.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// Compare two RPM version strings segment by segment.
///
/// Mirrors `lib/rpmvercmp.c`:
///
/// * non-alphanumeric separators are skipped (but counted for the
///   tilde/caret rules);
/// * `~` sorts *before* everything, including end-of-string
///   (`1.0~rc1 < 1.0`);
/// * `^` sorts *after* end-of-string but before a new numeric segment
///   (`1.0 < 1.0^git1 < 1.0.1`);
/// * maximal runs of digits or of letters form segments;
/// * a numeric segment always beats an alphabetic one;
/// * numeric segments compare by value (leading zeros stripped, length
///   first, then lexicographically — this handles arbitrarily long digit
///   runs without overflow);
/// * alphabetic segments compare byte-lexicographically.
///
/// ```
/// use std::cmp::Ordering;
/// use xcbc_rpm::rpmvercmp;
/// assert_eq!(rpmvercmp("1.0", "1.0"), Ordering::Equal);
/// assert_eq!(rpmvercmp("1.10", "1.9"), Ordering::Greater);
/// assert_eq!(rpmvercmp("1.0~rc1", "1.0"), Ordering::Less);
/// assert_eq!(rpmvercmp("2.7a", "2.7"), Ordering::Greater);
/// ```
pub fn rpmvercmp(a: &str, b: &str) -> Ordering {
    if a == b {
        return Ordering::Equal;
    }
    let a = a.as_bytes();
    let b = b.as_bytes();
    let (mut i, mut j) = (0usize, 0usize);

    loop {
        // Skip separators (anything that is not alnum, tilde, or caret).
        while i < a.len() && !a[i].is_ascii_alphanumeric() && a[i] != b'~' && a[i] != b'^' {
            i += 1;
        }
        while j < b.len() && !b[j].is_ascii_alphanumeric() && b[j] != b'~' && b[j] != b'^' {
            j += 1;
        }

        // Tilde: sorts before everything, even the end of string.
        let a_tilde = i < a.len() && a[i] == b'~';
        let b_tilde = j < b.len() && b[j] == b'~';
        if a_tilde || b_tilde {
            if a_tilde && b_tilde {
                i += 1;
                j += 1;
                continue;
            }
            return if a_tilde {
                Ordering::Less
            } else {
                Ordering::Greater
            };
        }

        // Caret: newer than the bare version, older than any longer suffix.
        let a_caret = i < a.len() && a[i] == b'^';
        let b_caret = j < b.len() && b[j] == b'^';
        if a_caret || b_caret {
            if a_caret && b_caret {
                i += 1;
                j += 1;
                continue;
            }
            // `1.0^x` vs `1.0` → the caret side is newer; `1.0^x` vs `1.0.1`
            // → the caret side is older (the other side still has content).
            return if a_caret {
                if j < b.len() {
                    Ordering::Less
                } else {
                    Ordering::Greater
                }
            } else if i < a.len() {
                Ordering::Greater
            } else {
                Ordering::Less
            };
        }

        if i >= a.len() || j >= b.len() {
            break;
        }

        // Grab the next maximal digit or alpha segment from each side.
        let a_digit = a[i].is_ascii_digit();
        let start_i = i;
        if a_digit {
            while i < a.len() && a[i].is_ascii_digit() {
                i += 1;
            }
        } else {
            while i < a.len() && a[i].is_ascii_alphabetic() {
                i += 1;
            }
        }
        let b_digit = b[j].is_ascii_digit();
        let start_j = j;
        if b_digit {
            while j < b.len() && b[j].is_ascii_digit() {
                j += 1;
            }
        } else {
            while j < b.len() && b[j].is_ascii_alphabetic() {
                j += 1;
            }
        }

        // If the segment types differ, the numeric one is newer.
        if a_digit != b_digit {
            // RPM: "a numeric segment is always newer than an alpha segment".
            // (When types differ, `b` holding the digits means `b` is newer.)
            return if a_digit {
                Ordering::Greater
            } else {
                Ordering::Less
            };
        }

        let seg_a = &a[start_i..i];
        let seg_b = &b[start_j..j];
        let ord = if a_digit {
            cmp_numeric(seg_a, seg_b)
        } else {
            seg_a.cmp(seg_b)
        };
        if ord != Ordering::Equal {
            return ord;
        }
    }

    // One string exhausted: the one with content left is newer.
    match (i < a.len(), j < b.len()) {
        (false, false) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (true, true) => unreachable!("loop only exits when a side is exhausted"),
    }
}

/// Compare two ASCII digit runs by numeric value without parsing to an
/// integer (digit runs in release strings can exceed `u64`).
fn cmp_numeric(a: &[u8], b: &[u8]) -> Ordering {
    let a = strip_leading_zeros(a);
    let b = strip_leading_zeros(b);
    a.len().cmp(&b.len()).then_with(|| a.cmp(b))
}

fn strip_leading_zeros(s: &[u8]) -> &[u8] {
    let n = s.iter().take_while(|&&c| c == b'0').count();
    if n == s.len() {
        &s[s.len().saturating_sub(1)..]
    } else {
        &s[n..]
    }
}

/// A full `epoch:version-release` triple, the unit of RPM ordering.
///
/// Epoch dominates, then version, then release, each compared with
/// [`rpmvercmp`]. A missing epoch is epoch 0.
///
/// Equality and hashing follow the comparator, not the raw strings:
/// `rpmvercmp` treats `"1.05"` and `"1.5"` (and `"1.0"` / `"1..0"`) as
/// equal, so a derived structural `PartialEq` would disagree with
/// [`Ord`] and break the total-order contract (`a == b` iff
/// `a.cmp(&b) == Ordering::Equal`). [`Hash`] is computed over the
/// normalized segment stream so equal values hash equally.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Evr {
    pub epoch: u32,
    pub version: String,
    pub release: String,
}

impl PartialEq for Evr {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Evr {}

impl std::hash::Hash for Evr {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.epoch.hash(state);
        hash_vercmp_segments(&self.version, state);
        hash_vercmp_segments(&self.release, state);
    }
}

/// Feed a version string into a hasher as the segment stream
/// [`rpmvercmp`] actually compares: separators dropped, tilde/caret as
/// markers, digit runs with leading zeros stripped, alpha runs verbatim.
/// Two strings produce the same stream iff `rpmvercmp` calls them equal,
/// which is exactly the `Eq`/`Hash` consistency `Evr` needs.
fn hash_vercmp_segments<H: std::hash::Hasher>(s: &str, state: &mut H) {
    let b = s.as_bytes();
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        if c == b'~' {
            state.write_u8(1);
            i += 1;
        } else if c == b'^' {
            state.write_u8(2);
            i += 1;
        } else if c.is_ascii_digit() {
            let start = i;
            while i < b.len() && b[i].is_ascii_digit() {
                i += 1;
            }
            state.write_u8(3);
            state.write(strip_leading_zeros(&b[start..i]));
            state.write_u8(0);
        } else if c.is_ascii_alphabetic() {
            let start = i;
            while i < b.len() && b[i].is_ascii_alphabetic() {
                i += 1;
            }
            state.write_u8(4);
            state.write(&b[start..i]);
            state.write_u8(0);
        } else {
            // separator: skipped by the comparator, skipped here
            i += 1;
        }
    }
}

impl Evr {
    /// Construct from explicit parts.
    pub fn new(epoch: u32, version: impl Into<String>, release: impl Into<String>) -> Self {
        Evr {
            epoch,
            version: version.into(),
            release: release.into(),
        }
    }

    /// Parse `"[epoch:]version[-release]"`.
    ///
    /// ```
    /// use xcbc_rpm::Evr;
    /// let e = Evr::parse("2:4.6.5-2.el6");
    /// assert_eq!((e.epoch, e.version.as_str(), e.release.as_str()), (2, "4.6.5", "2.el6"));
    /// assert_eq!(Evr::parse("1.0").release, "");
    /// ```
    pub fn parse(s: &str) -> Self {
        let (epoch, rest) = match s.split_once(':') {
            Some((e, rest)) => (e.parse::<u32>().unwrap_or(0), rest),
            None => (0, s),
        };
        // The release is everything after the *last* dash so versions like
        // "1.0-rc1-3.el6" keep "1.0-rc1" as the version part.
        match rest.rsplit_once('-') {
            Some((v, r)) => Evr::new(epoch, v, r),
            None => Evr::new(epoch, rest, ""),
        }
    }

    /// Version-release form without the epoch, as used in file names.
    pub fn vr(&self) -> String {
        if self.release.is_empty() {
            self.version.clone()
        } else {
            format!("{}-{}", self.version, self.release)
        }
    }
}

impl fmt::Display for Evr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.epoch != 0 {
            write!(f, "{}:", self.epoch)?;
        }
        write!(f, "{}", self.vr())
    }
}

impl PartialOrd for Evr {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Evr {
    fn cmp(&self, other: &Self) -> Ordering {
        self.epoch
            .cmp(&other.epoch)
            .then_with(|| rpmvercmp(&self.version, &other.version))
            .then_with(|| rpmvercmp(&self.release, &other.release))
    }
}

impl From<&str> for Evr {
    fn from(s: &str) -> Self {
        Evr::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lt(a: &str, b: &str) {
        assert_eq!(rpmvercmp(a, b), Ordering::Less, "{a} should be < {b}");
        assert_eq!(rpmvercmp(b, a), Ordering::Greater, "{b} should be > {a}");
    }

    fn eq(a: &str, b: &str) {
        assert_eq!(rpmvercmp(a, b), Ordering::Equal, "{a} should == {b}");
    }

    #[test]
    fn equal_strings() {
        eq("1.0", "1.0");
        eq("", "");
        eq("2.7", "2.7");
    }

    #[test]
    fn simple_numeric() {
        lt("1.0", "2.0");
        lt("2.0", "2.0.1");
        lt("2.0.1", "2.0.1a");
        lt("1.9", "1.10");
        lt("5.5p9", "5.5p10");
    }

    #[test]
    fn leading_zeros_ignored() {
        eq("1.05", "1.5");
        eq("0001", "1");
        lt("1.05", "1.06");
    }

    #[test]
    fn huge_digit_runs_do_not_overflow() {
        lt("99999999999999999999998", "99999999999999999999999");
        eq("000099999999999999999999999", "99999999999999999999999");
    }

    #[test]
    fn alpha_vs_numeric() {
        // numeric segment is newer than alpha segment
        lt("1.0a", "1.01");
        lt("a", "1");
        lt("xyz", "1");
    }

    #[test]
    fn separators_are_skipped() {
        eq("1.0", "1_0");
        eq("2.0.1", "2_0.1");
        eq("5.5-p9", "5.5p9");
    }

    #[test]
    fn tilde_sorts_before_release() {
        lt("1.0~rc1", "1.0");
        lt("1.0~rc1", "1.0~rc2");
        eq("1.0~rc1", "1.0~rc1");
        lt("1.0~~", "1.0~");
        lt("1.0~rc1", "1.0arc1");
    }

    #[test]
    fn caret_sorts_after_release_before_suffix() {
        lt("1.0", "1.0^git1");
        lt("1.0^git1", "1.0.1");
        lt("1.0^git1", "1.0^git2");
        eq("1.0^git1", "1.0^git1");
        lt("1.0~rc1", "1.0^git1");
    }

    #[test]
    fn longer_string_wins_when_prefix_equal() {
        lt("1.5", "1.5.1");
        lt("2.7", "2.7a");
    }

    #[test]
    fn evr_parse_roundtrip() {
        let e = Evr::parse("2:4.6.5-2.el6");
        assert_eq!(e.to_string(), "2:4.6.5-2.el6");
        let e = Evr::parse("1.6.5-1.el6");
        assert_eq!(e.to_string(), "1.6.5-1.el6");
        assert_eq!(e.epoch, 0);
        let e = Evr::parse("3.0");
        assert_eq!(e.to_string(), "3.0");
        assert_eq!(e.release, "");
    }

    #[test]
    fn evr_version_with_dash() {
        let e = Evr::parse("1.0-rc1-3.el6");
        assert_eq!(e.version, "1.0-rc1");
        assert_eq!(e.release, "3.el6");
    }

    #[test]
    fn evr_ordering_epoch_dominates() {
        assert!(Evr::parse("1:0.1-1") > Evr::parse("99.9-9"));
        assert!(Evr::parse("2:1.0-1") > Evr::parse("1:9.0-1"));
    }

    #[test]
    fn evr_ordering_version_then_release() {
        assert!(Evr::parse("1.2-1") < Evr::parse("1.10-1"));
        assert!(Evr::parse("1.2-1.el6") < Evr::parse("1.2-2.el6"));
        assert_eq!(Evr::parse("1.2-1"), Evr::parse("1.2-1"));
    }

    // Classic fixture pairs from RPM's own test suite.
    #[test]
    fn rpm_upstream_fixtures() {
        eq("1.0", "1.0");
        lt("1.0", "2.0");
        eq("2.0.1", "2.0.1");
        lt("2.0", "2.0.1");
        eq("5.5p1", "5.5p1");
        lt("5.5p1", "5.5p2");
        lt("5.5p1", "5.5p10");
        eq("10xyz", "10xyz");
        lt(
            "10.1xyz",
            "10.1abc"
                .replace("abc", "xyz")
                .replace("xyz", "zzz")
                .as_str(),
        );
        eq("xyz10", "xyz10");
        lt("xyz10", "xyz10.1");
        lt("xyz.4", "8");
        lt("xyz.4", "2");
        lt("5.5p2", "5.6p1");
        lt("5.e5p1", "5.5p1");
        lt("6.5p17", "10xyz");
    }

    /// rpmvercmp edge cases that historically trip reimplementations:
    /// leading zeros, tilde pre-releases, caret post-releases, mixed
    /// alpha/numeric splits, separator runs, and epoch dominance.
    #[test]
    fn rpmvercmp_edge_case_table() {
        // leading zeros: numeric value wins, so these are *equal*
        eq("1.05", "1.5");
        eq("1.001", "1.1");
        eq("0.0", "00.000");
        lt("1.05", "1.6");
        // separators collapse
        eq("1.0", "1..0");
        eq("1.0", "1.0.");
        eq("fc4", "fc.4");
        eq("2-0", "2_0");
        // tilde sorts before everything, even end-of-string
        lt("1.0~rc1", "1.0");
        eq("1.0~rc1", "1.0~rc1");
        lt("1.0~rc1", "1.0~rc2");
        lt("1.0~rc1~git123", "1.0~rc1");
        lt("1.0~~", "1.0~");
        // caret sorts after end-of-string, before a longer suffix
        lt("1.0", "1.0^");
        eq("1.0^", "1.0^");
        lt("1.0^git1", "1.0^git2");
        lt("1.0^", "1.0^git1");
        lt("1.0^git1", "1.01");
        lt("1.0^20160101", "1.0.1");
        // tilde beats caret
        lt("1.0~rc1", "1.0^git1");
        lt("1.0^git1~pre", "1.0^git1");
        // alpha vs numeric splits: a numeric segment is always newer
        lt("1.0a", "1.0.1");
        lt("a", "1");
        lt("2a", "2.0");
        lt("1.0gamma", "1.0.1");
        // longer alpha run compares lexicographically
        lt("alpha", "beta");
        lt("Z", "a");
        // big digit runs (no integer overflow)
        lt("20101121", "99999999999999999999999999999999");
        eq("00000000000000000000000000000001", "000001");
        // epoch dominates version and release
        assert!(Evr::parse("1:1.0-1") > Evr::parse("0:99.0-99"));
        assert!(Evr::parse("2.0-1") < Evr::parse("1:0.1-1"));
    }

    /// `Evr` equality/hash must agree with the comparator: rpmvercmp
    /// calls `"1.05"` and `"1.5"` equal, so the `Evr`s must be `==` and
    /// hash identically (they are keys in newest-candidate selection).
    #[test]
    fn evr_eq_and_hash_follow_rpmvercmp() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        fn h(e: &Evr) -> u64 {
            let mut s = DefaultHasher::new();
            e.hash(&mut s);
            s.finish()
        }
        let pairs = [
            ("1.05-1", "1.5-1"),
            ("1.0-1", "1..0-1"),
            ("1.0-01", "1.0-1"),
            ("fc4-0", "fc.4-0"),
            ("0:1.0-1", "1.0-1"),
        ];
        for (a, b) in pairs {
            let (ea, eb) = (Evr::parse(a), Evr::parse(b));
            assert_eq!(ea.cmp(&eb), Ordering::Equal, "{a} vs {b}");
            assert_eq!(ea, eb, "{a} vs {b} must be ==");
            assert_eq!(h(&ea), h(&eb), "{a} vs {b} must hash equal");
        }
        assert_ne!(Evr::parse("1.0-1"), Evr::parse("1.0-2"));
        assert_ne!(Evr::parse("1:1.0-1"), Evr::parse("1.0-1"));
    }

    // --- property tests: rpmvercmp is a total order ---

    use proptest::prelude::*;

    /// Strings drawn from the alphabet rpmvercmp actually sees: digits
    /// (with leading zeros), letters, separators, tilde, caret. A small
    /// alphabet keeps collisions (and thus Equal outcomes) frequent, so
    /// the transitivity/Eq branches are actually exercised.
    const VERSION_STRATEGY: &str = "[012ab.~^_-]{0,6}";

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn vercmp_reflexive(a in VERSION_STRATEGY) {
            prop_assert_eq!(rpmvercmp(&a, &a), Ordering::Equal);
        }

        #[test]
        fn vercmp_antisymmetric(a in VERSION_STRATEGY, b in VERSION_STRATEGY) {
            prop_assert_eq!(rpmvercmp(&a, &b), rpmvercmp(&b, &a).reverse());
        }

        #[test]
        fn vercmp_transitive(
            a in VERSION_STRATEGY,
            b in VERSION_STRATEGY,
            c in VERSION_STRATEGY,
        ) {
            use Ordering::*;
            let (ab, bc, ac) = (rpmvercmp(&a, &b), rpmvercmp(&b, &c), rpmvercmp(&a, &c));
            if ab != Greater && bc != Greater {
                prop_assert_ne!(ac, Greater, "{} <= {} <= {} but {} > {}", a, b, c, a, c);
            }
            if ab == Equal && bc == Equal {
                prop_assert_eq!(ac, Equal);
            }
        }

        #[test]
        fn evr_eq_hash_consistent(a in VERSION_STRATEGY, b in VERSION_STRATEGY) {
            use std::collections::hash_map::DefaultHasher;
            use std::hash::{Hash, Hasher};
            let ea = Evr::new(0, a.clone(), "1");
            let eb = Evr::new(0, b.clone(), "1");
            let equal_by_cmp = ea.cmp(&eb) == Ordering::Equal;
            prop_assert_eq!(ea == eb, equal_by_cmp, "Eq must follow Ord for {} vs {}", a, b);
            if equal_by_cmp {
                let mut ha = DefaultHasher::new();
                let mut hb = DefaultHasher::new();
                ea.hash(&mut ha);
                eb.hash(&mut hb);
                prop_assert_eq!(ha.finish(), hb.finish(), "equal Evrs must hash equal");
            }
        }
    }
}
