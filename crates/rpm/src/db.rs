//! The installed-package database (`/var/lib/rpm` equivalent).
//!
//! Holds the set of installed packages on one host, indexed for the three
//! queries everything else needs: by name, by capability
//! (`whatprovides`), and by file path. Also implements `rpm -V`-style
//! verification of database consistency.

use crate::dep::Dependency;
use crate::package::Package;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// An installed package plus install-time metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstalledPackage {
    pub package: Package,
    /// Monotonic transaction id that installed this package.
    pub install_tid: u64,
}

/// Per-host installed-package database.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RpmDb {
    /// name → instances (multiple only for multilib/kernel-style installs).
    by_name: BTreeMap<String, Vec<InstalledPackage>>,
    /// file path → owning package names.
    file_index: HashMap<String, Vec<String>>,
    next_tid: u64,
}

/// A problem found by [`RpmDb::verify`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum VerifyProblem {
    /// An installed package has a Requires nothing installed satisfies.
    UnsatisfiedRequire { package: String, require: String },
    /// Two installed packages conflict.
    Conflict {
        package: String,
        conflicts_with: String,
    },
    /// Two installed packages own the same path.
    FileConflict { path: String, packages: Vec<String> },
}

impl std::fmt::Display for VerifyProblem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyProblem::UnsatisfiedRequire { package, require } => {
                write!(f, "{package}: unsatisfied requirement {require}")
            }
            VerifyProblem::Conflict {
                package,
                conflicts_with,
            } => {
                write!(f, "{package} conflicts with installed {conflicts_with}")
            }
            VerifyProblem::FileConflict { path, packages } => {
                write!(
                    f,
                    "file {path} owned by multiple packages: {}",
                    packages.join(", ")
                )
            }
        }
    }
}

impl RpmDb {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of installed packages.
    pub fn len(&self) -> usize {
        self.by_name.values().map(Vec::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.by_name.is_empty()
    }

    /// Iterate over every installed package.
    pub fn iter(&self) -> impl Iterator<Item = &InstalledPackage> {
        self.by_name.values().flatten()
    }

    /// All instances installed under `name`.
    pub fn get(&self, name: &str) -> &[InstalledPackage] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The newest installed instance of `name`, if any.
    pub fn newest(&self, name: &str) -> Option<&InstalledPackage> {
        self.get(name)
            .iter()
            .max_by(|a, b| a.package.nevra.evr.cmp(&b.package.nevra.evr))
    }

    pub fn is_installed(&self, name: &str) -> bool {
        self.by_name.contains_key(name)
    }

    /// `rpm -q --whatprovides`: installed packages satisfying `req`
    /// (capability or file dependency).
    pub fn whatprovides(&self, req: &Dependency) -> Vec<&InstalledPackage> {
        if req.is_file_dep() {
            return self
                .file_index
                .get(&req.name)
                .map(|owners| {
                    owners
                        .iter()
                        .flat_map(|n| self.get(n))
                        .filter(|ip| ip.package.files.iter().any(|f| f == &req.name))
                        .collect()
                })
                .unwrap_or_default();
        }
        self.iter().filter(|ip| ip.package.satisfies(req)).collect()
    }

    /// Is `req` satisfied by anything installed?
    pub fn provides(&self, req: &Dependency) -> bool {
        !self.whatprovides(req).is_empty()
    }

    /// `rpm -q --whatrequires`: installed packages whose Requires are
    /// satisfied by capabilities of `name`.
    pub fn whatrequires(&self, name: &str) -> Vec<&InstalledPackage> {
        let providers = self.get(name);
        if providers.is_empty() {
            return Vec::new();
        }
        self.iter()
            .filter(|ip| {
                ip.package.name() != name
                    && ip
                        .package
                        .requires
                        .iter()
                        .any(|req| providers.iter().any(|p| p.package.satisfies(req)))
            })
            .collect()
    }

    /// Low-level install (no dependency checking — that is the
    /// transaction layer's job). Returns the transaction id.
    pub fn install(&mut self, package: Package) -> u64 {
        self.next_tid += 1;
        let tid = self.next_tid;
        for f in &package.files {
            let owners = self.file_index.entry(f.clone()).or_default();
            if !owners.contains(&package.nevra.name) {
                owners.push(package.nevra.name.clone());
            }
        }
        self.by_name
            .entry(package.nevra.name.clone())
            .or_default()
            .push(InstalledPackage {
                package,
                install_tid: tid,
            });
        tid
    }

    /// Low-level erase of every instance of `name`. Returns the erased
    /// packages (empty if the name was not installed).
    pub fn erase(&mut self, name: &str) -> Vec<InstalledPackage> {
        let removed = self.by_name.remove(name).unwrap_or_default();
        for ip in &removed {
            for f in &ip.package.files {
                if let Some(owners) = self.file_index.get_mut(f) {
                    owners.retain(|n| n != name);
                    if owners.is_empty() {
                        self.file_index.remove(f);
                    }
                }
            }
        }
        removed
    }

    /// Erase only the instance matching an exact EVR (used by upgrades that
    /// replace one multilib sibling).
    pub fn erase_exact(&mut self, name: &str, evr: &crate::evr::Evr) -> Option<InstalledPackage> {
        let list = self.by_name.get_mut(name)?;
        let idx = list.iter().position(|ip| &ip.package.nevra.evr == evr)?;
        let removed = list.remove(idx);
        let now_empty = list.is_empty();
        if now_empty {
            self.by_name.remove(name);
        }
        for f in &removed.package.files {
            let still_owned = self.get(name).iter().any(|ip| ip.package.files.contains(f));
            if !still_owned {
                if let Some(owners) = self.file_index.get_mut(f) {
                    owners.retain(|n| n != name);
                    if owners.is_empty() {
                        self.file_index.remove(f);
                    }
                }
            }
        }
        Some(removed)
    }

    /// Total installed size in bytes (drives the kickstart disk-space
    /// requirement that forced LittleFe's mSATA modification).
    pub fn installed_size_bytes(&self) -> u64 {
        self.iter().map(|ip| ip.package.size_bytes).sum()
    }

    /// Verify database consistency: every Requires satisfied, no Conflicts
    /// between installed packages, no duplicate file ownership.
    pub fn verify(&self) -> Vec<VerifyProblem> {
        let mut problems = Vec::new();
        for ip in self.iter() {
            for req in &ip.package.requires {
                if !self.provides(req) {
                    problems.push(VerifyProblem::UnsatisfiedRequire {
                        package: ip.package.nevra.to_string(),
                        require: req.to_string(),
                    });
                }
            }
            for conflict in &ip.package.conflicts {
                for victim in self.whatprovides(conflict) {
                    if victim.package.name() != ip.package.name() {
                        problems.push(VerifyProblem::Conflict {
                            package: ip.package.nevra.to_string(),
                            conflicts_with: victim.package.nevra.to_string(),
                        });
                    }
                }
            }
        }
        for (path, owners) in &self.file_index {
            if owners.len() > 1 {
                problems.push(VerifyProblem::FileConflict {
                    path: path.clone(),
                    packages: owners.clone(),
                });
            }
        }
        problems
    }

    /// Names of all installed packages, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.by_name.keys().map(String::as_str).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PackageBuilder;

    fn db_with(pkgs: Vec<Package>) -> RpmDb {
        let mut db = RpmDb::new();
        for p in pkgs {
            db.install(p);
        }
        db
    }

    #[test]
    fn install_and_query() {
        let mut db = RpmDb::new();
        assert!(db.is_empty());
        db.install(PackageBuilder::new("gcc", "4.4.7", "17.el6").build());
        assert_eq!(db.len(), 1);
        assert!(db.is_installed("gcc"));
        assert!(!db.is_installed("clang"));
        assert_eq!(db.newest("gcc").unwrap().package.evr().version, "4.4.7");
    }

    #[test]
    fn newest_picks_highest_evr() {
        let db = db_with(vec![
            PackageBuilder::new("kernel", "2.6.32", "431.el6").build(),
            PackageBuilder::new("kernel", "2.6.32", "504.el6").build(),
        ]);
        assert_eq!(db.len(), 2);
        assert_eq!(
            db.newest("kernel").unwrap().package.evr().release,
            "504.el6"
        );
    }

    #[test]
    fn whatprovides_capability_and_file() {
        let db = db_with(vec![
            PackageBuilder::new("openmpi", "1.6.5", "1")
                .provides_versioned("mpi")
                .file("/usr/lib64/openmpi/bin/mpirun")
                .build(),
            PackageBuilder::new("mpich2", "1.4.1", "1")
                .provides_versioned("mpi")
                .build(),
        ]);
        assert_eq!(db.whatprovides(&Dependency::parse("mpi")).len(), 2);
        assert_eq!(db.whatprovides(&Dependency::parse("mpi >= 1.6")).len(), 1);
        assert_eq!(
            db.whatprovides(&Dependency::parse("/usr/lib64/openmpi/bin/mpirun"))
                .len(),
            1
        );
        assert!(db
            .whatprovides(&Dependency::parse("/no/such/file"))
            .is_empty());
    }

    #[test]
    fn whatrequires_reverse_deps() {
        let db = db_with(vec![
            PackageBuilder::new("openmpi", "1.6.5", "1")
                .provides_versioned("mpi")
                .build(),
            PackageBuilder::new("gromacs", "4.6.5", "2")
                .requires_simple("mpi")
                .build(),
            PackageBuilder::new("lammps", "2014", "1")
                .requires_simple("openmpi")
                .build(),
            PackageBuilder::new("bash", "4.1.2", "15").build(),
        ]);
        let rdeps = db.whatrequires("openmpi");
        let names: Vec<_> = rdeps.iter().map(|ip| ip.package.name()).collect();
        assert!(names.contains(&"gromacs"));
        assert!(names.contains(&"lammps"));
        assert!(!names.contains(&"bash"));
    }

    #[test]
    fn erase_updates_file_index() {
        let mut db = db_with(vec![PackageBuilder::new("perl", "5.10.1", "136")
            .file("/usr/bin/perl")
            .build()]);
        assert!(db.provides(&Dependency::parse("/usr/bin/perl")));
        let removed = db.erase("perl");
        assert_eq!(removed.len(), 1);
        assert!(!db.provides(&Dependency::parse("/usr/bin/perl")));
        assert!(db.is_empty());
    }

    #[test]
    fn erase_exact_keeps_sibling() {
        let mut db = db_with(vec![
            PackageBuilder::new("kernel", "2.6.32", "431.el6").build(),
            PackageBuilder::new("kernel", "2.6.32", "504.el6").build(),
        ]);
        let gone = db.erase_exact("kernel", &crate::evr::Evr::parse("2.6.32-431.el6"));
        assert!(gone.is_some());
        assert_eq!(db.get("kernel").len(), 1);
        assert_eq!(
            db.newest("kernel").unwrap().package.evr().release,
            "504.el6"
        );
    }

    #[test]
    fn verify_detects_unsatisfied_require() {
        let db = db_with(vec![PackageBuilder::new("gromacs", "4.6.5", "2")
            .requires_simple("mpi")
            .build()]);
        let problems = db.verify();
        assert_eq!(problems.len(), 1);
        assert!(matches!(
            problems[0],
            VerifyProblem::UnsatisfiedRequire { .. }
        ));
    }

    #[test]
    fn verify_detects_conflicts_and_file_conflicts() {
        let db = db_with(vec![
            PackageBuilder::new("torque", "4.2.10", "1")
                .conflicts_spec("slurm")
                .file("/usr/bin/qsub")
                .build(),
            PackageBuilder::new("slurm", "14.03", "1")
                .file("/usr/bin/qsub")
                .build(),
        ]);
        let problems = db.verify();
        assert!(problems
            .iter()
            .any(|p| matches!(p, VerifyProblem::Conflict { .. })));
        assert!(problems
            .iter()
            .any(|p| matches!(p, VerifyProblem::FileConflict { .. })));
    }

    #[test]
    fn verify_clean_db_is_clean() {
        let db = db_with(vec![
            PackageBuilder::new("openmpi", "1.6.5", "1")
                .provides_versioned("mpi")
                .build(),
            PackageBuilder::new("gromacs", "4.6.5", "2")
                .requires_simple("mpi")
                .build(),
        ]);
        assert!(db.verify().is_empty());
    }

    #[test]
    fn installed_size_accumulates() {
        let db = db_with(vec![
            PackageBuilder::new("a", "1", "1").size_mb(10).build(),
            PackageBuilder::new("b", "1", "1").size_mb(5).build(),
        ]);
        assert_eq!(db.installed_size_bytes(), 15 << 20);
    }
}
