//! Property-based tests for the RPM substrate: rpmvercmp is a total order,
//! EVR ordering is consistent, and transactions preserve database
//! invariants.

use proptest::prelude::*;
use std::cmp::Ordering;
use xcbc_rpm::{rpmvercmp, Dependency, Evr, PackageBuilder, RpmDb, TransactionSet};

/// Version-string alphabet close to what real RPM versions use.
fn version_strategy() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[0-9a-z.~^_]{0,12}").unwrap()
}

proptest! {
    /// Antisymmetry: cmp(a,b) is the reverse of cmp(b,a).
    #[test]
    fn vercmp_antisymmetric(a in version_strategy(), b in version_strategy()) {
        prop_assert_eq!(rpmvercmp(&a, &b), rpmvercmp(&b, &a).reverse());
    }

    /// Reflexivity.
    #[test]
    fn vercmp_reflexive(a in version_strategy()) {
        prop_assert_eq!(rpmvercmp(&a, &a), Ordering::Equal);
    }

    /// Transitivity over random triples.
    #[test]
    fn vercmp_transitive(a in version_strategy(), b in version_strategy(), c in version_strategy()) {
        let mut v = [a, b, c];
        v.sort_by(|x, y| rpmvercmp(x, y));
        // after sorting, pairwise order must be consistent
        prop_assert_ne!(rpmvercmp(&v[0], &v[1]), Ordering::Greater);
        prop_assert_ne!(rpmvercmp(&v[1], &v[2]), Ordering::Greater);
        prop_assert_ne!(rpmvercmp(&v[0], &v[2]), Ordering::Greater);
    }

    /// Appending a ~suffix never makes a version newer.
    #[test]
    fn tilde_suffix_never_newer(a in proptest::string::string_regex("[0-9a-z.]{1,8}").unwrap()) {
        let pre = format!("{a}~rc1");
        prop_assert_eq!(rpmvercmp(&pre, &a), Ordering::Less);
    }

    /// Evr::parse . to_string . parse is a fixpoint.
    #[test]
    fn evr_display_parse_fixpoint(
        e in 0u32..5,
        v in proptest::string::string_regex("[0-9][0-9a-z.]{0,6}").unwrap(),
        r in proptest::string::string_regex("[0-9][0-9a-z.]{0,6}").unwrap(),
    ) {
        let evr = Evr::new(e, v, r);
        let reparsed = Evr::parse(&evr.to_string());
        prop_assert_eq!(reparsed, evr);
    }

    /// A self-provide always satisfies an unversioned require of the same
    /// name and an >= require at or below its version.
    #[test]
    fn self_provide_satisfies(
        v1 in 1u32..50, v2 in 1u32..50,
    ) {
        let pkg = PackageBuilder::new("p", &format!("{v1}.0"), "1").build();
        let req = Dependency::parse(&format!("p >= {v2}.0"));
        prop_assert_eq!(pkg.satisfies(&req), v1 >= v2);
    }

    /// Installing a dependency-closed random set and erasing it in reverse
    /// leaves the database empty and clean at every step.
    #[test]
    fn install_erase_roundtrip(n in 1usize..12) {
        let mut db = RpmDb::new();
        // chain: p0 <- p1 <- ... <- p(n-1)
        let mut tx = TransactionSet::new();
        for i in 0..n {
            let mut b = PackageBuilder::new(&format!("p{i}"), "1.0", "1");
            if i > 0 {
                b = b.requires_simple(&format!("p{}", i - 1));
            }
            tx.add_install(b.build());
        }
        prop_assert!(tx.check(&db).is_empty());
        tx.run(&mut db).unwrap();
        prop_assert!(db.verify().is_empty());
        prop_assert_eq!(db.len(), n);

        // erase from the top of the chain down
        for i in (0..n).rev() {
            let mut etx = TransactionSet::new();
            etx.add_erase(format!("p{i}"));
            prop_assert!(etx.check(&db).is_empty(), "erase p{} should be safe", i);
            etx.run(&mut db).unwrap();
            prop_assert!(db.verify().is_empty());
        }
        prop_assert!(db.is_empty());
    }

    /// Erasing the *bottom* of a dependency chain is always rejected while
    /// dependents remain.
    #[test]
    fn erase_bottom_rejected(n in 2usize..10) {
        let mut db = RpmDb::new();
        let mut tx = TransactionSet::new();
        for i in 0..n {
            let mut b = PackageBuilder::new(&format!("p{i}"), "1.0", "1");
            if i > 0 {
                b = b.requires_simple(&format!("p{}", i - 1));
            }
            tx.add_install(b.build());
        }
        tx.run(&mut db).unwrap();
        let mut etx = TransactionSet::new();
        etx.add_erase("p0");
        prop_assert!(!etx.check(&db).is_empty());
    }

    /// Transaction ordering puts every dependency before its dependent for
    /// random DAGs.
    #[test]
    fn ordering_respects_dag(edges in proptest::collection::vec((0usize..8, 0usize..8), 0..16)) {
        // build a DAG: edge (a,b) with a<b means "b requires a"
        let mut requires: Vec<Vec<usize>> = vec![Vec::new(); 8];
        for (a, b) in edges {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            if lo != hi && !requires[hi].contains(&lo) {
                requires[hi].push(lo);
            }
        }
        let mut tx = TransactionSet::new();
        for (i, deps) in requires.iter().enumerate() {
            let mut b = PackageBuilder::new(&format!("n{i}"), "1.0", "1");
            for &dep in deps {
                b = b.requires_simple(&format!("n{dep}"));
            }
            tx.add_install(b.build());
        }
        let order = tx.order();
        let pos: std::collections::HashMap<String, usize> = order
            .iter()
            .enumerate()
            .map(|(i, e)| (e.label(), i))
            .collect();
        for (i, deps) in requires.iter().enumerate() {
            for &dep in deps {
                let pi = pos[&format!("install n{i}-1.0-1.x86_64")];
                let pd = pos[&format!("install n{dep}-1.0-1.x86_64")];
                prop_assert!(pd < pi, "n{} must precede n{}", dep, i);
            }
        }
    }
}
