//! Causal trace analysis throughput: critical-path extraction, lane
//! reconstruction, and the rendered views over synthetic traces shaped
//! like real deployment days (per-node install spans feeding a serial
//! scheduler chain).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xcbc_sim::{analyze, TraceEvent};

/// A deployment-day-shaped trace: `nodes` parallel install lanes (boot,
/// kickstart, depsolve per node) followed by a serial scheduler chain,
/// with interleaved marks and counters the analyser must skip over.
fn synthetic_trace(nodes: usize, chain: usize) -> Vec<TraceEvent> {
    let mut events = Vec::with_capacity(nodes * 4 + chain + 2);
    events.push(TraceEvent::span(0.0, "yum.mirror", "fetch repo", 8.0));
    for i in 0..nodes {
        let host = format!("compute-0-{i}");
        let start = 8.0 + (i % 7) as f64 * 3.0;
        events.push(
            TraceEvent::span(start, "cluster.boot", format!("{host}: pxe"), 45.0)
                .with_field("node", host.clone()),
        );
        events.push(
            TraceEvent::span(
                start + 45.0,
                "rocks.install",
                format!("{host}: kickstart"),
                600.0,
            )
            .with_field("node", host.clone()),
        );
        events.push(
            TraceEvent::span(
                start + 645.0,
                "yum.solvecache",
                format!("{host}: depsolve"),
                2.0,
            )
            .with_field("node", host.clone()),
        );
        events.push(TraceEvent::mark(
            start + 647.0,
            "fleet.membership",
            format!("join {host}"),
        ));
    }
    let mut t = 8.0 + 6.0 * 3.0 + 647.0;
    for j in 0..chain {
        let dur = 100.0 + (j % 13) as f64 * 17.0;
        events.push(TraceEvent::span(t, "sched", format!("job batch-{j}"), dur));
        events.push(TraceEvent::counter(
            t,
            "sched",
            "queue depth",
            (chain - j) as u64,
        ));
        t += dur;
    }
    events
}

fn bench_analyze(c: &mut Criterion) {
    let mut group = c.benchmark_group("analyze/day");
    for (nodes, chain) in [(6usize, 50usize), (36, 200), (220, 1000)] {
        let events = synthetic_trace(nodes, chain);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{nodes}x{chain}")),
            &events,
            |b, events| b.iter(|| analyze(events).path.segments.len()),
        );
    }
    group.finish();

    let events = synthetic_trace(36, 200);
    c.bench_function("analyze/render_36x200", |b| {
        let a = analyze(&events);
        b.iter(|| a.render().len() + a.flame().len() + a.folded().len())
    });
}

criterion_group!(benches, bench_analyze);
criterion_main!(benches);
