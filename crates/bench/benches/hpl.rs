//! Linpack benchmark: factorization GFLOPS vs problem size and threads
//! (the real-run half of Table 5's Rmax story).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use xcbc_hpl::{lu_factor, Matrix};

fn bench_hpl(c: &mut Criterion) {
    let mut group = c.benchmark_group("hpl/lu_factor");
    group.sample_size(10);
    for n in [128usize, 256, 512] {
        let flops = 2.0 / 3.0 * (n as f64).powi(3);
        group.throughput(Throughput::Elements(flops as u64));
        let base = Matrix::random(n, 7);
        group.bench_with_input(BenchmarkId::new("serial", n), &n, |b, _| {
            b.iter_batched(
                || base.clone(),
                |mut m| lu_factor(&mut m, 64, 1).unwrap(),
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("4threads", n), &n, |b, _| {
            b.iter_batched(
                || base.clone(),
                |mut m| lu_factor(&mut m, 64, 4).unwrap(),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();

    let mut group = c.benchmark_group("hpl/block_size_n512");
    group.sample_size(10);
    let base = Matrix::random(512, 9);
    for nb in [16usize, 64, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(nb), &nb, |b, &nb| {
            b.iter_batched(
                || base.clone(),
                |mut m| lu_factor(&mut m, nb, 1).unwrap(),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hpl);
criterion_main!(benches);
