//! Sustained solve throughput of the xcbcd engine under cold and warm
//! cache mixes.
//!
//! Both mixes are pure solve streams of the same length over the same
//! four tenants, so the fixed per-request cost (admission, journaling,
//! ledger, digests) is identical. `sustained_qps_cold` gives every
//! request a distinct target window, so each solve falls through to the
//! real solver; `sustained_qps_warm` cycles a four-request repertoire
//! per tenant, so after the first pass nearly every solve is answered
//! from the tenant's salted shard. The cold/warm QPS gap recorded in
//! BENCH_pr10.json is the acceptance evidence that the sharded
//! copy-on-write cache actually carries the multi-tenant load (warm
//! QPS must be ≥ 5× cold).

use criterion::{criterion_group, criterion_main, Criterion};
use xcbc_core::xnit_repository;
use xcbc_svc::{serve, tenant_names, QuotaTable, SvcConfig, SvcOp, SvcRequest, TenantQuota};
use xcbc_yum::SolveRequest;

const REQUESTS: usize = 96;
const TENANTS: usize = 4;

/// A pure solve stream: request `i` goes to tenant `i % TENANTS` and
/// installs a 4-package window starting at `window(i)`. Distinct
/// windows give distinct cache keys; repeated windows hit the shard.
fn solve_stream(window: impl Fn(usize) -> usize) -> Vec<SvcRequest> {
    let names: Vec<String> = xnit_repository()
        .packages()
        .iter()
        .map(|p| p.nevra.name.clone())
        .collect();
    let tenants = tenant_names(TENANTS);
    (0..REQUESTS)
        .map(|i| {
            let w = window(i);
            let targets: Vec<&str> = (0..4)
                .map(|k| names[(w + k) % names.len()].as_str())
                .collect();
            SvcRequest {
                tenant: tenants[i % TENANTS].clone(),
                tick: i as u64,
                seed: i as u64,
                op: SvcOp::Solve(SolveRequest::install(targets)),
            }
        })
        .collect()
}

fn open_config() -> SvcConfig {
    let mut quotas = QuotaTable::new();
    for tenant in tenant_names(TENANTS) {
        quotas.set(tenant, TenantQuota::new(REQUESTS as u32, REQUESTS as u32));
    }
    SvcConfig {
        workers: 2,
        queue_limit: REQUESTS,
        quotas,
        ..SvcConfig::default()
    }
}

fn bench_svc(c: &mut Criterion) {
    let config = open_config();
    // Every request gets its own target window: all misses.
    let cold = solve_stream(|i| i);
    // Each tenant re-asks its one steady-state request: after the first
    // pass every solve is a shard hit.
    let warm = solve_stream(|_| 0);

    let mut group = c.benchmark_group("svc");
    group.bench_function("sustained_qps_cold", |b| {
        b.iter(|| {
            let report = serve(&cold, &config);
            let totals = report.cache_totals();
            assert_eq!(report.accepted as usize, REQUESTS);
            assert_eq!(totals.hits, 0, "cold mix must not hit");
            totals.misses
        })
    });
    group.bench_function("sustained_qps_warm", |b| {
        b.iter(|| {
            let report = serve(&warm, &config);
            let totals = report.cache_totals();
            assert_eq!(report.accepted as usize, REQUESTS);
            assert!(totals.hits > totals.misses * 4, "warm mix must hit");
            totals.hits
        })
    });
    group.finish();
}

criterion_group!(benches, bench_svc);
criterion_main!(benches);
