//! Scheduler ablation: FIFO vs EASY backfill vs Maui priority on a
//! LittleFe-class machine under the teaching-lab workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xcbc_sched::{ClusterSim, SchedPolicy, WorkloadSpec};

fn run_policy(policy: SchedPolicy, jobs: &[(f64, xcbc_sched::JobRequest)]) -> f64 {
    let mut sim = ClusterSim::new(6, 2, policy);
    for (t, req) in jobs {
        sim.run_until(*t);
        sim.submit_at(*t, req.clone());
    }
    sim.run_to_completion();
    xcbc_sched::SimMetrics::from_sim(&sim).mean_wait_s
}

fn bench_sched(c: &mut Criterion) {
    let jobs = WorkloadSpec::teaching_lab().generate(42, 6, 2, 200);

    let mut group = c.benchmark_group("sched/200_jobs_littlefe");
    for (label, policy) in [
        ("fifo", SchedPolicy::Fifo),
        ("easy_backfill", SchedPolicy::EasyBackfill),
        ("maui", SchedPolicy::maui_default()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &policy, |b, &p| {
            b.iter(|| run_policy(p, &jobs))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sched);
criterion_main!(benches);
