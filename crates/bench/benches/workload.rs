//! Open-loop workload engine at scale: one iteration pushes a million
//! simulator events (500k generated jobs, one Submit + one End each)
//! through EASY backfill on an 8×4 machine, tracing off — the
//! configuration `xcbc exp` sweeps run in. Guards the event-loop hot
//! path (backfill shadow time, policy ordering) against quadratic
//! regressions: the run must stay in the seconds range at 10^6 events.

use criterion::{criterion_group, criterion_main, Criterion};
use xcbc_sched::{ClusterSim, SchedPolicy, SimMetrics, WorkloadSpec};

const JOBS: usize = 500_000;

fn bench_workload(c: &mut Criterion) {
    let jobs = WorkloadSpec::teaching_lab().generate(0, 8, 4, JOBS);

    let mut group = c.benchmark_group("workload");
    group.bench_function("million_events_easy_8x4", |b| {
        b.iter(|| {
            let mut sim = ClusterSim::new(8, 4, SchedPolicy::EasyBackfill);
            sim.set_tracing(false);
            for (t, req) in &jobs {
                sim.run_until(*t);
                sim.submit_at(*t, req.clone());
            }
            sim.run_to_completion();
            assert_eq!(sim.events_processed(), 2 * JOBS as u64);
            SimMetrics::from_sim(&sim).utilization
        })
    });
    group.finish();
}

criterion_group!(benches, bench_workload);
criterion_main!(benches);
