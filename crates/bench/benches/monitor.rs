//! Ganglia-substrate throughput: concurrent metric publishing and
//! cluster-wide aggregation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xcbc_cluster::{ClusterMonitor, MetricKind};

fn bench_monitor(c: &mut Criterion) {
    let mut group = c.benchmark_group("monitor/publish");
    for nodes in [6usize, 36, 220] {
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, &nodes| {
            let m = ClusterMonitor::new(64);
            let names: Vec<String> = (0..nodes).map(|i| format!("compute-0-{i}")).collect();
            b.iter(|| {
                for (i, name) in names.iter().enumerate() {
                    m.publish(name, MetricKind::LoadOne, i as f64, 1.0);
                }
                m.cluster_mean(MetricKind::LoadOne)
            })
        });
    }
    group.finish();

    c.bench_function("monitor/dump_36_nodes", |b| {
        let m = ClusterMonitor::new(64);
        for i in 0..36 {
            for k in MetricKind::ALL {
                m.publish(&format!("compute-0-{i}"), k, 0.0, 1.0);
            }
        }
        b.iter(|| m.dump().len())
    });
}

criterion_group!(benches, bench_monitor);
criterion_main!(benches);
