//! Ganglia-substrate throughput: concurrent metric publishing,
//! cluster-wide aggregation, RRD consolidation, and trace-driven
//! telemetry ingest.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xcbc_cluster::{
    default_alert_rules, ClusterMonitor, MetricKind, RrdConfig, TelemetryConfig, TelemetrySink,
};
use xcbc_sim::{TraceEvent, TraceSink};

fn bench_monitor(c: &mut Criterion) {
    let mut group = c.benchmark_group("monitor/publish");
    for nodes in [6usize, 36, 220] {
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, &nodes| {
            let m = ClusterMonitor::new(64);
            let names: Vec<String> = (0..nodes).map(|i| format!("compute-0-{i}")).collect();
            b.iter(|| {
                for (i, name) in names.iter().enumerate() {
                    m.publish(name, MetricKind::LoadOne, i as f64, 1.0);
                }
                m.cluster_mean(MetricKind::LoadOne)
            })
        });
    }
    group.finish();

    c.bench_function("monitor/dump_36_nodes", |b| {
        let m = ClusterMonitor::new(64);
        for i in 0..36 {
            for k in MetricKind::ALL {
                m.publish(&format!("compute-0-{i}"), k, 0.0, 1.0);
            }
        }
        b.iter(|| m.dump().len())
    });
}

/// 10k samples streamed into a node's full RRD layout (raw ring plus
/// AVERAGE and MAX tiers at 60 s steps): the per-sample consolidation
/// cost is what bounds gmetad's ingest rate.
fn bench_consolidation(c: &mut Criterion) {
    c.bench_function("monitor/consolidate_10k_samples", |b| {
        b.iter(|| {
            let m = ClusterMonitor::with_config(RrdConfig::default());
            m.register("compute-0-0");
            for i in 0..10_000u64 {
                m.publish(
                    "compute-0-0",
                    MetricKind::CpuPercent,
                    i as f64 * 1.5,
                    (i % 100) as f64,
                );
            }
            m.cluster_mean(MetricKind::CpuPercent)
        })
    });
}

/// 10k trace spans replayed through the full telemetry sink — host
/// resolution, busy/idle sample derivation, and alert-rule evaluation
/// per event — the `xcbc mon` ingest path end to end.
fn bench_telemetry_ingest(c: &mut Criterion) {
    let hosts: Vec<String> = (0..6).map(|i| format!("compute-0-{i}")).collect();
    let events: Vec<TraceEvent> = (0..10_000u64)
        .map(|i| {
            let host = &hosts[(i % 6) as usize];
            TraceEvent::span(
                i as f64 * 2.0,
                "rocks.install",
                format!("{host}: pxe + kickstart install"),
                1.5,
            )
            .with_field("node", host.clone())
            .with_field("bytes", 500u64 << 20)
        })
        .collect();
    c.bench_function("telemetry/ingest_10k_events", |b| {
        b.iter(|| {
            let monitor = ClusterMonitor::with_config(RrdConfig::default());
            let mut sink = TelemetrySink::new(
                monitor,
                TelemetryConfig::new("littlefe", hosts.clone()),
                default_alert_rules(),
            );
            for e in &events {
                sink.record(e);
            }
            sink.alerts().len()
        })
    });
    // same stream, one `accept_batch` call: the fan-out derives every
    // sample first, then publishes them under a single monitor lock
    c.bench_function("telemetry/ingest_10k_events_batched", |b| {
        b.iter(|| {
            let monitor = ClusterMonitor::with_config(RrdConfig::default());
            let mut sink = TelemetrySink::new(
                monitor,
                TelemetryConfig::new("littlefe", hosts.clone()),
                default_alert_rules(),
            );
            sink.accept_batch(&events);
            sink.alerts().len()
        })
    });
}

criterion_group!(
    benches,
    bench_monitor,
    bench_consolidation,
    bench_telemetry_ingest
);
criterion_main!(benches);
