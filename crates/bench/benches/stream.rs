//! STREAM kernels (real memory bandwidth) at two sizes and thread counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use xcbc_hpl::{run_stream, StreamKernel};

fn bench_stream(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream/triad");
    group.sample_size(10);
    for n in [1usize << 16, 1 << 20] {
        group.throughput(Throughput::Bytes(3 * 8 * n as u64));
        for threads in [1usize, 4] {
            group.bench_with_input(BenchmarkId::new(format!("{threads}t"), n), &n, |b, &n| {
                b.iter(|| run_stream(StreamKernel::Triad, n, threads, 1).checksum)
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_stream);
criterion_main!(benches);
