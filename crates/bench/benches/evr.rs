//! Microbenchmark: rpmvercmp and EVR ordering throughput — the inner
//! loop of every solver decision.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use xcbc_rpm::{rpmvercmp, Evr};

fn bench_evr(c: &mut Criterion) {
    let pairs = [
        ("1.0", "2.0"),
        ("2.6.32-431.el6", "2.6.32-504.el6"),
        ("1.0~rc1", "1.0"),
        ("4.6.5", "4.6.5"),
        ("1.7.0.51", "1.8.0.5"),
        ("99999999999999999998", "99999999999999999999"),
    ];
    c.bench_function("rpmvercmp/mixed_pairs", |b| {
        b.iter(|| {
            for (x, y) in pairs {
                black_box(rpmvercmp(black_box(x), black_box(y)));
            }
        })
    });
    let a = Evr::parse("2:4.6.5-2.el6");
    let b2 = Evr::parse("2:4.6.5-10.el6");
    c.bench_function("evr/cmp", |b| b.iter(|| black_box(&a).cmp(black_box(&b2))));
    c.bench_function("evr/parse", |b| {
        b.iter(|| Evr::parse(black_box("2:4.6.5-2.el6")))
    });
}

criterion_group!(benches, bench_evr);
criterion_main!(benches);
