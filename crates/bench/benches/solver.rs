//! Dependency-solver scaling: install-closure resolution time vs
//! catalog size (the paper's `yum install` path), plus the real XNIT
//! catalog resolution and a before/after comparison of the borrowed
//! (current) vs cloning (pre-refactor) worklist.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::{HashSet, VecDeque};
use xcbc_rpm::{Package, PackageBuilder, RpmDb};
use xcbc_yum::{Repository, Solver, Yum, YumConfig};

/// Synthetic catalog: n packages, each requiring up to 3 earlier ones.
fn synthetic_repo(n: usize) -> Repository {
    let mut repo = Repository::new("gen", "generated");
    for i in 0..n {
        let mut b = PackageBuilder::new(&format!("pkg{i}"), "1.0", "1");
        for d in 1..=3usize {
            if i >= d * 7 {
                b = b.requires_simple(&format!("pkg{}", i - d * 7));
            }
        }
        repo.add_package(b.build());
    }
    repo
}

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/install_closure");
    for n in [100usize, 400, 1600] {
        let repo = synthetic_repo(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut yum = Yum::new(YumConfig::default());
            yum.add_repository(repo.clone());
            b.iter(|| {
                let mut db = RpmDb::new();
                yum.install(&mut db, &[&format!("pkg{}", n - 1)]).unwrap();
                db.len()
            })
        });
    }
    group.finish();

    c.bench_function("solver/xnit_full_gromacs", |b| {
        let mut yum = Yum::new(YumConfig::default());
        yum.add_repository(xcbc_core::xnit_repository());
        b.iter(|| {
            let mut db = RpmDb::new();
            yum.install(&mut db, &["gromacs"]).unwrap();
            db.len()
        })
    });

    // Before/after pair for the worklist refactor: `resolve_install`
    // now carries `&Package` borrows through the closure and clones
    // once into the Solution; the baseline below re-creates the old
    // clone-into-the-queue algorithm on the same public API. Compare
    // `solver/xnit_catalog_resolve` against
    // `solver/xnit_catalog_resolve_cloning_baseline`.
    c.bench_function("solver/xnit_catalog_resolve", |b| {
        let repos = vec![xcbc_core::xnit_repository()];
        let cfg = YumConfig::default();
        let solver = Solver::new(&repos, &cfg);
        let names: Vec<String> = xcbc_core::catalog::CATALOG
            .iter()
            .map(|e| e.name.to_string())
            .collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let db = RpmDb::new();
        b.iter(|| solver.resolve_install(&db, &refs).unwrap().len())
    });

    c.bench_function("solver/xnit_catalog_resolve_cloning_baseline", |b| {
        let repos = vec![xcbc_core::xnit_repository()];
        let cfg = YumConfig::default();
        let solver = Solver::new(&repos, &cfg);
        let names: Vec<String> = xcbc_core::catalog::CATALOG
            .iter()
            .map(|e| e.name.to_string())
            .collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let db = RpmDb::new();
        b.iter(|| cloning_resolve_install(&solver, &db, &refs).len())
    });

    c.bench_function("solver/xnit_everything", |b| {
        let mut yum = Yum::new(YumConfig::default());
        yum.add_repository(xcbc_core::xnit_repository());
        let names: Vec<String> = xcbc_core::catalog::CATALOG
            .iter()
            .map(|e| e.name.to_string())
            .collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        b.iter(|| {
            let mut db = RpmDb::new();
            yum.install(&mut db, &refs).unwrap();
            db.len()
        })
    });
}

/// The pre-refactor install closure: whole `Package` values (deep
/// Requires/Provides vectors included) cloned into the worklist and
/// again when checking satisfaction — kept here only as the
/// benchmark baseline.
fn cloning_resolve_install(solver: &Solver<'_>, db: &RpmDb, names: &[&str]) -> Vec<Package> {
    let mut solution: Vec<Package> = Vec::new();
    let mut chosen: HashSet<String> = HashSet::new();
    let mut queue: VecDeque<(Package, String)> = VecDeque::new();

    for name in names {
        let p = solver.best_by_name(name).expect("catalog name resolves");
        if db
            .newest(p.name())
            .map(|ip| ip.package.nevra.evr >= p.nevra.evr)
            .unwrap_or(false)
        {
            continue;
        }
        if chosen.insert(p.name().to_string()) {
            queue.push_back((p.clone(), String::new()));
        }
    }
    while let Some((pkg, _via)) = queue.pop_front() {
        for req in pkg.requires.clone() {
            if db.provides(&req) {
                continue;
            }
            let in_solution = solution
                .iter()
                .chain(std::iter::once(&pkg))
                .chain(queue.iter().map(|(p, _)| p))
                .any(|p| p.satisfies(&req));
            if in_solution {
                continue;
            }
            let provider = solver.best_provider(&req).expect("catalog closes");
            if chosen.insert(provider.name().to_string()) {
                queue.push_back((provider.clone(), pkg.nevra.to_string()));
            }
        }
        solution.push(pkg);
    }
    solution
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
