//! Dependency-solver scaling: install-closure resolution time vs
//! catalog size (the paper's `yum install` path), plus the real XNIT
//! catalog resolution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xcbc_rpm::{PackageBuilder, RpmDb};
use xcbc_yum::{Repository, Yum, YumConfig};

/// Synthetic catalog: n packages, each requiring up to 3 earlier ones.
fn synthetic_repo(n: usize) -> Repository {
    let mut repo = Repository::new("gen", "generated");
    for i in 0..n {
        let mut b = PackageBuilder::new(&format!("pkg{i}"), "1.0", "1");
        for d in 1..=3usize {
            if i >= d * 7 {
                b = b.requires_simple(&format!("pkg{}", i - d * 7));
            }
        }
        repo.add_package(b.build());
    }
    repo
}

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/install_closure");
    for n in [100usize, 400, 1600] {
        let repo = synthetic_repo(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut yum = Yum::new(YumConfig::default());
            yum.add_repository(repo.clone());
            b.iter(|| {
                let mut db = RpmDb::new();
                yum.install(&mut db, &[&format!("pkg{}", n - 1)]).unwrap();
                db.len()
            })
        });
    }
    group.finish();

    c.bench_function("solver/xnit_full_gromacs", |b| {
        let mut yum = Yum::new(YumConfig::default());
        yum.add_repository(xcbc_core::xnit_repository());
        b.iter(|| {
            let mut db = RpmDb::new();
            yum.install(&mut db, &["gromacs"]).unwrap();
            db.len()
        })
    });

    c.bench_function("solver/xnit_everything", |b| {
        let mut yum = Yum::new(YumConfig::default());
        yum.add_repository(xcbc_core::xnit_repository());
        let names: Vec<String> =
            xcbc_core::catalog::CATALOG.iter().map(|e| e.name.to_string()).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        b.iter(|| {
            let mut db = RpmDb::new();
            yum.install(&mut db, &refs).unwrap();
            db.len()
        })
    });
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
