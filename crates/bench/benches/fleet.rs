//! Fleet-scale deployment benchmark: an 8-site XNIT overlay fleet
//! deployed sequentially (1 worker) vs in parallel (4 workers) over a
//! shared solve cache. The interesting outputs are the sequential vs
//! parallel ratio and the solve-cache hit rate printed after each run
//! (identical sites should depsolve once and hit thereafter).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::BTreeMap;
use xcbc_cluster::specs::limulus_hpc200;
use xcbc_core::deploy::limulus_factory_image;
use xcbc_core::fleet::{Fleet, FleetSite};
use xcbc_core::XnitSetupMethod;
use xcbc_rpm::RpmDb;

const SITES: usize = 8;

fn limulus_dbs() -> BTreeMap<String, RpmDb> {
    limulus_hpc200()
        .nodes
        .iter()
        .map(|n| (n.hostname.clone(), limulus_factory_image()))
        .collect()
}

fn overlay_fleet(threads: usize) -> Fleet {
    let mut fleet = Fleet::new().with_threads(threads);
    for i in 0..SITES {
        fleet = fleet.add_site(FleetSite::overlay(
            format!("site-{i}"),
            limulus_dbs(),
            XnitSetupMethod::RepoRpm,
        ));
    }
    fleet
}

fn bench_fleet(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet");
    group.sample_size(10);

    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("overlay_8_sites", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let fleet = overlay_fleet(threads);
                    let report = fleet.deploy();
                    assert!(report.all_succeeded());
                    report.total_site_seconds()
                })
            },
        );
        // Hit rate and simulated makespan for one representative run at
        // this thread count: the first site misses per distinct
        // request, the other 7 hit; 8 equal sites on 4 workers finish
        // the campaign 4x sooner on the simulation clock.
        let report = overlay_fleet(threads).deploy();
        eprintln!(
            "fleet/overlay_8_sites/{threads}: {:.0}s simulated makespan ({:.1}x vs sequential); solve cache {} hits / {} misses ({:.0}% hit rate)",
            report.makespan_seconds(),
            report.total_site_seconds() / report.makespan_seconds(),
            report.cache.hits,
            report.cache.misses,
            report.cache.hit_rate() * 100.0
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fleet);
criterion_main!(benches);
