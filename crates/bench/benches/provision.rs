//! Deployment-path benchmark: full from-scratch install vs XNIT overlay
//! (simulated work, not wall-clock claims — the interesting output is
//! the relative cost of the two code paths).

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeMap;
use xcbc_cluster::specs::{limulus_hpc200, littlefe_modified};
use xcbc_core::deploy::{deploy_from_scratch, deploy_xnit_overlay, limulus_factory_image};
use xcbc_core::XnitSetupMethod;

fn bench_provision(c: &mut Criterion) {
    let mut group = c.benchmark_group("provision");
    group.sample_size(10);

    group.bench_function("from_scratch_littlefe", |b| {
        b.iter(|| {
            deploy_from_scratch(&littlefe_modified())
                .unwrap()
                .nodes_reinstalled
        })
    });

    let limulus: BTreeMap<_, _> = limulus_hpc200()
        .nodes
        .iter()
        .map(|n| (n.hostname.clone(), limulus_factory_image()))
        .collect();
    group.bench_function("xnit_overlay_limulus", |b| {
        b.iter(|| {
            deploy_xnit_overlay(&limulus, XnitSetupMethod::RepoRpm)
                .unwrap()
                .compat
                .matching
        })
    });
    group.finish();
}

criterion_group!(benches, bench_provision);
criterion_main!(benches);
