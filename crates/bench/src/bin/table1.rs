//! Regenerate Table 1 — XCBC build part 1 (general cluster setup).
fn main() {
    print!("{}", xcbc_bench::header("XCBC 0.9 — Table 1 regeneration"));
    print!("{}", xcbc_core::report::render_table1());
}
