//! §3/§8 comparison: Rocks from-scratch vs XNIT overlay.
//!
//! Reproduces the paper's qualitative claims as numbers: the overlay
//! touches zero node OSes and preserves the pre-existing setup; the
//! from-scratch path reinstalls every node but needs no prior system.

use std::collections::BTreeMap;
use xcbc_cluster::specs::{limulus_hpc200, littlefe_modified};
use xcbc_core::deploy::{deploy_from_scratch, deploy_xnit_overlay, limulus_factory_image};
use xcbc_core::XnitSetupMethod;

fn main() {
    print!("{}", xcbc_bench::header("Deployment path comparison"));

    let scratch = deploy_from_scratch(&littlefe_modified()).expect("LittleFe installs");
    println!("{}", scratch.render_row());

    let limulus: BTreeMap<_, _> = limulus_hpc200()
        .nodes
        .iter()
        .map(|n| (n.hostname.clone(), limulus_factory_image()))
        .collect();
    for method in [XnitSetupMethod::RepoRpm, XnitSetupMethod::ManualRepoFile] {
        let overlay = deploy_xnit_overlay(&limulus, method).expect("overlay succeeds");
        println!("{}", overlay.render_row());
    }

    println!("\nFrom-scratch timeline (LittleFe):");
    print!("{}", scratch.timeline.render());

    println!("\nWhy the Limulus cannot take the from-scratch path:");
    match deploy_from_scratch(&limulus_hpc200()) {
        Err(e) => println!("  {e}"),
        Ok(_) => println!("  (unexpectedly installable)"),
    }
}
