//! Regenerate Table 4 — deskside cluster characteristics.
fn main() {
    print!("{}", xcbc_bench::header("Table 4 regeneration"));
    print!("{}", xcbc_core::report::render_table4());
}
