//! Regenerate Table 3 — deployed XCBC clusters.
fn main() {
    print!(
        "{}",
        xcbc_bench::header("XCBC fleet — Table 3 regeneration")
    );
    print!("{}", xcbc_core::report::render_table3());
    let t = xcbc_core::fleet_totals();
    println!(
        "\nPaper totals: 304 nodes / 2708 cores / 49.61 TF — regenerated: {} / {} / {:.2} TF",
        t.nodes, t.cores, t.rpeak_tflops
    );
}
