//! §5.1 modification analysis: why the stock LittleFe cannot host XCBC
//! and what each hardware change buys.

use xcbc_cluster::specs::{littlefe_modified, littlefe_v4};
use xcbc_cluster::thermal::LITTLEFE_BAY_CLEARANCE_MM;
use xcbc_cluster::{check_node_thermals, hw, NodeRole, NodeSpec};

fn main() {
    print!(
        "{}",
        xcbc_bench::header("LittleFe modification analysis (§5.1)")
    );

    let v4 = littlefe_v4();
    let modified = littlefe_modified();

    println!("Rocks installability:");
    for c in [&v4, &modified] {
        let (ok, reasons) = c.rocks_installable();
        println!(
            "  {:<28} {}",
            c.name,
            if ok {
                "OK".to_string()
            } else {
                reasons.join("; ")
            }
        );
    }

    println!("\nPer-CPU comparison (paper: 10.56 W vs 43.06 W):");
    for cpu in [hw::ATOM_D510, hw::CELERON_G1840] {
        println!(
            "  {:<22} {:.2} GHz  {} cores  {:>6.2} W measured  {:>5.1} GF/socket",
            cpu.name,
            cpu.clock_ghz,
            cpu.cores,
            cpu.measured_watts,
            xcbc_cluster::rpeak_gflops_cpu(&cpu)
        );
    }

    println!("\nCooler fit in a {LITTLEFE_BAY_CLEARANCE_MM} mm LittleFe bay:");
    for cooler in [
        hw::ATOM_HEATSINK,
        hw::INTEL_STOCK_COOLER,
        hw::ROSEWILL_RCX_Z775_LP,
    ] {
        let node = NodeSpec::new("probe", NodeRole::Compute)
            .cpu(hw::CELERON_G1840)
            .cooler(cooler.clone())
            .build();
        let issues = check_node_thermals(&node, LITTLEFE_BAY_CLEARANCE_MM);
        println!(
            "  {:<42} {}",
            cooler.name,
            if issues.is_empty() {
                "fits and cools".to_string()
            } else {
                issues
                    .iter()
                    .map(|i| i.to_string())
                    .collect::<Vec<_>>()
                    .join("; ")
            }
        );
    }

    println!("\nPower budget:");
    println!(
        "  v4 (shared {} W supply):       load {:>6.1} W — ok: {}",
        v4.shared_psu.as_ref().map(|p| p.watts).unwrap_or(0.0),
        v4.load_watts(),
        v4.power_budget_ok()
    );
    println!(
        "  modified (per-node 120 W):     load {:>6.1} W — ok: {}",
        modified.load_watts(),
        modified.power_budget_ok()
    );

    println!(
        "\nRpeak: v4 {:.1} GF -> modified {:.1} GF ({:.1}x)",
        v4.rpeak_gflops(),
        modified.rpeak_gflops(),
        modified.rpeak_gflops() / v4.rpeak_gflops()
    );
}
