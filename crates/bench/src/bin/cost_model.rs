//! §7/§8 cost analysis: BOMs, price-performance, order-of-magnitude
//! comparison against a server configuration, and the cluster-vs-cloud
//! TCO crossover.

use xcbc_cluster::cost::{
    limulus_hpc200_bom, littlefe_modified_bom, server_configuration_bom, CloudOffering,
    TcoComparison,
};
use xcbc_cluster::specs::{limulus_hpc200, littlefe_modified, LITTLEFE_COST_USD};

fn main() {
    print!("{}", xcbc_bench::header("Cost analysis (§7/§8)"));

    let lf_bom = littlefe_modified_bom();
    println!("LittleFe (modified) bill of materials:");
    for line in &lf_bom.lines {
        println!(
            "  {:<38} {:>8.2} x{:<2} = {:>9.2}",
            line.item,
            line.unit_usd,
            line.quantity,
            line.total()
        );
    }
    println!("  {:<38} {:>24.2}", "TOTAL", lf_bom.total_usd());

    println!("\nSystem prices:");
    for bom in [&lf_bom, &limulus_hpc200_bom(), &server_configuration_bom()] {
        println!("  {:<42} ${:>9.2}", bom.system, bom.total_usd());
    }
    println!(
        "  -> server config / LittleFe price ratio: {:.1}x (paper: 'an order of magnitude')",
        server_configuration_bom().total_usd() / lf_bom.total_usd()
    );

    println!("\nCluster vs commercial cloud (AWS 2015 pricing), 6 nodes:");
    let cluster = littlefe_modified();
    for hours_per_month in [40.0, 160.0, 400.0] {
        let tco = TcoComparison::compute(
            LITTLEFE_COST_USD,
            cluster.load_watts(),
            &CloudOffering::aws_2015(),
            6,
            hours_per_month,
            60,
        );
        println!(
            "  {:>5.0} node-busy h/mo: cloud ${:>7.0}/mo, cluster opex ${:>5.0}/mo, crossover: {}",
            hours_per_month,
            tco.cloud_usd_per_month,
            tco.cluster_opex_usd_per_month,
            match tco.crossover_months {
                Some(m) => format!("month {m}"),
                None => "never (within 5 years)".to_string(),
            }
        );
    }

    let lm = limulus_hpc200();
    println!("\nPrice-performance (Table 5 reprise):");
    println!(
        "  LittleFe        ${}/GF Rpeak",
        lf_bom.usd_per_gflops_rounded(cluster.rpeak_gflops())
    );
    println!(
        "  Limulus HPC200  ${}/GF Rpeak",
        limulus_hpc200_bom().usd_per_gflops_rounded(lm.rpeak_gflops())
    );
}
