//! Regenerate Figures 1-3 as chassis renderings from the hardware model.
fn main() {
    print!(
        "{}",
        xcbc_bench::header("Figures 1-3 (substitute renderings)")
    );
    print!("{}", xcbc_core::report::render_figures());
}
