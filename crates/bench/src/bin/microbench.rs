//! Host characterization: the three classic microbenchmarks the §6
//! curriculum teaches — STREAM (real), ping-pong (GbE model), and a
//! quick HPL point (real) — plus the failure-injection reprise of the
//! Table 5 footnote.

use xcbc_cluster::specs::littlefe_modified;
use xcbc_cluster::{DegradedCluster, FailedComponent, Failure};
use xcbc_hpl::{pingpong_bandwidth_mb_s, run_hpl, run_stream, HplConfig, StreamKernel};

fn main() {
    print!("{}", xcbc_bench::header("Deskside-cluster microbenchmarks"));

    println!("STREAM (real, this host, N=4M doubles):");
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8);
    for kernel in [
        StreamKernel::Copy,
        StreamKernel::Scale,
        StreamKernel::Add,
        StreamKernel::Triad,
    ] {
        let r = run_stream(kernel, 4 << 20, threads, 3);
        println!(
            "  {:<6?} {:>8.2} GB/s ({} threads)",
            kernel, r.bandwidth_gb_s, r.threads
        );
    }

    println!("\nMPI ping-pong over the LittleFe's GbE (model):");
    for p in [3u32, 10, 17, 20] {
        let bytes = 1u64 << p;
        println!(
            "  {:>9} B  {:>8.2} MB/s",
            bytes,
            pingpong_bandwidth_mb_s(bytes, 50.0, 1.0)
        );
    }

    println!("\nHPL spot check (real, N=512):");
    let r = run_hpl(&HplConfig {
        n: 512,
        nb: 64,
        threads,
        seed: 1,
    });
    println!("  {}", r.render());

    println!("\nTable 5 footnote reprise — a node dies before Linpack:");
    let degraded = DegradedCluster::new(
        littlefe_modified(),
        vec![Failure {
            hostname: "compute-0-3".into(),
            component: FailedComponent::Motherboard,
        }],
    );
    println!(
        "  full Linpack possible: {}; degraded Rpeak {:.1} GF of 537.6",
        degraded.can_run_full_linpack(),
        degraded.degraded_rpeak_gflops()
    );
    println!("  -> the paper estimated Rmax at 75% of Rpeak instead of measuring (403.2 GF)");
}
