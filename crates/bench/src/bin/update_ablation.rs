//! §3 update-strategy ablation: automatic yum vs notify vs staged test
//! vs Rocks update rolls, across 200 simulated update cycles with a 10 %
//! breaking-update rate.

use xcbc_core::update::{simulate_updates, UpdateStrategy};

fn main() {
    print!("{}", xcbc_bench::header("Update strategy ablation (§3)"));
    println!(
        "{:<16} {:>10} {:>10} {:>12} {:>12}",
        "strategy", "prod-incid", "caught", "admin-steps", "staleness"
    );
    for strategy in [
        UpdateStrategy::AutomaticYum,
        UpdateStrategy::NotifyOnly,
        UpdateStrategy::StagedTest,
        UpdateStrategy::UpdateRoll,
    ] {
        let r = simulate_updates(strategy, 200, 0.10, 2015);
        println!(
            "{:<16} {:>10} {:>10} {:>12} {:>9.0} d",
            r.strategy_label,
            r.production_incidents,
            r.caught_in_staging,
            r.admin_steps_total,
            r.mean_staleness_days
        );
    }
    println!("\nPaper: automatic updates 'may cause unexpected behavior in a production");
    println!("environment'; staged review is 'the more prudent action'. The simulation");
    println!("shows the trade: incidents vs admin effort vs staleness.");
}
