//! Regenerate Table 5 — performance and price/performance.
fn main() {
    print!("{}", xcbc_bench::header("Table 5 regeneration"));
    print!("{}", xcbc_core::report::render_table5());
}
