//! Regenerate Table 2 — XSEDE run-alike components.
fn main() {
    print!("{}", xcbc_bench::header("XCBC 0.9 — Table 2 regeneration"));
    print!("{}", xcbc_core::report::render_table2());
}
