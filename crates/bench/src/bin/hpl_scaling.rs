//! Real Linpack on this machine: GFLOPS vs problem size and threads,
//! plus the analytic Rmax model's Table 5 projections.

use xcbc_hpl::{run_hpl, EfficiencyModel, HplConfig};

fn main() {
    print!(
        "{}",
        xcbc_bench::header("HPL scaling (real runs on this host)")
    );

    println!("GFLOPS vs problem size (NB=64, 1 thread):");
    for n in [128usize, 256, 512, 1024] {
        let r = run_hpl(&HplConfig {
            n,
            nb: 64,
            threads: 1,
            seed: 42,
        });
        println!("  {}", r.render());
        assert!(r.passed, "residual check failed at N={n}");
    }

    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    println!("\nGFLOPS vs threads (N=1024, NB=64):");
    for t in [1usize, 2, 4, max_threads] {
        if t > max_threads {
            continue;
        }
        let r = run_hpl(&HplConfig {
            n: 1024,
            nb: 64,
            threads: t,
            seed: 42,
        });
        println!("  {}", r.render());
    }

    println!("\nAnalytic Rmax model (Table 5 projections):");
    let m = EfficiencyModel::gigabit_deskside();
    let lf_rmax = m.rmax_gflops(537.6, 6, 48_000);
    let lm_rmax = m.rmax_gflops(793.6, 4, 64_000);
    println!(
        "  LittleFe  (6 nodes, Rpeak 537.6): model Rmax {:.1} GF (paper est. 403.2)",
        lf_rmax
    );
    println!(
        "  Limulus   (4 nodes, Rpeak 793.6): model Rmax {:.1} GF (paper meas. 498.3)",
        lm_rmax
    );
}
