//! # xcbc-bench — benchmark harness and experiment regeneration
//!
//! Binaries (one per paper artifact; run with `cargo run --bin <name>`):
//!
//! | binary          | regenerates |
//! |-----------------|-------------|
//! | `table1`        | Table 1 — XCBC part 1 (Rocks rolls) |
//! | `table2`        | Table 2 — XSEDE run-alike components |
//! | `table3`        | Table 3 — deployed clusters + totals |
//! | `table4`        | Table 4 — LittleFe vs Limulus characteristics |
//! | `table5`        | Table 5 — Rpeak/Rmax/price-performance |
//! | `figures`       | Figures 1–3 — chassis renderings |
//! | `deploy_compare`| §3/§8 from-scratch vs XNIT-overlay comparison |
//! | `littlefe_mod`  | §5.1 modification constraints (thermal/power/disk) |
//! | `cost_model`    | §7/§8 price and cloud-TCO analysis |
//! | `update_ablation` | §3 update-strategy risk ablation |
//! | `hpl_scaling`   | real Linpack: GFLOPS vs N and threads |
//!
//! Criterion benches (under `benches/`): `solver`, `hpl`, `sched`,
//! `provision`, `evr`.

use std::time::Instant;

/// Print a section header the way the binaries format their output.
pub fn header(title: &str) -> String {
    format!("{}\n{}\n", title, "=".repeat(title.len()))
}

/// Time a closure, returning (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_underlines() {
        let h = header("Table 1");
        assert_eq!(h, "Table 1\n=======\n");
    }

    #[test]
    fn timed_returns_result() {
        let (v, secs) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }
}
