//! `xcbcd` — the multi-tenant depsolve/deploy service daemon, in its
//! batch form: serve a seeded stream and journal it, or replay a
//! journal and verify it.
//!
//! ```text
//! xcbcd --tenants N --workers N --requests N [--seed S] [--shards N]
//!       [--journal FILE]     serve a seeded synthetic stream; print the
//!                            run summary and (optionally) write the
//!                            journal. The journal is byte-identical at
//!                            any --workers value — that is the
//!                            determinism contract the soak harness and
//!                            CI quick-gate enforce.
//! xcbcd --replay FILE        re-execute a journal single-threaded and
//!                            verify every recorded response-body digest
//!                            and the cache-counter totals. Exit status
//!                            is the verdict.
//! ```

use std::env;
use std::process::ExitCode;

use xcbc::svc::{replay, serve, SvcWorkload};

fn flag_value<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: xcbcd [--tenants N] [--workers N] [--requests N] [--seed S] \
             [--shards N] [--journal FILE] | xcbcd --replay FILE"
        );
        return ExitCode::SUCCESS;
    }

    if let Some(path) = flag_value::<String>(&args, "--replay") {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("xcbcd: cannot read journal {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match replay(&text) {
            Ok(verdict) => {
                print!("{}", verdict.render());
                if verdict.is_clean() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("xcbcd: journal does not parse: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let workload = SvcWorkload {
        tenants: flag_value(&args, "--tenants").unwrap_or(3),
        requests: flag_value(&args, "--requests").unwrap_or(32),
        seed: flag_value(&args, "--seed").unwrap_or(0),
        ..SvcWorkload::default()
    };
    let mut config = workload.config(flag_value(&args, "--workers").unwrap_or(4));
    if let Some(shards) = flag_value(&args, "--shards") {
        config.shards = shards;
    }

    let report = serve(&workload.generate(), &config);
    print!("{}", report.summary());

    match flag_value::<String>(&args, "--journal") {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &report.journal_text) {
                eprintln!("xcbcd: cannot write journal {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("journal: {} entries written to {path}", report.accepted);
        }
        None => {
            // no journal destination: emit it on stdout so pipelines can
            // capture and diff it (the CI quick-gate does exactly this)
            print!("{}", report.journal_text);
        }
    }
    ExitCode::SUCCESS
}
