//! `xcbc` — the toolkit's command-line entry point.
//!
//! ```text
//! xcbc tables              regenerate every paper table + figures
//! xcbc deploy <target>     simulate a deployment (littlefe | limulus | both)
//!       [--faults "<plan>"]  inject faults, e.g. "seed=42; node.boot key=compute-0-2"
//! xcbc lab <student>       run the training curriculum and print the grade sheet
//! xcbc linpack [n]         run a real HPL point on this machine
//! xcbc fleet               deploy the Table 3 fleet concurrently
//!       [--threads N]        worker threads (default 4)
//!       [--jsonl]            emit the merged fleet trace as JSONL
//!       [--table]            just print the static Table 3 registry
//! xcbc compat              demo the compatibility checker on a bare cluster
//! xcbc trace <scenario>    merged event trace of a whole deployment day
//!       [--faults "<plan>"]  on one simulated timebase (scenario: littlefe)
//!       [--jsonl]            emit the raw deterministic JSONL log instead
//! ```

use std::collections::BTreeMap;
use std::env;
use std::process::ExitCode;

use xcbc::cluster::specs::{limulus_hpc200, littlefe_modified};
use xcbc::core::deploy::{
    deploy_from_scratch, deploy_from_scratch_resilient, deploy_xnit_overlay, limulus_factory_image,
};
use xcbc::core::fleet::{Fleet, FleetSite};
use xcbc::core::report;
use xcbc::core::sites::{deployed_sites, AdoptionPath};
use xcbc::core::training::{littlefe_curriculum, LabSession};
use xcbc::core::XnitSetupMethod;
use xcbc::fault::{FaultPlan, InstallCheckpoint, RetryPolicy};
use xcbc::rocks::{boot_node, InstallErrorKind, ResilienceConfig};
use xcbc::sched::{ClusterSim, JobRequest, SchedPolicy};
use xcbc::sim::{events_to_jsonl, MetricsSink, SimTime, TraceEvent, TraceKind, TraceSink};
use xcbc::yum::{FetchOptions, Mirror, MirrorList};

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    match cmd {
        "tables" => tables(),
        "deploy" => {
            let target = match args.get(1).map(String::as_str) {
                None | Some("--faults") => "both",
                Some(t) => t,
            };
            let faults = args
                .iter()
                .position(|a| a == "--faults")
                .and_then(|i| args.get(i + 1))
                .map(String::as_str);
            deploy(target, faults)
        }
        "lab" => lab(args.get(1).map(String::as_str).unwrap_or("student")),
        "linpack" => linpack(args.get(1).and_then(|s| s.parse().ok()).unwrap_or(512)),
        "fleet" => {
            if args.iter().any(|a| a == "--table") {
                print!("{}", report::render_table3());
                return ExitCode::SUCCESS;
            }
            let threads = args
                .iter()
                .position(|a| a == "--threads")
                .and_then(|i| args.get(i + 1))
                .and_then(|s| s.parse().ok())
                .unwrap_or(4);
            let jsonl = args.iter().any(|a| a == "--jsonl");
            fleet_deploy(threads, jsonl)
        }
        "compat" => compat(),
        "trace" => {
            let scenario = match args.get(1).map(String::as_str) {
                None | Some("--faults") | Some("--jsonl") => "littlefe",
                Some(s) => s,
            };
            let faults = args
                .iter()
                .position(|a| a == "--faults")
                .and_then(|i| args.get(i + 1))
                .map(String::as_str);
            let jsonl = args.iter().any(|a| a == "--jsonl");
            trace(scenario, faults, jsonl)
        }
        "help" | "--help" | "-h" => {
            eprintln!(
                "usage: xcbc <tables|deploy [littlefe|limulus|both] [--faults \"<plan>\"]|lab [name]|linpack [n]|fleet [--threads N] [--jsonl] [--table]|compat|trace [littlefe] [--faults \"<plan>\"] [--jsonl]>"
            );
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("xcbc: unknown command {other:?} (try `xcbc help`)");
            ExitCode::FAILURE
        }
    }
}

/// Deploy a fleet modeled on Table 3's adoption paths: every
/// `XcbcFromScratch` row becomes a from-scratch Rocks install (on the
/// LittleFe spec, seeded per site) and every `XnitRepository` row an
/// XNIT overlay on a Limulus factory image — all sharing one solve
/// cache across `threads` workers.
fn fleet_deploy(threads: usize, jsonl: bool) -> ExitCode {
    let limulus_dbs = || -> BTreeMap<_, _> {
        limulus_hpc200()
            .nodes
            .iter()
            .map(|n| (n.hostname.clone(), limulus_factory_image()))
            .collect()
    };
    let mut fleet = Fleet::new().with_threads(threads);
    for (i, site) in deployed_sites().into_iter().enumerate() {
        fleet = fleet.add_site(match site.path {
            AdoptionPath::XcbcFromScratch => {
                FleetSite::from_scratch(site.name, littlefe_modified(), i as u64)
            }
            AdoptionPath::XnitRepository => {
                FleetSite::overlay(site.name, limulus_dbs(), XnitSetupMethod::RepoRpm)
            }
        });
    }
    let report = fleet.deploy();
    if jsonl {
        print!("{}", report.merged_jsonl());
    } else {
        print!("{}", report.render());
    }
    if report.all_succeeded() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn tables() -> ExitCode {
    print!("{}", report::render_table1());
    println!();
    print!("{}", report::render_table2());
    print!("{}", report::render_table3());
    println!();
    print!("{}", report::render_table4());
    println!();
    print!("{}", report::render_table5());
    println!();
    print!("{}", report::render_figures());
    ExitCode::SUCCESS
}

fn deploy(target: &str, faults: Option<&str>) -> ExitCode {
    if target == "littlefe" || target == "both" {
        match faults {
            Some(dsl) => {
                if deploy_littlefe_with_faults(dsl) == ExitCode::FAILURE {
                    return ExitCode::FAILURE;
                }
            }
            None => match deploy_from_scratch(&littlefe_modified()) {
                Ok(r) => println!("{}", r.render_row()),
                Err(e) => {
                    eprintln!("littlefe deploy failed: {e}");
                    return ExitCode::FAILURE;
                }
            },
        }
    }
    if target == "limulus" || target == "both" {
        let existing: BTreeMap<_, _> = limulus_hpc200()
            .nodes
            .iter()
            .map(|n| (n.hostname.clone(), limulus_factory_image()))
            .collect();
        match deploy_xnit_overlay(&existing, XnitSetupMethod::RepoRpm) {
            Ok(r) => println!("{}", r.render_row()),
            Err(e) => {
                eprintln!("limulus overlay failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if !["littlefe", "limulus", "both"].contains(&target) {
        eprintln!("xcbc deploy: unknown target {target:?}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// From-scratch LittleFe build under an injected fault plan. A power
/// loss aborts with a checkpoint; we resume from it the way an
/// administrator re-running the installer would, until the deployment
/// lands (possibly degraded, with a post-mortem).
fn deploy_littlefe_with_faults(dsl: &str) -> ExitCode {
    let plan = match FaultPlan::parse(dsl) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("xcbc deploy: bad fault plan: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cluster = littlefe_modified();
    let mut checkpoint = InstallCheckpoint::new();
    // each power loss strictly grows the committed set, so this
    // terminates; the cap only guards against future plan mistakes
    for _ in 0..=cluster.nodes.len() {
        match deploy_from_scratch_resilient(
            &cluster,
            &plan,
            &ResilienceConfig::default(),
            checkpoint,
        ) {
            Ok(r) => {
                print!("{}", r.render());
                return ExitCode::SUCCESS;
            }
            Err(e) if matches!(e.kind, InstallErrorKind::PowerLoss) => {
                eprintln!(
                    "power lost mid-install [{} node(s) committed]; resuming from checkpoint",
                    e.progress.completed.len()
                );
                checkpoint = e.progress.checkpoint.clone();
            }
            Err(e) => {
                eprintln!("littlefe deploy failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    eprintln!("littlefe deploy: gave up after repeated power losses");
    ExitCode::FAILURE
}

fn lab(student: &str) -> ExitCode {
    let mut session = LabSession::new(student, littlefe_modified());
    session.run(&littlefe_curriculum());
    print!("{}", session.render());
    if session.grade() == 1.0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn linpack(n: usize) -> ExitCode {
    let threads = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(4)
        .min(8);
    let r = xcbc::hpl::run_hpl(&xcbc::hpl::HplConfig {
        n,
        nb: 64,
        threads,
        seed: 42,
    });
    println!("{}", r.render());
    if r.passed {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// One virtual day-one on a LittleFe, end to end, on a single timebase:
/// fetch the XSEDE roll over the mirror network, build the cluster from
/// scratch (under the fault plan, if any), PXE-boot the first compute
/// node into production, then push an opening workload through the
/// scheduler. Every subsystem records spans through `xcbc-sim`, so the
/// merged log reads as one coherent timeline — and, for a fixed plan
/// seed, replays byte-identically (`--jsonl` emits the raw log).
fn trace(scenario: &str, faults: Option<&str>, jsonl: bool) -> ExitCode {
    if scenario != "littlefe" {
        eprintln!("xcbc trace: unknown scenario {scenario:?} (try `littlefe`)");
        return ExitCode::FAILURE;
    }
    let plan = match faults
        .map(FaultPlan::parse)
        .unwrap_or_else(|| Ok(FaultPlan::new(42)))
    {
        Ok(p) => p,
        Err(e) => {
            eprintln!("xcbc trace: bad fault plan: {e}");
            return ExitCode::FAILURE;
        }
    };
    let elapsed = |events: &[TraceEvent]| {
        events
            .iter()
            .map(TraceEvent::end)
            .max()
            .unwrap_or(SimTime::ZERO)
            .since(SimTime::ZERO)
    };
    let mut events: Vec<TraceEvent> = Vec::new();

    // 1. pull the XSEDE roll ISO from the mirror network (yum.mirror)
    let mirrors = MirrorList::new(vec![
        Mirror::new("http://mirror.xsede.org/rocks/6.1.1", 80.0, 40.0),
        Mirror::new("http://mirror.campus.edu/rocks/6.1.1", 200.0, 15.0),
    ]);
    let mut injector = plan.injector();
    let fetched = mirrors.fetch_with(
        FetchOptions::new(650 << 20)
            .retry(RetryPolicy::default())
            .inject(&mut injector)
            .starting_at(SimTime::ZERO),
    );
    events.extend(fetched.events);

    // 2. from-scratch resilient install (rocks.install), resuming
    //    across any power losses the plan injects
    let cluster = littlefe_modified();
    let mut checkpoint = InstallCheckpoint::new();
    let mut report = None;
    for _ in 0..=cluster.nodes.len() {
        match deploy_from_scratch_resilient(
            &cluster,
            &plan,
            &ResilienceConfig::default(),
            checkpoint.clone(),
        ) {
            Ok(r) => {
                report = Some(r);
                break;
            }
            Err(e) if matches!(e.kind, InstallErrorKind::PowerLoss) => {
                checkpoint = e.progress.checkpoint.clone();
            }
            Err(e) => {
                eprintln!("xcbc trace: littlefe deploy failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(report) = report else {
        eprintln!("xcbc trace: gave up after repeated power losses");
        return ExitCode::FAILURE;
    };
    let t_install = elapsed(&events);
    events.extend(report.trace.iter().map(|e| e.shifted(t_install)));

    // 3. the first compute node's production PXE boot (cluster.boot)
    let payload = report
        .node_dbs
        .get("compute-0-0")
        .map(|db| db.installed_size_bytes())
        .unwrap_or(500 << 20);
    let t_boot = elapsed(&events);
    events.extend(
        boot_node("compute-0-0", payload, None)
            .timeline
            .to_spans("cluster.boot")
            .iter()
            .map(|e| e.shifted(t_boot)),
    );

    // 4. the opening workload through the scheduler (sched)
    let mut sim = ClusterSim::new(5, 2, SchedPolicy::maui_default());
    sim.add_reservation("maintenance window", vec![4], 3600.0, 7200.0);
    sim.submit_at(0.0, JobRequest::new("hello-mpi", 2, 2, 600.0, 300.0));
    sim.submit_at(
        120.0,
        JobRequest::new("gromacs-bench", 4, 2, 1800.0, 1500.0),
    );
    sim.submit_at(300.0, JobRequest::new("hpl-smoke", 5, 2, 900.0, 700.0));
    sim.run_to_completion();
    let t_sched = elapsed(&events);
    events.extend(sim.take_trace().iter().map(|e| e.shifted(t_sched)));

    // one shared timebase: merge-sort by timestamp (stable, so events
    // emitted together stay together)
    events.sort_by_key(|e| e.t);

    if jsonl {
        print!("{}", events_to_jsonl(&events));
        return ExitCode::SUCCESS;
    }
    let mut metrics = MetricsSink::new();
    for e in &events {
        metrics.record(e);
    }
    println!(
        "== xcbc trace: {scenario} (fault plan seed {}) ==",
        plan.seed
    );
    for e in &events {
        let detail = match &e.kind {
            TraceKind::Span { dur } => format!("  [ran {dur}]"),
            TraceKind::Mark => String::new(),
            TraceKind::Counter { value } => format!("  = {value}"),
        };
        println!(
            "[{:>10}] {:<13} {}{}",
            e.t.to_string(),
            e.source,
            e.label,
            detail
        );
    }
    println!();
    println!("{:<14} {:>7} {:>14}", "source", "events", "span time");
    for (src, n, dur) in metrics.rows() {
        println!("{src:<14} {n:>7} {:>14}", dur.to_string());
    }
    println!(
        "{:<14} {:>7} {:>14}",
        "total",
        events.len(),
        elapsed(&events).to_string()
    );
    ExitCode::SUCCESS
}

fn compat() -> ExitCode {
    use xcbc::core::compat::check_compatibility;
    let bare = xcbc::rpm::RpmDb::new();
    let report = check_compatibility(&bare);
    println!(
        "A bare cluster matches {}/{} reference packages; XNIT would install:",
        report.matching, report.checked
    );
    for name in report.missing().iter().take(10) {
        println!("  {name}");
    }
    println!(
        "  ... and {} more",
        report.missing().len().saturating_sub(10)
    );
    ExitCode::SUCCESS
}
