//! `xcbc` — the toolkit's command-line entry point.
//!
//! ```text
//! xcbc tables              regenerate every paper table + figures
//! xcbc deploy <target>     simulate a deployment (littlefe | limulus | both)
//!       [--faults "<plan>"]  inject faults, e.g. "seed=42; node.boot key=compute-0-2"
//! xcbc lab <student>       run the training curriculum and print the grade sheet
//! xcbc linpack [n]         run a real HPL point on this machine
//! xcbc fleet               deploy the Table 3 fleet concurrently
//!       [--threads N]        worker threads (default 4)
//!       [--jsonl]            emit the merged fleet trace as JSONL
//!       [--table]            just print the static Table 3 registry
//! xcbc compat              demo the compatibility checker on a bare cluster
//! xcbc trace <scenario>    merged event trace of a whole deployment day
//!       [--faults "<plan>"]  on one simulated timebase (scenario: littlefe)
//!       [--jsonl]            emit the raw deterministic JSONL log instead
//! xcbc trace analyze <scenario>  causal analysis of the same trace: the
//!       [--faults "<plan>"]  critical path bounding the simulated makespan
//!       [--folded|--top N]   plus ASCII flame lanes — or folded stacks /
//!                            the top-N self-time frames
//! xcbc mon <scenario>      gmond/gmetad telemetry dashboard over the same
//!       [--faults "<plan>"]  deployment day: sparkline rings, alerts,
//!       [--prom|--xml|--jsonl]  span-latency table — or machine exposition
//!       [--self]             (scenario: littlefe | elastic); --self prints
//!                            the engine's own wall-clock hot-path profile
//! xcbc soak --seeds N      chaos-soak: run N seeded random scenarios through
//!       [--seed S]           the whole stack and check every cross-crate
//!       [--faults]           invariant; violations shrink to a minimal seed
//!       [--no-shrink]        with an exact repro command. --sites/--fault-specs/
//!       [--mutate]           --jobs/--updates bound (and replay) scenario size;
//!                            --mutate breaks an invariant on purpose (self-test)
//! xcbc elastic             elastic fleet demo: the power-aware autoscaler
//!       [--min N] [--max N]  grows a bursty fleet from its floor to its
//!       [--ticks N]          ceiling and back, burst sites join mid-run
//!       [--faults "<plan>"]  through the shared solve cache; scale-up
//!       [--resume] [--jsonl] aborts resume from a printed checkpoint
//! xcbc svc                 serve a seeded multi-tenant request stream
//!       [--tenants N]        through xcbcd: admission-controlled solves,
//!       [--workers N]        deploys and monitoring reads over sharded
//!       [--requests N]       tenant-salted caches; prints the run summary,
//!       [--seed S]           verifies the journal by single-threaded
//!       [--journal FILE]     replay, and (with --journal) writes the
//!       [--prom]             journal for `xcbcd --replay`
//! xcbc exp                 sweep the open-loop workload engine over a
//!       [--spec S]           frontend x policy x load x seed grid on a
//!       [--policies a,b]     worker pool; per-variant JSONL, aggregated
//!       [--rms a,b]          CSV and utilization/wait curves land under
//!       [--loads 1.0,2.0]    results/exp-NNN/ (spec: teaching-lab |
//!       [--seeds N]          campus-research | heavy-tail). Byte-identical
//!       [--jobs N]           re-runs at any --workers count.
//!       [--nodes N] [--cores N] [--workers N] [--out DIR] [--name NAME]
//! ```

use std::collections::BTreeMap;
use std::env;
use std::process::ExitCode;

use xcbc::cluster::default_alert_rules;
use xcbc::cluster::specs::{limulus_hpc200, littlefe_modified};
use xcbc::core::deploy::{
    deploy_from_scratch, deploy_from_scratch_resilient, deploy_xnit_overlay, limulus_factory_image,
};
use xcbc::core::fleet::{Fleet, FleetSite};
use xcbc::core::mon::monitor_run;
use xcbc::core::report;
use xcbc::core::scenario::littlefe_day_one;
use xcbc::core::sites::{deployed_sites, AdoptionPath};
use xcbc::core::training::{littlefe_curriculum, LabSession};
use xcbc::core::XnitSetupMethod;
use xcbc::fault::{FaultPlan, InstallCheckpoint};
use xcbc::rocks::{InstallErrorKind, ResilienceConfig};
use xcbc::sim::{events_to_jsonl, MetricsSink, SimTime, TraceKind, TraceSink};

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    match cmd {
        "tables" => tables(),
        "deploy" => {
            let target = match args.get(1).map(String::as_str) {
                None | Some("--faults") => "both",
                Some(t) => t,
            };
            let faults = args
                .iter()
                .position(|a| a == "--faults")
                .and_then(|i| args.get(i + 1))
                .map(String::as_str);
            deploy(target, faults)
        }
        "lab" => lab(args.get(1).map(String::as_str).unwrap_or("student")),
        "linpack" => linpack(args.get(1).and_then(|s| s.parse().ok()).unwrap_or(512)),
        "fleet" => {
            if args.iter().any(|a| a == "--table") {
                print!("{}", report::render_table3());
                return ExitCode::SUCCESS;
            }
            let threads = args
                .iter()
                .position(|a| a == "--threads")
                .and_then(|i| args.get(i + 1))
                .and_then(|s| s.parse().ok())
                .unwrap_or(4);
            let jsonl = args.iter().any(|a| a == "--jsonl");
            fleet_deploy(threads, jsonl)
        }
        "compat" => compat(),
        "trace" => {
            if args.get(1).map(String::as_str) == Some("analyze") {
                let scenario = match args.get(2).map(String::as_str) {
                    Some(s) if !s.starts_with("--") => s,
                    _ => "littlefe",
                };
                let faults = args
                    .iter()
                    .position(|a| a == "--faults")
                    .and_then(|i| args.get(i + 1))
                    .map(String::as_str)
                    .filter(|s| !s.starts_with("--"));
                let folded = args.iter().any(|a| a == "--folded");
                let top = args
                    .iter()
                    .position(|a| a == "--top")
                    .and_then(|i| args.get(i + 1))
                    .and_then(|s| s.parse().ok());
                return trace_analyze(scenario, faults, folded, top);
            }
            let scenario = match args.get(1).map(String::as_str) {
                None | Some("--faults") | Some("--jsonl") => "littlefe",
                Some(s) => s,
            };
            let faults = args
                .iter()
                .position(|a| a == "--faults")
                .and_then(|i| args.get(i + 1))
                .map(String::as_str);
            let jsonl = args.iter().any(|a| a == "--jsonl");
            trace(scenario, faults, jsonl)
        }
        "mon" => {
            let scenario = match args.get(1).map(String::as_str) {
                Some(s) if !s.starts_with("--") => s,
                _ => "littlefe",
            };
            let faults = args
                .iter()
                .position(|a| a == "--faults")
                .and_then(|i| args.get(i + 1))
                .map(String::as_str);
            let format = if args.iter().any(|a| a == "--prom") {
                MonFormat::Prometheus
            } else if args.iter().any(|a| a == "--xml") {
                MonFormat::GangliaXml
            } else if args.iter().any(|a| a == "--jsonl") {
                MonFormat::Jsonl
            } else if args.iter().any(|a| a == "--self") {
                MonFormat::SelfProfile
            } else {
                MonFormat::Dashboard
            };
            mon(scenario, faults, format)
        }
        "soak" => soak_cmd(&args),
        "campaign" => campaign_cmd(&args),
        "elastic" => elastic_cmd(&args),
        "exp" => exp_cmd(&args),
        "svc" => svc_cmd(&args),
        "help" | "--help" | "-h" => {
            eprintln!(
                "usage: xcbc <tables|deploy [littlefe|limulus|both] [--faults \"<plan>\"]|lab [name]|linpack [n]|fleet [--threads N] [--jsonl] [--table]|compat|trace [littlefe] [--faults \"<plan>\"] [--jsonl]|trace analyze [littlefe] [--faults \"<plan>\"] [--folded|--top N]|mon [littlefe|elastic] [--faults \"<plan>\"] [--prom|--xml|--jsonl|--self]|soak [--seeds N] [--seed S] [--faults] [--no-shrink] [--mutate] [--sites N] [--fault-specs N] [--jobs N] [--updates N] [--campaign-mutation drop-job|skip-skew] [--elastic-mutation drop-job|skip-scale-up] [--svc-mutation drop-journal-entry|leak-quota]|campaign [--nodes N] [--canary N] [--waves N] [--threads N] [--rollback] [--resume] [--faults \"<plan>\"] [--jsonl]|elastic [--min N] [--max N] [--ticks N] [--faults \"<plan>\"] [--resume] [--jsonl]|exp [--spec teaching-lab|campus-research|heavy-tail] [--policies fifo,easy,maui] [--rms torque,slurm,sge] [--loads 1.0,2.0] [--seeds N] [--jobs N] [--nodes N] [--cores N] [--workers N] [--out DIR] [--name NAME]|svc [--tenants N] [--workers N] [--requests N] [--seed S] [--shards N] [--journal FILE] [--prom]>"
            );
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("xcbc: unknown command {other:?} (try `xcbc help`)");
            ExitCode::FAILURE
        }
    }
}

/// Deploy a fleet modeled on Table 3's adoption paths: every
/// `XcbcFromScratch` row becomes a from-scratch Rocks install (on the
/// LittleFe spec, seeded per site) and every `XnitRepository` row an
/// XNIT overlay on a Limulus factory image — all sharing one solve
/// cache across `threads` workers.
fn fleet_deploy(threads: usize, jsonl: bool) -> ExitCode {
    let limulus_dbs = || -> BTreeMap<_, _> {
        limulus_hpc200()
            .nodes
            .iter()
            .map(|n| (n.hostname.clone(), limulus_factory_image()))
            .collect()
    };
    let mut fleet = Fleet::new().with_threads(threads);
    for (i, site) in deployed_sites().into_iter().enumerate() {
        fleet = fleet.add_site(match site.path {
            AdoptionPath::XcbcFromScratch => {
                FleetSite::from_scratch(site.name, littlefe_modified(), i as u64)
            }
            AdoptionPath::XnitRepository => {
                FleetSite::overlay(site.name, limulus_dbs(), XnitSetupMethod::RepoRpm)
            }
        });
    }
    let report = fleet.deploy();
    if jsonl {
        print!("{}", report.merged_jsonl());
    } else {
        print!("{}", report.render());
    }
    if report.all_succeeded() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn tables() -> ExitCode {
    print!("{}", report::render_table1());
    println!();
    print!("{}", report::render_table2());
    print!("{}", report::render_table3());
    println!();
    print!("{}", report::render_table4());
    println!();
    print!("{}", report::render_table5());
    println!();
    print!("{}", report::render_figures());
    ExitCode::SUCCESS
}

fn deploy(target: &str, faults: Option<&str>) -> ExitCode {
    if target == "littlefe" || target == "both" {
        match faults {
            Some(dsl) => {
                if deploy_littlefe_with_faults(dsl) == ExitCode::FAILURE {
                    return ExitCode::FAILURE;
                }
            }
            None => match deploy_from_scratch(&littlefe_modified()) {
                Ok(r) => println!("{}", r.render_row()),
                Err(e) => {
                    eprintln!("littlefe deploy failed: {e}");
                    return ExitCode::FAILURE;
                }
            },
        }
    }
    if target == "limulus" || target == "both" {
        let existing: BTreeMap<_, _> = limulus_hpc200()
            .nodes
            .iter()
            .map(|n| (n.hostname.clone(), limulus_factory_image()))
            .collect();
        match deploy_xnit_overlay(&existing, XnitSetupMethod::RepoRpm) {
            Ok(r) => println!("{}", r.render_row()),
            Err(e) => {
                eprintln!("limulus overlay failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if !["littlefe", "limulus", "both"].contains(&target) {
        eprintln!("xcbc deploy: unknown target {target:?}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// From-scratch LittleFe build under an injected fault plan. A power
/// loss aborts with a checkpoint; we resume from it the way an
/// administrator re-running the installer would, until the deployment
/// lands (possibly degraded, with a post-mortem).
fn deploy_littlefe_with_faults(dsl: &str) -> ExitCode {
    let plan = match FaultPlan::parse(dsl) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("xcbc deploy: bad fault plan: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cluster = littlefe_modified();
    let mut checkpoint = InstallCheckpoint::new();
    // each power loss strictly grows the committed set, so this
    // terminates; the cap only guards against future plan mistakes
    for _ in 0..=cluster.nodes.len() {
        match deploy_from_scratch_resilient(
            &cluster,
            &plan,
            &ResilienceConfig::default(),
            checkpoint,
        ) {
            Ok(r) => {
                print!("{}", r.render());
                return ExitCode::SUCCESS;
            }
            Err(e) if matches!(e.kind, InstallErrorKind::PowerLoss) => {
                eprintln!(
                    "power lost mid-install [{} node(s) committed]; resuming from checkpoint",
                    e.progress.completed.len()
                );
                checkpoint = e.progress.checkpoint.clone();
            }
            Err(e) => {
                eprintln!("littlefe deploy failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    eprintln!("littlefe deploy: gave up after repeated power losses");
    ExitCode::FAILURE
}

fn lab(student: &str) -> ExitCode {
    let mut session = LabSession::new(student, littlefe_modified());
    session.run(&littlefe_curriculum());
    print!("{}", session.render());
    if session.grade() == 1.0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn linpack(n: usize) -> ExitCode {
    let threads = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(4)
        .min(8);
    let r = xcbc::hpl::run_hpl(&xcbc::hpl::HplConfig {
        n,
        nb: 64,
        threads,
        seed: 42,
    });
    println!("{}", r.render());
    if r.passed {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Parse a `--faults` plan (default seed 42) or report why it's bad.
fn parse_plan(command: &str, faults: Option<&str>) -> Result<FaultPlan, ExitCode> {
    faults
        .map(FaultPlan::parse)
        .unwrap_or_else(|| Ok(FaultPlan::new(42)))
        .map_err(|e| {
            eprintln!("xcbc {command}: bad fault plan: {e}");
            ExitCode::FAILURE
        })
}

/// One virtual day-one on a LittleFe, end to end, on a single timebase
/// (see `xcbc_core::scenario`): mirror fetch, from-scratch install under
/// the fault plan, production PXE boot, shared-cache depsolves, opening
/// workload. For a fixed plan seed the log replays byte-identically
/// (`--jsonl` emits the raw log).
fn trace(scenario: &str, faults: Option<&str>, jsonl: bool) -> ExitCode {
    if scenario != "littlefe" {
        eprintln!("xcbc trace: unknown scenario {scenario:?} (try `littlefe`)");
        return ExitCode::FAILURE;
    }
    let plan = match parse_plan("trace", faults) {
        Ok(p) => p,
        Err(code) => return code,
    };
    let run = match littlefe_day_one(&plan) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xcbc trace: {e}");
            return ExitCode::FAILURE;
        }
    };

    if jsonl {
        print!("{}", events_to_jsonl(&run.events));
        return ExitCode::SUCCESS;
    }
    let mut metrics = MetricsSink::new();
    for e in &run.events {
        metrics.record(e);
    }
    println!(
        "== xcbc trace: {scenario} (fault plan seed {}) ==",
        run.seed
    );
    for e in &run.events {
        let detail = match &e.kind {
            TraceKind::Span { dur } => format!("  [ran {dur}]"),
            TraceKind::Mark => String::new(),
            TraceKind::Counter { value } => format!("  = {value}"),
        };
        println!(
            "[{:>10}] {:<14} {}{}",
            e.t.to_string(),
            e.source,
            e.label,
            detail
        );
    }
    println!();
    println!("{:<14} {:>7} {:>14}", "source", "events", "span time");
    for (src, n, dur) in metrics.rows() {
        println!("{src:<14} {n:>7} {:>14}", dur.to_string());
    }
    println!(
        "{:<14} {:>7} {:>14}",
        "total",
        run.events.len(),
        run.end().since(SimTime::ZERO).to_string()
    );
    ExitCode::SUCCESS
}

/// Causal analysis of the same deterministic day-one trace `xcbc trace`
/// prints: the critical path that bounds the simulated makespan (with
/// blocked-time attribution), per-(source, node) flame lanes, and —
/// via `--folded` — folded stacks consumable by standard flamegraph
/// tooling. `--top N` lists the N frames with the largest self time.
fn trace_analyze(
    scenario: &str,
    faults: Option<&str>,
    folded: bool,
    top: Option<usize>,
) -> ExitCode {
    if scenario != "littlefe" {
        eprintln!("xcbc trace analyze: unknown scenario {scenario:?} (try `littlefe`)");
        return ExitCode::FAILURE;
    }
    let plan = match parse_plan("trace analyze", faults) {
        Ok(p) => p,
        Err(code) => return code,
    };
    let run = match littlefe_day_one(&plan) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xcbc trace analyze: {e}");
            return ExitCode::FAILURE;
        }
    };
    let analysis = xcbc::sim::analyze(&run.events);
    if folded {
        print!("{}", analysis.folded());
        return ExitCode::SUCCESS;
    }
    if let Some(n) = top {
        print!("{}", analysis.top(n));
        return ExitCode::SUCCESS;
    }
    println!(
        "== xcbc trace analyze: {scenario} (fault plan seed {}) ==",
        run.seed
    );
    print!("{}", analysis.render());
    println!();
    print!("{}", analysis.flame());
    ExitCode::SUCCESS
}

/// Output formats for `xcbc mon`.
enum MonFormat {
    Dashboard,
    Prometheus,
    GangliaXml,
    Jsonl,
    /// The engine's own wall-clock hot-path profile (`--self`).
    SelfProfile,
}

/// Render the process-global engine self-profile: the wall-clock timer
/// table plus its Prometheus exposition. Called after the scenario ran,
/// so the depsolve/scheduler/render/analysis sections have observations.
fn render_self_profile() -> String {
    use xcbc::sim::MetricRegistry;
    let profiler = xcbc::sim::self_profiler();
    let mut registry = MetricRegistry::new();
    profiler.register_into(&mut registry);
    format!(
        "{}\n{}",
        profiler.render_table(),
        registry.render_prometheus()
    )
}

/// Replay the deployment day through the telemetry pipeline — gmond
/// samples derived from the trace, gmetad aggregation, RRD rings,
/// threshold/heartbeat alerts — and render the result.
fn mon(scenario: &str, faults: Option<&str>, format: MonFormat) -> ExitCode {
    if scenario == "elastic" {
        return mon_elastic(faults, format);
    }
    if scenario != "littlefe" {
        eprintln!("xcbc mon: unknown scenario {scenario:?} (try `littlefe` or `elastic`)");
        return ExitCode::FAILURE;
    }
    let plan = match parse_plan("mon", faults) {
        Ok(p) => p,
        Err(code) => return code,
    };
    let run = match littlefe_day_one(&plan) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xcbc mon: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = monitor_run(&run, default_alert_rules());
    match format {
        MonFormat::Dashboard => print!("{}", report.dashboard()),
        MonFormat::Prometheus => print!("{}", report.prometheus()),
        MonFormat::GangliaXml => print!("{}", report.ganglia_xml()),
        MonFormat::Jsonl => print!("{}", report.jsonl()),
        MonFormat::SelfProfile => print!("{}", render_self_profile()),
    }
    ExitCode::SUCCESS
}

/// `xcbc soak`: run seeded random scenarios through the whole stack and
/// check every cross-crate invariant. Exit code is the CI gate; on
/// violation the report ends with the exact command that replays the
/// (shrunk) failure deterministically.
fn soak_cmd(args: &[String]) -> ExitCode {
    use xcbc::check::{default_invariants, mutation_invariant, soak, ScenarioLimits, SoakConfig};
    use xcbc::core::campaign::CampaignMutation;
    use xcbc::core::elastic::ElasticMutation;
    use xcbc::svc::SvcMutation;

    fn flag_value<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse().ok())
    }

    let defaults = ScenarioLimits::default();
    let mut config = SoakConfig {
        seeds: flag_value(args, "--seeds").unwrap_or(100),
        start_seed: 0,
        faults: args.iter().any(|a| a == "--faults"),
        shrink: !args.iter().any(|a| a == "--no-shrink"),
        limits: ScenarioLimits {
            sites: flag_value(args, "--sites").unwrap_or(defaults.sites),
            fault_specs: flag_value(args, "--fault-specs").unwrap_or(defaults.fault_specs),
            jobs: flag_value(args, "--jobs").unwrap_or(defaults.jobs),
            updates: flag_value(args, "--updates").unwrap_or(defaults.updates),
            campaign_mutation: match flag_value::<String>(args, "--campaign-mutation").as_deref() {
                Some("drop-job") => Some(CampaignMutation::DropJobOnDrain),
                Some("skip-skew") => Some(CampaignMutation::SkipSkewSolve),
                Some(other) => {
                    eprintln!(
                        "xcbc soak: unknown --campaign-mutation {other} \
                         (expected drop-job or skip-skew)"
                    );
                    return ExitCode::FAILURE;
                }
                None => None,
            },
            elastic_mutation: match flag_value::<String>(args, "--elastic-mutation").as_deref() {
                Some("drop-job") => Some(ElasticMutation::DropJobOnScaleDown),
                Some("skip-scale-up") => Some(ElasticMutation::SkipScaleUp),
                Some(other) => {
                    eprintln!(
                        "xcbc soak: unknown --elastic-mutation {other} \
                         (expected drop-job or skip-scale-up)"
                    );
                    return ExitCode::FAILURE;
                }
                None => None,
            },
            svc_mutation: match flag_value::<String>(args, "--svc-mutation").as_deref() {
                Some(text) => match SvcMutation::parse(text) {
                    Ok(m) => Some(m),
                    Err(e) => {
                        eprintln!("xcbc soak: {e}");
                        return ExitCode::FAILURE;
                    }
                },
                None => None,
            },
        },
        mutate: args.iter().any(|a| a == "--mutate"),
    };
    if let Some(seed) = flag_value::<u64>(args, "--seed") {
        config.start_seed = seed;
        config.seeds = 1;
    }

    let mut suite = default_invariants();
    if config.mutate {
        suite.push(mutation_invariant());
    }
    let report = soak(&config, &suite);
    print!("{}", report.render());
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `xcbc svc`: serve a seeded synthetic multi-tenant stream through the
/// xcbcd engine and verify its own journal by single-threaded replay —
/// the one-command demonstration of the service's determinism contract.
fn svc_cmd(args: &[String]) -> ExitCode {
    use xcbc::sim::MetricRegistry;
    use xcbc::svc::{replay, serve, Disposition, SvcWorkload};

    fn flag_value<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse().ok())
    }

    let workload = SvcWorkload {
        tenants: flag_value(args, "--tenants").unwrap_or(3),
        requests: flag_value(args, "--requests").unwrap_or(32),
        seed: flag_value(args, "--seed").unwrap_or(0),
        ..SvcWorkload::default()
    };
    let mut config = workload.config(flag_value(args, "--workers").unwrap_or(4));
    if let Some(shards) = flag_value(args, "--shards") {
        config.shards = shards;
    }

    let requests = workload.generate();
    let report = serve(&requests, &config);

    println!(
        "xcbcd: serving seed {} ({} tenants, {} requests, {} workers, {} shards)",
        workload.seed,
        workload.tenants,
        requests.len(),
        config.workers,
        config.shards
    );
    for (i, (req, resp)) in requests.iter().zip(&report.responses).enumerate() {
        let disposition = match resp.disposition {
            Disposition::Accepted { seq } => format!("seq {seq}"),
            Disposition::Rejected(reason) => format!("REJECTED {}", reason.as_str()),
        };
        println!(
            "  [{i:3}] t{:<3} {:<9} {:<24} {}",
            req.tick,
            req.tenant,
            req.op.render(),
            disposition
        );
    }
    println!();
    print!("{}", report.summary());

    if args.iter().any(|a| a == "--prom") {
        let mut registry = MetricRegistry::new();
        report.register_metrics(&mut registry);
        println!();
        print!("{}", registry.render_prometheus());
    }

    if let Some(path) = flag_value::<String>(args, "--journal") {
        if let Err(e) = std::fs::write(&path, &report.journal_text) {
            eprintln!("xcbc svc: cannot write journal {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("journal: {} entries written to {path}", report.accepted);
    }

    match replay(&report.journal_text) {
        Ok(verdict) => {
            print!("{}", verdict.render());
            if verdict.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("xcbc svc: journal does not parse: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `xcbc campaign`: roll a package update across a live fleet in
/// drained, canaried waves. Without `--resume`, a `campaign.drain`
/// (power/drain) fault aborts with the checkpoint printed; with it, the
/// campaign resumes from the last completed wave — exactly the way an
/// administrator re-running the tool after a machine-room power blip
/// would — and the stitched trace matches an uninterrupted run.
fn campaign_cmd(args: &[String]) -> ExitCode {
    use xcbc::core::campaign::{
        run_campaign, CampaignConfig, CampaignError, CampaignTarget, CanaryAction,
    };
    use xcbc::core::xnit_repository;
    use xcbc::fault::CampaignCheckpoint;
    use xcbc::sched::{JobRequest, ResourceManager, Slurm};
    use xcbc::yum::{SolveCache, SolveRequest, YumConfig};

    fn flag_value<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse().ok())
    }

    let faults = args
        .iter()
        .position(|a| a == "--faults")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str);
    let plan = match parse_plan("campaign", faults) {
        Ok(p) => p,
        Err(code) => return code,
    };
    let nodes: usize = flag_value(args, "--nodes").unwrap_or(8);
    let config = CampaignConfig {
        canary: flag_value(args, "--canary").unwrap_or(1),
        waves: flag_value(args, "--waves").unwrap_or(3),
        threads: flag_value(args, "--threads").unwrap_or(1),
        on_canary_failure: if args.iter().any(|a| a == "--rollback") {
            CanaryAction::Rollback
        } else {
            CanaryAction::Halt
        },
        ..CampaignConfig::default()
    };
    let auto_resume = args.iter().any(|a| a == "--resume");
    let jsonl = args.iter().any(|a| a == "--jsonl");

    // A Limulus-style fleet: factory images under SLURM, with a small
    // opening workload so the drains have something to wait on.
    let target = CampaignTarget {
        repos: vec![xnit_repository()],
        config: YumConfig::default(),
        request: SolveRequest::install(["gromacs"]),
    };
    let mut dbs: BTreeMap<String, _> = (0..nodes)
        .map(|i| (format!("node-{i:02}"), limulus_factory_image()))
        .collect();
    let mut rm = Slurm::new("batch", nodes, 4);
    for i in 0..nodes.min(4) {
        rm.sim_mut().submit(JobRequest::new(
            &format!("wrf-{i}"),
            1,
            4,
            4000.0,
            200.0 + 90.0 * i as f64,
        ));
    }
    rm.advance_to(10.0);

    let cache = std::sync::Arc::new(SolveCache::new());
    let mut checkpoint_text: Option<String> = None;
    let mut stitched = String::new();
    // each resume completes at least one wave, so `waves` bounds the loop
    for _ in 0..=config.waves {
        let resume_cp = match &checkpoint_text {
            Some(text) => match CampaignCheckpoint::parse(text) {
                Ok(cp) => Some(cp),
                Err(e) => {
                    eprintln!("xcbc campaign: bad checkpoint: {e}");
                    return ExitCode::FAILURE;
                }
            },
            None => None,
        };
        match run_campaign(
            &target,
            &mut dbs,
            &mut rm,
            &plan,
            &cache,
            &config,
            resume_cp.as_ref(),
        ) {
            Ok(report) => {
                stitched.push_str(&report.trace_jsonl());
                if jsonl {
                    print!("{stitched}");
                } else {
                    if report.resumed_from_wave > 0 {
                        println!("resumed from wave {}", report.resumed_from_wave);
                    }
                    print!("{}", report.render());
                }
                return ExitCode::SUCCESS;
            }
            Err(CampaignError::Aborted {
                wave,
                checkpoint,
                trace,
            }) => {
                for ev in &trace {
                    stitched.push_str(&ev.to_jsonl());
                    stitched.push('\n');
                }
                if !auto_resume {
                    eprintln!("campaign aborted before wave {wave}; checkpoint:");
                    eprint!("{}", checkpoint.to_text());
                    let flight = xcbc::sim::FlightRecorder::from_events(
                        xcbc::sim::FLIGHT_RECORDER_CAPACITY,
                        &trace,
                    );
                    if !flight.is_empty() {
                        eprint!("{}", flight.render_tail());
                    }
                    eprintln!("(re-run with --resume to continue from it)");
                    return ExitCode::FAILURE;
                }
                if !jsonl {
                    println!(
                        "power lost before wave {wave} [{} wave(s) committed]; resuming from checkpoint",
                        checkpoint.waves_completed()
                    );
                }
                checkpoint_text = Some(checkpoint.to_text());
            }
            Err(e) => {
                eprintln!("xcbc campaign: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    eprintln!("xcbc campaign: gave up after repeated aborts");
    ExitCode::FAILURE
}

/// The demo fleet `xcbc elastic` (and `xcbc mon elastic`) runs: an
/// opening burst of single-node jobs drives the autoscaler from the
/// floor to the ceiling, a mid-run surge keeps the fleet busy while two
/// cloud sites join through the shared solve cache (one leaves again),
/// and the lull afterwards lets the fleet shrink back to the floor.
fn elastic_demo_world(
    config: &xcbc::core::elastic::ElasticConfig,
) -> xcbc::core::elastic::ElasticWorld {
    use xcbc::core::elastic::{BurstSite, ElasticWorld};
    use xcbc::sched::JobRequest;

    let mut world = ElasticWorld::default();
    for i in 0..12 {
        world.workload.push((
            0,
            JobRequest::new(&format!("burst-a-{i}"), 1, 2, 40_000.0, 2600.0),
        ));
    }
    let surge = config.ticks / 2;
    for i in 0..5 {
        world.workload.push((
            surge,
            JobRequest::new(&format!("burst-b-{i}"), 1, 2, 40_000.0, 1400.0),
        ));
    }
    for (name, join, leave) in [("cloud-a", 2usize, Some(surge + 4)), ("cloud-b", 4, None)] {
        let existing: BTreeMap<_, _> = (0..2)
            .map(|n| (format!("{name}-n{n}"), limulus_factory_image()))
            .collect();
        let mut site = BurstSite::new(name, join, existing, XnitSetupMethod::RepoRpm);
        if let Some(leave) = leave {
            site = site.leaving_at(leave);
        }
        world.burst_sites.push(site);
    }
    world
}

/// Drive the shared elastic demo fleet to completion, resuming from the
/// checkpoint after each fault-injected abort when `auto_resume` is
/// set. Returns the final report, the stitched cross-segment trace, the
/// drained scheduler frontend, and the shared solve cache (the latter
/// two feed `xcbc mon elastic`).
#[allow(clippy::type_complexity)]
fn run_elastic_demo(
    config: &xcbc::core::elastic::ElasticConfig,
    plan: &FaultPlan,
    auto_resume: bool,
    announce: bool,
) -> Result<
    (
        xcbc::core::elastic::ElasticReport,
        Vec<xcbc::sim::TraceEvent>,
        xcbc::sched::TorqueServer,
        std::sync::Arc<xcbc::yum::SolveCache>,
    ),
    ExitCode,
> {
    use xcbc::core::elastic::{run_elastic, ElasticError, ElasticState};
    use xcbc::fault::ElasticCheckpoint;
    use xcbc::sched::TorqueServer;
    use xcbc::yum::SolveCache;

    let world = elastic_demo_world(config);
    let mut state = ElasticState::new(config);
    let mut rm = TorqueServer::with_maui("elastic-head", config.min_nodes, 2);
    let cache = std::sync::Arc::new(SolveCache::new());
    let mut checkpoint_text: Option<String> = None;
    let mut stitched: Vec<xcbc::sim::TraceEvent> = Vec::new();
    // each resume completes at least one tick, so `ticks` bounds the loop
    for _ in 0..=config.ticks {
        let resume_cp = match &checkpoint_text {
            Some(text) => match ElasticCheckpoint::parse(text) {
                Ok(cp) => Some(cp),
                Err(e) => {
                    eprintln!("xcbc elastic: bad checkpoint: {e}");
                    return Err(ExitCode::FAILURE);
                }
            },
            None => None,
        };
        match run_elastic(
            &world,
            &mut state,
            &mut rm,
            plan,
            &cache,
            config,
            resume_cp.as_ref(),
        ) {
            Ok(report) => {
                stitched.extend(report.trace.iter().cloned());
                return Ok((report, stitched, rm, cache));
            }
            Err(ElasticError::Aborted {
                tick,
                checkpoint,
                trace,
                ..
            }) => {
                stitched.extend(trace);
                if !auto_resume {
                    eprintln!("elastic run aborted before tick {tick}; checkpoint:");
                    eprint!("{}", checkpoint.to_text());
                    let flight = xcbc::sim::FlightRecorder::from_events(
                        xcbc::sim::FLIGHT_RECORDER_CAPACITY,
                        &stitched,
                    );
                    if !flight.is_empty() {
                        eprint!("{}", flight.render_tail());
                    }
                    eprintln!("(re-run with --resume to continue from it)");
                    return Err(ExitCode::FAILURE);
                }
                if announce {
                    println!(
                        "power lost before tick {tick} [{} tick(s) completed]; resuming from checkpoint",
                        checkpoint.ticks_completed()
                    );
                }
                checkpoint_text = Some(checkpoint.to_text());
            }
            Err(e) => {
                eprintln!("xcbc elastic: {e}");
                return Err(ExitCode::FAILURE);
            }
        }
    }
    eprintln!("xcbc elastic: gave up after repeated aborts");
    Err(ExitCode::FAILURE)
}

/// `xcbc elastic`: the dynamic-membership demo — a power-aware
/// autoscaler grows a bursty fleet from its floor to its ceiling and
/// back, with cloud-burst sites joining mid-run through the shared
/// solve cache. A scheduled `elastic.scale-up` fault aborts with the
/// checkpoint printed; with `--resume` the run continues from it and
/// the stitched trace matches an uninterrupted run byte for byte.
fn elastic_cmd(args: &[String]) -> ExitCode {
    use xcbc::core::elastic::ElasticConfig;

    fn flag_value<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse().ok())
    }

    let faults = args
        .iter()
        .position(|a| a == "--faults")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str);
    let plan = match parse_plan("elastic", faults) {
        Ok(p) => p,
        Err(code) => return code,
    };
    let mut config = ElasticConfig::default();
    if let Some(n) = flag_value(args, "--min") {
        config.min_nodes = n;
    }
    if let Some(n) = flag_value(args, "--max") {
        config.max_nodes = n;
    }
    if let Some(n) = flag_value(args, "--ticks") {
        config.ticks = n;
    }
    let auto_resume = args.iter().any(|a| a == "--resume");
    let jsonl = args.iter().any(|a| a == "--jsonl");

    match run_elastic_demo(&config, &plan, auto_resume, !jsonl) {
        Ok((report, stitched, _, _)) => {
            if jsonl {
                print!("{}", events_to_jsonl(&stitched));
            } else {
                if report.resumed_from_tick > 0 {
                    println!("resumed from tick {}", report.resumed_from_tick);
                }
                print!("{}", report.render());
            }
            ExitCode::SUCCESS
        }
        Err(code) => code,
    }
}

/// `xcbc mon elastic`: replay the elastic demo fleet through the same
/// gmond/gmetad telemetry pipeline as the deployment day — the power
/// sequencer's boot spans and power-off marks ride the trace, so scale
/// events show up on the dashboard next to the autoscaler's queue-depth
/// counters.
fn mon_elastic(faults: Option<&str>, format: MonFormat) -> ExitCode {
    use xcbc::core::elastic::{node_name, ElasticConfig};
    use xcbc::core::scenario::DayOneRun;
    use xcbc::sched::{ResourceManager, SimMetrics};

    let plan = match parse_plan("mon", faults) {
        Ok(p) => p,
        Err(code) => return code,
    };
    let config = ElasticConfig::default();
    let (_, events, rm, cache) = match run_elastic_demo(&config, &plan, true, false) {
        Ok(demo) => demo,
        Err(code) => return code,
    };
    let run = DayOneRun {
        scenario: "elastic".into(),
        seed: plan.seed,
        frontend: "elastic-head".into(),
        hosts: (0..config.max_nodes).map(node_name).collect(),
        events,
        quarantined: Vec::new(),
        solve_cache: cache,
        sched_metrics: SimMetrics::from_sim(rm.sim()),
    };
    let report = monitor_run(&run, default_alert_rules());
    match format {
        MonFormat::Dashboard => print!("{}", report.dashboard()),
        MonFormat::Prometheus => print!("{}", report.prometheus()),
        MonFormat::GangliaXml => print!("{}", report.ganglia_xml()),
        MonFormat::Jsonl => print!("{}", report.jsonl()),
        MonFormat::SelfProfile => print!("{}", render_self_profile()),
    }
    ExitCode::SUCCESS
}

fn compat() -> ExitCode {
    use xcbc::core::compat::check_compatibility;
    let bare = xcbc::rpm::RpmDb::new();
    let report = check_compatibility(&bare);
    println!(
        "A bare cluster matches {}/{} reference packages; XNIT would install:",
        report.matching, report.checked
    );
    for name in report.missing().iter().take(10) {
        println!("  {name}");
    }
    println!(
        "  ... and {} more",
        report.missing().len().saturating_sub(10)
    );
    ExitCode::SUCCESS
}

/// `xcbc exp`: sweep the open-loop workload engine over a frontend ×
/// policy × load × seed grid on a worker pool. Per-variant JSONL runs,
/// the aggregated CSV and the utilization/wait curves land under
/// `<out>/exp-NNN/`; the same grid produces byte-identical artifacts at
/// any `--workers` count.
fn exp_cmd(args: &[String]) -> ExitCode {
    use std::fs;
    use std::path::Path;
    use xcbc::sched::{run_grid, ExpGrid, RmKind, SchedPolicy, WorkloadSpec};

    fn flag_value<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse().ok())
    }

    let spec_name =
        flag_value::<String>(args, "--spec").unwrap_or_else(|| "teaching-lab".to_string());
    let spec = match spec_name.as_str() {
        "teaching-lab" => WorkloadSpec::teaching_lab(),
        "campus-research" => WorkloadSpec::campus_research(),
        "heavy-tail" => WorkloadSpec::heavy_tail(),
        other => {
            eprintln!(
                "xcbc exp: unknown --spec {other:?} \
                 (expected teaching-lab, campus-research or heavy-tail)"
            );
            return ExitCode::FAILURE;
        }
    };
    let name = flag_value::<String>(args, "--name").unwrap_or(spec_name);
    let mut grid = ExpGrid::new(&name).spec(spec);

    if let Some(list) = flag_value::<String>(args, "--policies") {
        let mut policies = Vec::new();
        for part in list.split(',') {
            match SchedPolicy::parse(part) {
                Ok(p) => policies.push(p),
                Err(e) => {
                    eprintln!("xcbc exp: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        grid = grid.policies(policies);
    }
    if let Some(list) = flag_value::<String>(args, "--rms") {
        let mut rms = Vec::new();
        for part in list.split(',') {
            match RmKind::parse(part) {
                Ok(r) => rms.push(r),
                Err(e) => {
                    eprintln!("xcbc exp: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        grid = grid.rms(rms);
    }
    if let Some(list) = flag_value::<String>(args, "--loads") {
        let mut loads = Vec::new();
        for part in list.split(',') {
            match part.trim().parse::<f64>() {
                Ok(l) if l > 0.0 => loads.push(l),
                _ => {
                    eprintln!("xcbc exp: bad load {part:?} (want a positive number)");
                    return ExitCode::FAILURE;
                }
            }
        }
        grid = grid.loads(loads);
    }
    let seed_count = flag_value::<u64>(args, "--seeds").unwrap_or(2).max(1);
    grid = grid.seeds((0..seed_count).collect());
    if let Some(jobs) = flag_value::<usize>(args, "--jobs") {
        grid = grid.jobs_per_run(jobs);
    }
    let nodes = flag_value::<usize>(args, "--nodes").unwrap_or(8).max(1);
    let cores = flag_value::<u32>(args, "--cores").unwrap_or(4).max(1);
    grid = grid.cluster(nodes, cores);
    let workers = flag_value::<usize>(args, "--workers").unwrap_or(4).max(1);
    let out_root = flag_value::<String>(args, "--out").unwrap_or_else(|| "results".to_string());

    let report = run_grid(&grid, workers);

    // next free exp-NNN slot under the results root
    let root = Path::new(&out_root);
    let mut n = 1usize;
    let dir = loop {
        let d = root.join(format!("exp-{n:03}"));
        if !d.exists() {
            break d;
        }
        n += 1;
    };
    let write = |rel: String, contents: &str| -> std::io::Result<()> {
        let path = dir.join(rel);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, contents)
    };
    let io = || -> std::io::Result<()> {
        write("grid.txt".to_string(), &report.grid.render())?;
        write("summary.csv".to_string(), &report.aggregate_csv())?;
        write("curves.txt".to_string(), &report.curves())?;
        for label in report.variant_labels() {
            write(format!("{label}/runs.jsonl"), &report.variant_jsonl(&label))?;
        }
        Ok(())
    };
    if let Err(e) = io() {
        eprintln!("xcbc exp: cannot write {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }

    print!("{}", report.grid.render());
    println!(
        "{} runs on {workers} workers, {} simulator events -> {}",
        report.runs.len(),
        report.total_events(),
        dir.display()
    );
    println!();
    print!("{}", report.aggregate_csv());
    println!();
    print!("{}", report.curves());
    ExitCode::SUCCESS
}
