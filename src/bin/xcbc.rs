//! `xcbc` — the toolkit's command-line entry point.
//!
//! ```text
//! xcbc tables              regenerate every paper table + figures
//! xcbc deploy <target>     simulate a deployment (littlefe | limulus | both)
//!       [--faults "<plan>"]  inject faults, e.g. "seed=42; node.boot key=compute-0-2"
//! xcbc lab <student>       run the training curriculum and print the grade sheet
//! xcbc linpack [n]         run a real HPL point on this machine
//! xcbc fleet               print the Table 3 fleet report
//! xcbc compat              demo the compatibility checker on a bare cluster
//! ```

use std::collections::BTreeMap;
use std::env;
use std::process::ExitCode;

use xcbc::cluster::specs::{limulus_hpc200, littlefe_modified};
use xcbc::core::deploy::{
    deploy_from_scratch, deploy_from_scratch_resilient, deploy_xnit_overlay,
    limulus_factory_image,
};
use xcbc::core::report;
use xcbc::core::training::{littlefe_curriculum, LabSession};
use xcbc::core::XnitSetupMethod;
use xcbc::fault::{FaultPlan, InstallCheckpoint};
use xcbc::rocks::{InstallErrorKind, ResilienceConfig};

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    match cmd {
        "tables" => tables(),
        "deploy" => {
            let target = match args.get(1).map(String::as_str) {
                None | Some("--faults") => "both",
                Some(t) => t,
            };
            let faults = args
                .iter()
                .position(|a| a == "--faults")
                .and_then(|i| args.get(i + 1))
                .map(String::as_str);
            deploy(target, faults)
        }
        "lab" => lab(args.get(1).map(String::as_str).unwrap_or("student")),
        "linpack" => linpack(args.get(1).and_then(|s| s.parse().ok()).unwrap_or(512)),
        "fleet" => {
            print!("{}", report::render_table3());
            ExitCode::SUCCESS
        }
        "compat" => compat(),
        "help" | "--help" | "-h" => {
            eprintln!(
                "usage: xcbc <tables|deploy [littlefe|limulus|both] [--faults \"<plan>\"]|lab [name]|linpack [n]|fleet|compat>"
            );
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("xcbc: unknown command {other:?} (try `xcbc help`)");
            ExitCode::FAILURE
        }
    }
}

fn tables() -> ExitCode {
    print!("{}", report::render_table1());
    println!();
    print!("{}", report::render_table2());
    print!("{}", report::render_table3());
    println!();
    print!("{}", report::render_table4());
    println!();
    print!("{}", report::render_table5());
    println!();
    print!("{}", report::render_figures());
    ExitCode::SUCCESS
}

fn deploy(target: &str, faults: Option<&str>) -> ExitCode {
    if target == "littlefe" || target == "both" {
        match faults {
            Some(dsl) => {
                if deploy_littlefe_with_faults(dsl) == ExitCode::FAILURE {
                    return ExitCode::FAILURE;
                }
            }
            None => match deploy_from_scratch(&littlefe_modified()) {
                Ok(r) => println!("{}", r.render_row()),
                Err(e) => {
                    eprintln!("littlefe deploy failed: {e}");
                    return ExitCode::FAILURE;
                }
            },
        }
    }
    if target == "limulus" || target == "both" {
        let existing: BTreeMap<_, _> = limulus_hpc200()
            .nodes
            .iter()
            .map(|n| (n.hostname.clone(), limulus_factory_image()))
            .collect();
        match deploy_xnit_overlay(&existing, XnitSetupMethod::RepoRpm) {
            Ok(r) => println!("{}", r.render_row()),
            Err(e) => {
                eprintln!("limulus overlay failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if !["littlefe", "limulus", "both"].contains(&target) {
        eprintln!("xcbc deploy: unknown target {target:?}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// From-scratch LittleFe build under an injected fault plan. A power
/// loss aborts with a checkpoint; we resume from it the way an
/// administrator re-running the installer would, until the deployment
/// lands (possibly degraded, with a post-mortem).
fn deploy_littlefe_with_faults(dsl: &str) -> ExitCode {
    let plan = match FaultPlan::parse(dsl) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("xcbc deploy: bad fault plan: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cluster = littlefe_modified();
    let mut checkpoint = InstallCheckpoint::new();
    // each power loss strictly grows the committed set, so this
    // terminates; the cap only guards against future plan mistakes
    for _ in 0..=cluster.nodes.len() {
        match deploy_from_scratch_resilient(
            &cluster,
            &plan,
            &ResilienceConfig::default(),
            checkpoint,
        ) {
            Ok(r) => {
                print!("{}", r.render());
                return ExitCode::SUCCESS;
            }
            Err(e) if matches!(e.kind, InstallErrorKind::PowerLoss) => {
                eprintln!(
                    "power lost mid-install [{} node(s) committed]; resuming from checkpoint",
                    e.progress.completed.len()
                );
                checkpoint = e.progress.checkpoint.clone();
            }
            Err(e) => {
                eprintln!("littlefe deploy failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    eprintln!("littlefe deploy: gave up after repeated power losses");
    ExitCode::FAILURE
}

fn lab(student: &str) -> ExitCode {
    let mut session = LabSession::new(student, littlefe_modified());
    session.run(&littlefe_curriculum());
    print!("{}", session.render());
    if session.grade() == 1.0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn linpack(n: usize) -> ExitCode {
    let threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(4).min(8);
    let r = xcbc::hpl::run_hpl(&xcbc::hpl::HplConfig { n, nb: 64, threads, seed: 42 });
    println!("{}", r.render());
    if r.passed {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn compat() -> ExitCode {
    use xcbc::core::compat::check_compatibility;
    let bare = xcbc::rpm::RpmDb::new();
    let report = check_compatibility(&bare);
    println!(
        "A bare cluster matches {}/{} reference packages; XNIT would install:",
        report.matching, report.checked
    );
    for name in report.missing().iter().take(10) {
        println!("  {name}");
    }
    println!("  ... and {} more", report.missing().len().saturating_sub(10));
    ExitCode::SUCCESS
}
