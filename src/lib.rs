//! # xcbc — XSEDE-compatible basic cluster & national integration toolkit
//!
//! Umbrella crate for the CLUSTER 2015 reproduction. Re-exports every
//! subsystem so examples and integration tests can reach the whole stack
//! through one dependency:
//!
//! * [`rpm`] — RPM package substrate (NEVRA, rpmvercmp, database, transactions)
//! * [`yum`] — Yum repositories, dependency solver, priorities, updates
//! * [`rocks`] — Rocks-style cluster distribution (rolls, kickstart graph, appliances)
//! * [`cluster`] — cluster hardware simulation (LittleFe, Limulus HPC200, Table-3 sites)
//! * [`fault`] — deterministic fault injection, retry/backoff, install checkpoints
//! * [`sched`] — Torque/Maui, SLURM, SGE resource-manager simulation
//! * [`hpl`] — High-Performance Linpack (blocked LU) and the analytic Rmax model
//! * [`modules`] — environment modules
//! * [`core`] — the paper's contribution: XCBC roll, XNIT repo, compatibility
//!   checking, deployment paths, training curriculum
//! * [`sim`] — the shared simulation clock, event queue, and trace bus
//!   every layer above records onto
//! * [`svc`] — `xcbcd`: the concurrent multi-tenant depsolve/deploy
//!   service with admission control, sharded tenant-salted solve
//!   caches, and deterministic-replay request journals
//! * [`check`] — the deterministic chaos-soak harness: seeded scenario
//!   generation, cross-crate invariant checking, seed shrinking

pub use xcbc_check as check;
pub use xcbc_cluster as cluster;
pub use xcbc_core as core;
pub use xcbc_fault as fault;
pub use xcbc_hpl as hpl;
pub use xcbc_modules as modules;
pub use xcbc_rocks as rocks;
pub use xcbc_rpm as rpm;
pub use xcbc_sched as sched;
pub use xcbc_sim as sim;
pub use xcbc_svc as svc;
pub use xcbc_yum as yum;
