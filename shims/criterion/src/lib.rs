//! Offline stand-in for `criterion`.
//!
//! Runs each benchmark a fixed, small number of timed iterations and
//! prints mean wall-clock per iteration. No statistics, warm-up tuning,
//! or HTML reports — just enough to keep `cargo bench` (and
//! `cargo build --benches`) working without crates.io access, and to give
//! a rough relative signal between code paths.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How many timed iterations each benchmark runs (upstream criterion
/// decides adaptively; the shim keeps it deliberately small).
const ITERS: u32 = 10;

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label)
    }
}

/// Declared throughput (accepted and ignored by the shim).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Batch sizing for `iter_batched` (ignored: every iteration re-runs setup).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Timing context passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        for _ in 0..ITERS {
            let start = Instant::now();
            black_box(routine());
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }

    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        for _ in 0..ITERS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("{name:<48} (no iterations)");
        } else {
            let per = self.elapsed / self.iters;
            println!("{name:<48} {per:>12.2?}/iter over {} iters", self.iters);
        }
    }
}

fn run_one(name: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher::default();
    f(&mut b);
    b.report(name);
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), f);
        self
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion;

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    pub fn bench_function(
        &mut self,
        name: impl std::fmt::Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        run_one(&name.to_string(), f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion;
        let mut group = c.benchmark_group("g");
        group.sample_size(10).throughput(Throughput::Bytes(8));
        let mut hits = 0u32;
        group.bench_function("hit", |b| b.iter(|| hits += 1));
        group.bench_with_input(BenchmarkId::new("in", 3), &3, |b, &x| {
            b.iter_batched(|| x, |v| v * 2, BatchSize::LargeInput)
        });
        group.finish();
        assert_eq!(hits, 10);
    }
}
