//! Offline stand-in for `serde`.
//!
//! Provides marker traits named `Serialize` / `Deserialize` plus the
//! matching no-op derive macros (feature `derive`). The workspace's only
//! real wire format — yum repo metadata JSON — is hand-written in
//! `crates/yum/src/metadata.rs`, so nothing here needs serde's data model.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
