//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `rand 0.8` API it actually uses:
//! [`Rng::gen_range`] / [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`],
//! and [`rngs::StdRng`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — high-quality, fast, and fully deterministic for a given
//! seed, which is all the simulation code relies on. Stream values differ
//! from upstream `rand`, but no test in this workspace depends on the
//! exact upstream streams, only on determinism and rough uniformity.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty inclusive range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + (hi - lo) * unit
    }
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + (self.end - self.start) * unit
    }
}

/// The user-facing random-value interface (blanket-implemented for every
/// [`RngCore`], mirroring `rand 0.8`).
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p` (clamped to 0..=1).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..9);
            assert!((3..9).contains(&v));
            let f = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&f));
            let i = rng.gen_range(1u32..=4);
            assert!((1..=4).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(rng.gen_bool(1.0));
            assert!(!rng.gen_bool(0.0));
        }
    }

    #[test]
    fn gen_bool_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }
}
