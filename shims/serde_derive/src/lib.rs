//! Offline stand-in for `serde_derive`.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` purely as a
//! marker — the only real (de)serialization, `xcbc-yum`'s repo metadata
//! JSON, is hand-rolled (see `crates/yum/src/metadata.rs`). These derives
//! therefore expand to nothing; they exist so the attribute positions keep
//! compiling without crates.io access. `#[serde(...)]` helper attributes
//! are accepted and ignored.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
