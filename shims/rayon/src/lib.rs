//! Offline stand-in for `rayon`.
//!
//! Mirrors the slice of rayon's API the workspace uses. `par_chunks_mut`
//! runs genuinely parallel on scoped std threads (it backs the LU
//! trailing-matrix update, the one hot loop that benefits); `par_iter` /
//! `par_iter_mut` degrade to ordinary sequential iterators, which keeps
//! arbitrary `zip`/`for_each` chains compiling with identical results.

use std::cell::Cell;

thread_local! {
    static CURRENT_THREADS: Cell<usize> = const { Cell::new(1) };
}

/// Error from [`ThreadPoolBuilder::build`] (never produced by the shim).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads: n })
    }
}

#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's thread count active for `par_chunks_mut`.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = CURRENT_THREADS.with(|t| t.replace(self.threads));
        let out = f();
        CURRENT_THREADS.with(|t| t.set(prev));
        out
    }

    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

/// Parallel mutable chunk iterator (consumed by [`ParChunksMut::for_each`]).
pub struct ParChunksMut<'data, T> {
    slice: &'data mut [T],
    chunk: usize,
}

impl<'data, T: Send> ParChunksMut<'data, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Send + Sync,
    {
        let threads = CURRENT_THREADS.with(|t| t.get()).max(1);
        if threads == 1 || self.slice.len() <= self.chunk {
            for c in self.slice.chunks_mut(self.chunk) {
                f(c);
            }
            return;
        }
        let chunks: Vec<&mut [T]> = self.slice.chunks_mut(self.chunk).collect();
        let per = chunks.len().div_ceil(threads);
        let mut groups: Vec<Vec<&mut [T]>> = Vec::with_capacity(threads);
        let mut it = chunks.into_iter();
        loop {
            let group: Vec<&mut [T]> = it.by_ref().take(per).collect();
            if group.is_empty() {
                break;
            }
            groups.push(group);
        }
        let f = &f;
        std::thread::scope(|s| {
            for group in groups {
                s.spawn(move || {
                    for c in group {
                        f(c);
                    }
                });
            }
        });
    }
}

/// `rayon::slice::ParallelSliceMut` lookalike.
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut {
            slice: self,
            chunk: chunk_size,
        }
    }
}

/// `par_iter` lookalike — sequential `std::slice::Iter` so every adapter
/// chain (`zip`, `enumerate`, `for_each`, ...) works unchanged.
pub trait IntoParallelRefIterator<'data> {
    type Iter;
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: 'data> IntoParallelRefIterator<'data> for [T] {
    type Iter = std::slice::Iter<'data, T>;
    fn par_iter(&'data self) -> Self::Iter {
        self.iter()
    }
}

/// `par_iter_mut` lookalike — sequential `std::slice::IterMut`.
pub trait IntoParallelRefMutIterator<'data> {
    type Iter;
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, T: 'data> IntoParallelRefMutIterator<'data> for [T] {
    type Iter = std::slice::IterMut<'data, T>;
    fn par_iter_mut(&'data mut self) -> Self::Iter {
        self.iter_mut()
    }
}

pub mod prelude {
    pub use crate::{IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn par_chunks_mut_touches_every_chunk() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let mut data = vec![0u64; 1000];
        pool.install(|| {
            data.par_chunks_mut(7).for_each(|c| {
                for v in c {
                    *v += 1;
                }
            });
        });
        assert!(data.iter().all(|&v| v == 1));
    }

    #[test]
    fn sequential_iters_match_std() {
        let a = [1, 2, 3];
        let mut b = vec![0, 0, 0];
        b.par_iter_mut()
            .zip(a.par_iter())
            .for_each(|(b, a)| *b = a * 2);
        assert_eq!(b, vec![2, 4, 6]);
    }
}
