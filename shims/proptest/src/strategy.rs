//! Strategies: seeded samplers for the input shapes the workspace's
//! property tests draw from.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies by the `proptest!` macro.
pub type TestRng = StdRng;

/// Deterministic per-(test, case) RNG so failures reproduce exactly.
pub fn case_rng(test_name: &str, case: u64) -> TestRng {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9e3779b97f4a7c15))
}

/// A source of random values of one type.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Box a strategy for heterogeneous unions (`prop_oneof!`).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

// --- ranges ---

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

// --- constants and any ---

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize);

/// Marker returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// --- tuples ---

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

// --- unions (prop_oneof!) ---

/// Uniform choice among boxed strategies of one value type.
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].sample(rng)
    }
}

// --- collections ---

/// `proptest::collection::vec(element, size_range)`.
pub struct VecStrategy<S> {
    element: S,
    sizes: core::ops::Range<usize>,
}

pub fn vec<S: Strategy>(element: S, sizes: core::ops::Range<usize>) -> VecStrategy<S> {
    assert!(sizes.start < sizes.end, "vec strategy: empty size range");
    VecStrategy { element, sizes }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.sizes.clone());
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

// --- regex strings ---

/// Error from [`string_regex`] on an unsupported pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StringRegexError(pub String);

impl std::fmt::Display for StringRegexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unsupported regex: {}", self.0)
    }
}

impl std::error::Error for StringRegexError {}

#[derive(Debug, Clone)]
enum RegexItem {
    /// A set of candidate chars with a repeat range (min, max inclusive).
    Class {
        chars: Vec<char>,
        min: usize,
        max: usize,
    },
}

/// Generator for the small regex subset used in tests: literal chars,
/// `[...]` classes with ranges, and `{m}` / `{m,n}` quantifiers.
#[derive(Debug, Clone)]
pub struct StringStrategy {
    items: Vec<RegexItem>,
}

pub fn string_regex(pattern: &str) -> Result<StringStrategy, StringRegexError> {
    let err = || StringRegexError(pattern.to_string());
    let mut items = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let class: Vec<char> = match c {
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match chars.next() {
                        None => return Err(err()),
                        Some(']') => break,
                        Some('^') if set.is_empty() && prev.is_none() => return Err(err()),
                        Some('-') if prev.is_some() && chars.peek() != Some(&']') => {
                            let lo = prev.take().unwrap();
                            let hi = chars.next().ok_or_else(err)?;
                            if hi < lo {
                                return Err(err());
                            }
                            // `lo` was already pushed when seen; add the rest
                            let mut ch = lo;
                            while ch < hi {
                                ch = char::from_u32(ch as u32 + 1).ok_or_else(err)?;
                                set.push(ch);
                            }
                        }
                        Some(ch) => {
                            set.push(ch);
                            prev = Some(ch);
                        }
                    }
                }
                if set.is_empty() {
                    return Err(err());
                }
                set
            }
            '\\' => vec![chars.next().ok_or_else(err)?],
            '.' | '*' | '+' | '?' | '(' | ')' | '|' | '{' | '}' => return Err(err()),
            literal => vec![literal],
        };
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            loop {
                match chars.next() {
                    None => return Err(err()),
                    Some('}') => break,
                    Some(ch) => spec.push(ch),
                }
            }
            match spec.split_once(',') {
                None => {
                    let n: usize = spec.trim().parse().map_err(|_| err())?;
                    (n, n)
                }
                Some((m, n)) => {
                    let m: usize = m.trim().parse().map_err(|_| err())?;
                    let n: usize = n.trim().parse().map_err(|_| err())?;
                    if n < m {
                        return Err(err());
                    }
                    (m, n)
                }
            }
        } else {
            (1, 1)
        };
        items.push(RegexItem::Class {
            chars: class,
            min,
            max,
        });
    }
    Ok(StringStrategy { items })
}

impl Strategy for StringStrategy {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for RegexItem::Class { chars, min, max } in &self.items {
            let reps = rng.gen_range(*min..=*max);
            for _ in 0..reps {
                out.push(chars[rng.gen_range(0..chars.len())]);
            }
        }
        out
    }
}

/// Bare `&str` literals act as regex strategies (matches proptest).
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        string_regex(self)
            .expect("invalid regex strategy literal")
            .sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regex_class_with_quantifier() {
        let s = string_regex("[0-9a-z.~^_]{0,12}").unwrap();
        let mut rng = case_rng("regex", 0);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!(v.len() <= 12);
            assert!(v
                .chars()
                .all(|c| c.is_ascii_digit() || c.is_ascii_lowercase() || ".~^_".contains(c)));
        }
    }

    #[test]
    fn regex_literal_prefix() {
        let s = string_regex("[0-9][0-9a-z.]{0,6}").unwrap();
        let mut rng = case_rng("prefix", 1);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!(!v.is_empty() && v.len() <= 7);
            assert!(v.chars().next().unwrap().is_ascii_digit());
        }
    }

    #[test]
    fn unsupported_regex_rejected() {
        assert!(string_regex("a|b").is_err());
        assert!(string_regex("[^a]").is_err());
        assert!(string_regex("a*").is_err());
    }

    #[test]
    fn vec_and_tuple_strategies() {
        let strat = vec((0u32..5, 0.0f64..1.0), 1..10);
        let mut rng = case_rng("vec", 0);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!(!v.is_empty() && v.len() < 10);
            for (a, b) in v {
                assert!(a < 5);
                assert!((0.0..1.0).contains(&b));
            }
        }
    }

    #[test]
    fn union_uniformish() {
        let u = Union::new(vec![boxed(Just(1u8)), boxed(Just(2u8))]);
        let mut rng = case_rng("union", 0);
        let ones = (0..1000).filter(|_| u.sample(&mut rng) == 1).count();
        assert!((300..700).contains(&ones));
    }
}
