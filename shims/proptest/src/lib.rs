//! Offline stand-in for `proptest`.
//!
//! Implements the subset of proptest's surface this workspace uses:
//! the `proptest!` macro (with `#![proptest_config(...)]`), `prop_assert*`,
//! `Just`, `any::<T>()`, `prop_oneof!`, `proptest::collection::vec`,
//! `proptest::string::string_regex`, and `Strategy` for ranges, tuples,
//! and regex `&str` literals.
//!
//! Semantics differ from real proptest in one deliberate way: there is no
//! shrinking. Each test runs `cases` seeded random inputs (deterministic
//! per test name and case index) and reports the first failing input
//! verbatim. That keeps failures reproducible without the full strategy
//! machinery, which cannot be fetched in this offline build environment.

pub mod strategy;

pub mod collection {
    pub use crate::strategy::vec;
}

pub mod string {
    pub use crate::strategy::{string_regex, StringRegexError, StringStrategy};
}

pub mod test_runner {
    pub use crate::strategy::case_rng;

    /// Per-test configuration (only `cases` is honored).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A failed test case (produced by the `prop_assert*` macros).
    #[derive(Debug)]
    pub struct TestCaseError {
        pub message: String,
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.message)
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, boxed, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Entry point: same shape as `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::case_rng(stringify!($name), __case as u64);
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__e) = __result {
                    panic!("proptest case {}/{} failed: {}", __case + 1, __cfg.cases, __e);
                }
            }
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} == {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}: {:?} == {:?}", format!($($fmt)+), l, r),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}: {:?} != {:?}", format!($($fmt)+), l, r),
            ));
        }
    }};
}

/// `prop_oneof![a, b, c]` — uniform choice among same-valued strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}
