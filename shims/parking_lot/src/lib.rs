//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Exposes the non-poisoning `read()` / `write()` / `lock()` API the
//! workspace uses; poisoning from a panicked holder is surfaced as a
//! panic, which matches how parking_lot-using code treats locks as
//! infallible.

use std::sync::{self, LockResult};

fn unpoison<G>(r: LockResult<G>) -> G {
    match r {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// `parking_lot::RwLock` lookalike.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        unpoison(self.inner.read())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        unpoison(self.inner.write())
    }

    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner())
    }
}

/// `parking_lot::Mutex` lookalike.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        unpoison(self.inner.lock())
    }

    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
