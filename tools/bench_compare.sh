#!/usr/bin/env sh
# Re-run the criterion benches, snapshot per-iteration times to a flat
# name -> nanoseconds JSON (same shape as BENCH_baseline.json), and
# fail if any bench regressed more than the allowed percentage against
# the baseline.
#
#   tools/bench_compare.sh [baseline.json] [snapshot-out.json]
#
# MAX_REGRESS_PCT (default 15) sets the failure threshold. Because the
# baseline was recorded on whatever machine state a past PR ran under,
# raw nanoseconds are not comparable across runs — the gate first
# computes the median new/baseline ratio over ALL benches as the
# machine-speed factor, then flags benches that regressed more than
# the threshold beyond that factor. A uniform slowdown (slower runner,
# thermal throttling) cancels out; a genuine regression in a few
# benches stands out against the fleet median. A small absolute slack
# (1µs) is added so nanosecond-scale benches don't trip on scheduler
# noise alone. Benches present in the baseline but missing from the
# run fail the gate (a deleted bench must be deleted from the baseline
# deliberately); new benches are recorded without being compared.
set -eu

baseline="${1:-BENCH_baseline.json}"
out="${2:-BENCH_pr10.json}"
max_pct="${MAX_REGRESS_PCT:-15}"
runs="${BENCH_RUNS:-3}"
slack_ns=1000

[ -f "$baseline" ] || { echo "bench_compare: no baseline at $baseline" >&2; exit 2; }

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

# The criterion shim does a handful of unwarmed iterations, so a single
# run is noisy; take the best of several runs per bench.
: >"$tmpdir/all.tsv"
for i in $(seq 1 "$runs"); do
    echo "bench_compare: cargo bench -p xcbc-bench (run $i/$runs) ..." >&2
    cargo bench -q -p xcbc-bench >"$tmpdir/bench.out" 2>"$tmpdir/bench.err" || {
        cat "$tmpdir/bench.err" >&2
        echo "bench_compare: cargo bench failed" >&2
        exit 2
    }
    [ "$i" = 1 ] && cat "$tmpdir/bench.out"

    # Shim output lines look like:
    #   solver/install_closure/400                       3.84ms/iter over 30 iters
    # Convert the duration token to integer nanoseconds.
    awk '/\/iter over [0-9]+ iters$/ {
        tok = $2
        sub(/\/iter$/, "", tok)
        value = tok; sub(/[^0-9.].*$/, "", value)
        unit = tok; sub(/^[0-9.]+/, "", unit)
        ns = value + 0
        if (unit == "s")       ns *= 1000000000
        else if (unit == "ms") ns *= 1000000
        else if (unit == "\xc2\xb5s" || unit == "us") ns *= 1000
        printf "%s\t%.0f\n", $1, ns
    }' "$tmpdir/bench.out" >>"$tmpdir/all.tsv"
done

awk -F'\t' '!($1 in best) || $2 < best[$1] { best[$1] = $2 }
    END { for (name in best) printf "%s\t%s\n", name, best[name] }' \
    "$tmpdir/all.tsv" | sort >"$tmpdir/new.tsv"

[ -s "$tmpdir/new.tsv" ] || { echo "bench_compare: parsed no bench results" >&2; exit 2; }

awk -F'\t' 'BEGIN { print "{" }
    { line[NR] = sprintf("  \"%s\": %s", $1, $2) }
    END {
        for (i = 1; i <= NR; i++) printf "%s%s\n", line[i], (i < NR ? "," : "")
        print "}"
    }' "$tmpdir/new.tsv" >"$out"
echo "bench_compare: wrote $(wc -l <"$tmpdir/new.tsv") results to $out" >&2

# Flatten the baseline JSON ("name": ns pairs) to the same TSV shape.
awk 'match($0, /"[^"]+"[ ]*:[ ]*[0-9]+/) {
    pair = substr($0, RSTART, RLENGTH)
    name = pair; sub(/^"/, "", name); sub(/".*$/, "", name)
    ns = pair; sub(/^.*:[ ]*/, "", ns)
    printf "%s\t%s\n", name, ns
}' "$baseline" | sort >"$tmpdir/base.tsv"

join -t "$(printf '\t')" "$tmpdir/base.tsv" "$tmpdir/new.tsv" >"$tmpdir/joined.tsv"

missing=$(join -t "$(printf '\t')" -v 1 "$tmpdir/base.tsv" "$tmpdir/new.tsv" | cut -f1)
if [ -n "$missing" ]; then
    echo "bench_compare: benches in $baseline but not in this run:" >&2
    echo "$missing" | sed 's/^/  /' >&2
    exit 1
fi

# Machine-speed factor: the median new/base ratio across every bench.
factor=$(awk -F'\t' '{ print $3 / $2 }' "$tmpdir/joined.tsv" \
    | sort -n | awk '{ r[NR] = $1 } END { print r[int((NR + 1) / 2)] }')

awk -F'\t' -v pct="$max_pct" -v slack="$slack_ns" -v factor="$factor" '
    BEGIN {
        printf "bench_compare: machine-speed factor %.3f (median new/base ratio)\n", factor
    }
    {
        allowed = $2 * factor * (100 + pct) / 100 + slack
        delta = ($3 / factor - $2) * 100.0 / $2
        if ($3 > allowed) {
            printf "REGRESSED  %-48s %12d -> %12d ns (%+.1f%% vs fleet)\n", $1, $2, $3, delta
            bad++
        } else {
            printf "ok         %-48s %12d -> %12d ns (%+.1f%% vs fleet)\n", $1, $2, $3, delta
        }
    }
    END {
        if (bad > 0) {
            printf "bench_compare: %d bench(es) regressed more than %s%% beyond the fleet median\n", bad, pct
            exit 1
        }
        printf "bench_compare: all %d benches within %s%% of the speed-adjusted baseline\n", NR, pct
    }' "$tmpdir/joined.tsv"
