//! Golden-file check of the seeded LittleFe Prometheus exposition.
//!
//! `xcbc mon littlefe --prom` must be byte-stable across refactors: the
//! scrape is the observability contract downstream dashboards are built
//! against. This test replays the default (seed 42, fault-free) day-one
//! scenario through the telemetry pipeline and diffs the exposition
//! against `tests/golden/littlefe.prom`.
//!
//! When an intentional change shifts the exposition, regenerate with:
//!
//! ```text
//! XCBC_BLESS=1 cargo test --test mon_golden
//! ```

use xcbc::cluster::default_alert_rules;
use xcbc::core::mon::monitor_run;
use xcbc::core::scenario::littlefe_day_one;
use xcbc::fault::FaultPlan;

const GOLDEN_PATH: &str = "tests/golden/littlefe.prom";

#[test]
fn littlefe_prometheus_exposition_matches_golden() {
    let run = littlefe_day_one(&FaultPlan::new(42)).expect("clean day-one run");
    let report = monitor_run(&run, default_alert_rules());
    let actual = report.prometheus();

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(GOLDEN_PATH);
    if std::env::var_os("XCBC_BLESS").is_some() {
        std::fs::write(&path, &actual).expect("bless golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "read {}: {e} (run with XCBC_BLESS=1 to create)",
            GOLDEN_PATH
        )
    });
    if actual != expected {
        let first_diff = actual
            .lines()
            .zip(expected.lines())
            .enumerate()
            .find(|(_, (a, e))| a != e);
        panic!(
            "exposition drifted from {GOLDEN_PATH} (first differing line: {:?}); \
             if intentional, regenerate with XCBC_BLESS=1 cargo test --test mon_golden",
            first_diff
        );
    }
}
