//! Scheduler-frontend parity: Torque, SLURM, and SGE are façades over
//! the same `ClusterSim`, so the same job script submitted through any
//! of them must produce the *identical* simulation trace once the
//! scheduling policy is normalized (each frontend ships a different
//! default: Maui for Torque, backfill for SLURM/SGE).

use proptest::prelude::*;
use xcbc::sched::{
    ClusterSim, JobRequest, ResourceManager, SchedPolicy, SgeCell, Slurm, TorqueServer,
};
use xcbc::sim::events_to_jsonl;

const NODES: usize = 4;
const CORES: u32 = 2;

/// Run one workload through a frontend (policy normalized first) and
/// return the JSONL-rendered trace plus final used core-seconds.
fn run_frontend<R: ResourceManager>(mut rm: R, jobs: &[JobRequest]) -> (String, f64) {
    rm.sim_mut().set_policy(SchedPolicy::EasyBackfill);
    for req in jobs {
        rm.submit(req.clone());
    }
    rm.drain();
    let trace = events_to_jsonl(&rm.sim_mut().take_trace());
    (trace, rm.sim().used_core_seconds())
}

fn build_jobs(shapes: &[(u32, u32, f64, f64)]) -> Vec<JobRequest> {
    shapes
        .iter()
        .enumerate()
        .map(|(i, &(nodes, ppn, walltime, frac))| {
            JobRequest::new(&format!("job-{i}"), nodes, ppn, walltime, walltime * frac)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Arbitrary satisfiable workloads yield byte-identical traces
    /// through all three frontends.
    #[test]
    fn frontends_trace_identically(
        shapes in proptest::collection::vec(
            (1u32..=NODES as u32, 1u32..=CORES, 60.0f64..1800.0, 0.3f64..1.2),
            1..12,
        )
    ) {
        let jobs = build_jobs(&shapes);
        let (torque_trace, torque_used) =
            run_frontend(TorqueServer::with_maui("littlefe", NODES, CORES), &jobs);
        let (slurm_trace, slurm_used) = run_frontend(Slurm::new("normal", NODES, CORES), &jobs);
        let (sge_trace, sge_used) = run_frontend(SgeCell::new(NODES, CORES), &jobs);

        prop_assert_eq!(&torque_trace, &slurm_trace);
        prop_assert_eq!(&torque_trace, &sge_trace);
        prop_assert_eq!(torque_used.to_bits(), slurm_used.to_bits());
        prop_assert_eq!(torque_used.to_bits(), sge_used.to_bits());
    }
}

/// The native submit commands agree too, for workloads expressible in
/// all three dialects. SGE thinks in slots, so full-node jobs (`ppn ==
/// cores_per_node`) are the common language: `-pe mpi N*cores` maps
/// back to exactly `nodes=N:ppn=cores`.
#[test]
fn native_commands_agree_on_full_node_jobs() {
    let full_node = [(1u32, 900.0, 600.0), (2, 1200.0, 1300.0), (4, 600.0, 200.0)];

    let mut torque = TorqueServer::with_maui("littlefe", NODES, CORES);
    torque.sim_mut().set_policy(SchedPolicy::EasyBackfill);
    for (i, &(nodes, wall, run)) in full_node.iter().enumerate() {
        torque.qsub(JobRequest::new(
            &format!("job-{i}"),
            nodes,
            CORES,
            wall,
            run,
        ));
    }
    torque.drain();

    let mut slurm = Slurm::new("normal", NODES, CORES);
    slurm.sim_mut().set_policy(SchedPolicy::EasyBackfill);
    for (i, &(nodes, wall, run)) in full_node.iter().enumerate() {
        slurm.sbatch(JobRequest::new(
            &format!("job-{i}"),
            nodes,
            CORES,
            wall,
            run,
        ));
    }
    slurm.drain();

    let mut sge = SgeCell::new(NODES, CORES);
    sge.sim_mut().set_policy(SchedPolicy::EasyBackfill);
    for (i, &(nodes, wall, run)) in full_node.iter().enumerate() {
        sge.qsub_pe(&format!("job-{i}"), nodes * CORES, wall, run)
            .expect("full-node job fits the cell");
    }
    sge.drain();

    let t = events_to_jsonl(&torque.sim_mut().take_trace());
    let s = events_to_jsonl(&slurm.sim_mut().take_trace());
    let g = events_to_jsonl(&sge.sim_mut().take_trace());
    assert_eq!(t, s, "qsub vs sbatch traces differ");
    assert_eq!(t, g, "qsub vs qsub -pe traces differ");
}

/// Different *policies* genuinely differ (the parity above is not
/// vacuous): a backlogged mixed workload schedules differently under
/// FIFO than under backfill.
#[test]
fn policy_normalization_is_load_bearing() {
    let jobs = build_jobs(&[
        (4, 2, 1000.0, 1.0),
        (1, 1, 200.0, 1.0),
        (4, 2, 1000.0, 1.0),
        (1, 1, 100.0, 1.0),
    ]);
    let run = |policy: SchedPolicy| {
        let mut sim = ClusterSim::new(NODES, CORES, policy);
        for j in &jobs {
            sim.submit(j.clone());
        }
        sim.run_to_completion();
        events_to_jsonl(&sim.take_trace())
    };
    assert_ne!(
        run(SchedPolicy::Fifo),
        run(SchedPolicy::EasyBackfill),
        "expected FIFO and backfill to order this workload differently"
    );
}
