//! Paper-facing integration tests: every table's headline numbers and
//! every load-bearing prose claim, checked against the implementation.

use xcbc::cluster::cost::{limulus_hpc200_bom, littlefe_modified_bom, server_configuration_bom};
use xcbc::cluster::specs::{limulus_hpc200, littlefe_modified};
use xcbc::core::report::{
    render_figures, render_table1, render_table2, render_table3, render_table4, render_table5,
};
use xcbc::core::sites::fleet_totals;
use xcbc::hpl::EfficiencyModel;

#[test]
fn table3_totals_exact() {
    let t = fleet_totals();
    assert_eq!((t.nodes, t.cores), (304, 2708));
    assert!((t.rpeak_tflops - 49.61).abs() < 1e-9);
}

#[test]
fn table4_numbers_exact() {
    let lf = littlefe_modified();
    assert_eq!(
        (
            lf.node_count(),
            lf.nodes[0].cpu.clock_ghz,
            lf.cpu_count(),
            lf.compute_cores()
        ),
        (6, 2.8, 6, 12)
    );
    let lm = limulus_hpc200();
    assert_eq!(
        (
            lm.node_count(),
            lm.nodes[0].cpu.clock_ghz,
            lm.cpu_count(),
            lm.compute_cores()
        ),
        (4, 3.1, 4, 16)
    );
}

#[test]
fn table5_rpeak_exact_and_price_performance_ordering() {
    let lf = littlefe_modified();
    let lm = limulus_hpc200();
    assert!((lf.rpeak_gflops() - 537.6).abs() < 1e-9);
    assert!((lm.rpeak_gflops() - 793.6).abs() < 1e-9);

    // paper rounding: $7 vs $8 per Rpeak GFLOPS
    assert_eq!(littlefe_modified_bom().usd_per_gflops_rounded(537.6), 7);
    assert_eq!(limulus_hpc200_bom().usd_per_gflops_rounded(793.6), 8);
    // and with the paper's own Rmax numbers: $9 vs $12
    assert_eq!(littlefe_modified_bom().usd_per_gflops_rounded(403.2), 9);
    assert_eq!(limulus_hpc200_bom().usd_per_gflops_rounded(498.3), 12);
}

#[test]
fn rmax_model_shape_matches_paper() {
    let m = EfficiencyModel::gigabit_deskside();
    // Limulus calibration point within 5%
    let lm = m.rmax_gflops(793.6, 4, 64_000);
    assert!((lm - 498.3).abs() / 498.3 < 0.05, "{lm}");
    // ordering: Limulus wins absolute Rmax, LittleFe wins $/GF
    let lf = m.rmax_gflops(537.6, 6, 40_000);
    assert!(lm > lf);
    assert!(3600.0 / lf < 5995.0 / lm);
}

#[test]
fn order_of_magnitude_cheaper_than_server_configs() {
    let server = server_configuration_bom().total_usd();
    assert!(server >= 10.0 * littlefe_modified_bom().total_usd());
}

#[test]
fn all_renderers_are_nonempty_and_stable() {
    for (name, text) in [
        ("table1", render_table1()),
        ("table2", render_table2()),
        ("table3", render_table3()),
        ("table4", render_table4()),
        ("table5", render_table5()),
        ("figures", render_figures()),
    ] {
        assert!(text.len() > 100, "{name} too short");
    }
    // deterministic output
    assert_eq!(render_table5(), render_table5());
    assert_eq!(render_figures(), render_figures());
}

#[test]
fn catalog_covers_every_package_the_paper_names() {
    // §2's explicit mentions across Tables 1-2 and the release notes
    for name in [
        "gromacs",
        "mpiblast",
        "gatk",
        "trinity",
        "R",
        "java-1.7.0-openjdk",
        "torque",
        "maui",
        "slurm",
        "gridengine",
        "globus-connect-server",
        "genesis2",
        "gffs",
        "openmpi",
        "mpich2",
        "lammps",
        "petsc",
        "octave",
        "valgrind",
        "hdf5",
        "fftw",
        "fftw2",
    ] {
        assert!(
            xcbc::core::catalog::entry(name).is_some(),
            "paper names {name} but the catalog lacks it"
        );
    }
}

#[test]
fn xnit_superset_claim() {
    // "XNIT includes all of the software included in the standard XCBC
    // build, and more"
    let repo = xcbc::core::xnit_repository();
    for entry in xcbc::core::catalog::CATALOG {
        assert!(
            repo.newest(entry.name).is_some(),
            "XNIT missing {}",
            entry.name
        );
    }
    assert!(repo.package_count() > xcbc::core::catalog::CATALOG.len());
}

#[test]
fn luggability_claims() {
    // "the LittleFe weighing under 50 pounds and the Limulus HPC200
    // weighing in at 50 pounds"
    assert!(littlefe_modified().weight_lbs < 50.0);
    assert!((limulus_hpc200().weight_lbs - 50.0).abs() < f64::EPSILON);
}

#[test]
fn release_history_counts() {
    use xcbc::core::XSEDE_ROLL_RELEASES;
    assert_eq!(XSEDE_ROLL_RELEASES[1].additions.len(), 27);
    assert_eq!(XSEDE_ROLL_RELEASES[2].additions.len(), 41);
}
