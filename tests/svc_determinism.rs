//! The xcbcd determinism contract, end to end: the same seeded
//! multi-tenant stream must produce byte-identical journals, responses,
//! and cache-counter totals at any worker-pool width — and replaying
//! the journal single-threaded must reproduce every response body
//! byte-for-byte and land on the exact recorded cache totals.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use proptest::prelude::*;
use xcbc::svc::{replay, serve, Disposition, SvcWorkload};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Worker count is invisible in every observable output: journal
    /// bytes, the full response vector (order, dispositions, bodies),
    /// per-tenant response sets, and bank-wide cache totals.
    #[test]
    fn worker_count_is_invisible(
        seed in 0u64..1_000,
        tenants in 2usize..=4,
        requests in 6usize..=20,
    ) {
        let workload = SvcWorkload { tenants, requests, seed, ..SvcWorkload::default() };
        let stream = workload.generate();

        let base = serve(&stream, &workload.config(1));
        for workers in [4usize, 8] {
            let other = serve(&stream, &workload.config(workers));
            prop_assert_eq!(
                &other.journal_text, &base.journal_text,
                "journal bytes diverge at {} workers", workers
            );
            prop_assert_eq!(
                &other.responses, &base.responses,
                "responses diverge at {} workers", workers
            );
            prop_assert_eq!(
                other.cache_totals(), base.cache_totals(),
                "cache totals diverge at {} workers", workers
            );

            // per-tenant response sets match exactly
            let mut base_sets: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
            let mut other_sets: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
            for r in &base.responses {
                base_sets.entry(&r.tenant).or_default().insert(&r.body);
            }
            for r in &other.responses {
                other_sets.entry(&r.tenant).or_default().insert(&r.body);
            }
            prop_assert_eq!(base_sets, other_sets, "per-tenant sets diverge at {} workers", workers);
        }
    }

    /// `xcbcd --replay` on the journal of any served stream reproduces
    /// byte-identical response bodies and the recorded cache totals.
    #[test]
    fn replay_is_byte_identical(
        seed in 0u64..1_000,
        tenants in 2usize..=4,
        requests in 6usize..=20,
        workers in 1usize..=8,
    ) {
        let workload = SvcWorkload { tenants, requests, seed, ..SvcWorkload::default() };
        let report = serve(&workload.generate(), &workload.config(workers));

        let verdict = replay(&report.journal_text).expect("journal parses");
        prop_assert!(verdict.is_clean(), "replay mismatches:\n{}", verdict.render());

        // digests are checked inside replay; also pin the raw bytes
        let live: BTreeMap<u64, &str> = report
            .responses
            .iter()
            .filter_map(|r| match r.disposition {
                Disposition::Accepted { seq } => Some((seq, r.body.as_str())),
                Disposition::Rejected(_) => None,
            })
            .collect();
        prop_assert_eq!(live.len(), verdict.responses.len());
        for (seq, tenant, body) in &verdict.responses {
            prop_assert_eq!(live[seq], body.as_str(), "seq {} ({})", seq, tenant);
        }
        prop_assert_eq!(verdict.cache_totals(), report.cache_totals());
    }
}
