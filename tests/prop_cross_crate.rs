//! Cross-crate property tests: invariants that hold across the whole
//! stack for randomized inputs.

use proptest::prelude::*;
use std::collections::BTreeMap;
use xcbc::core::compat::check_compatibility;
use xcbc::core::deploy::deploy_xnit_overlay;
use xcbc::core::xnit::XnitSetupMethod;
use xcbc::rpm::{PackageBuilder, RpmDb};

/// Build a random "pre-existing cluster" whose packages never collide
/// with the XCBC catalog (site-local software).
fn random_site_db(pkg_count: usize, seed: usize) -> RpmDb {
    let mut db = RpmDb::new();
    for i in 0..pkg_count {
        db.install(
            PackageBuilder::new(
                &format!("site-local-{seed}-{i}"),
                &format!("{}.{}", 1 + i % 5, i % 10),
                "1.local",
            )
            .file(format!("/opt/site/{seed}/{i}"))
            .build(),
        );
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The §8 invariant for arbitrary pre-existing clusters: the XNIT
    /// overlay reaches full compatibility and never removes anything.
    #[test]
    fn overlay_preserves_arbitrary_preexisting_software(
        node_count in 1usize..4,
        pkg_count in 0usize..12,
    ) {
        let existing: BTreeMap<String, RpmDb> = (0..node_count)
            .map(|i| (format!("node-{i}"), random_site_db(pkg_count, i)))
            .collect();
        let report = deploy_xnit_overlay(&existing, XnitSetupMethod::RepoRpm).unwrap();
        prop_assert!(report.compat.is_compatible());
        prop_assert!(report.preexisting_preserved);
        for (host, db) in &report.node_dbs {
            prop_assert!(db.verify().is_empty(), "{host} inconsistent");
            for i in 0..pkg_count {
                let name = format!("site-local-{}-{i}", host.trim_start_matches("node-"));
                prop_assert!(db.is_installed(&name));
            }
        }
    }

    /// Compatibility scoring is monotone: installing more reference
    /// packages never lowers the score.
    #[test]
    fn compat_score_monotone(split in 1usize..100) {
        let catalog = xcbc::core::catalog::xcbc_catalog();
        let split = split.min(catalog.len());
        let mut db = RpmDb::new();
        let mut last = check_compatibility(&db).score;
        // install in dependency-safe order by looping until progress stops
        let mut remaining: Vec<_> = catalog.into_iter().take(split).collect();
        while !remaining.is_empty() {
            let before = remaining.len();
            remaining.retain(|p| {
                let deps_ok = p.requires.iter().all(|r| db.provides(r));
                if deps_ok {
                    db.install(p.clone());
                    false
                } else {
                    true
                }
            });
            let score = check_compatibility(&db).score;
            prop_assert!(score >= last - 1e-12, "score dropped: {last} -> {score}");
            last = score;
            if remaining.len() == before {
                // leftover entries depend on packages outside the prefix
                break;
            }
        }
    }
}

#[test]
fn hpl_and_scheduler_compose() {
    // run a Linpack job description through the scheduler while the
    // actual kernel runs — both halves of the Table 5 story in one test
    use xcbc::hpl::{run_hpl, HplConfig};
    use xcbc::sched::{JobRequest, ResourceManager, TorqueServer};

    let result = run_hpl(&HplConfig {
        n: 128,
        nb: 32,
        threads: 2,
        seed: 3,
    });
    assert!(result.passed);

    let mut torque = TorqueServer::with_maui("littlefe", 5, 2);
    torque.submit(JobRequest::new(
        "hpl",
        5,
        2,
        result.seconds.max(1.0) * 10.0,
        result.seconds.max(0.5),
    ));
    torque.drain();
    assert_eq!(torque.metrics().jobs_finished, 1);
}
