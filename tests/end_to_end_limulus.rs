//! End-to-end: the Limulus HPC200 + XNIT overlay workflow (§5.2, §8),
//! including the scheduler swap and the update lifecycle.

use std::collections::BTreeMap;
use xcbc::cluster::specs::limulus_hpc200;
use xcbc::cluster::{PowerManager, PowerPolicy};
use xcbc::core::deploy::{deploy_xnit_overlay, limulus_factory_image};
use xcbc::core::xnit::{enable_xnit, XnitSetupMethod};
use xcbc::rpm::{RpmDb, TransactionSet};
use xcbc::yum::{UpdateNotifier, UpdatePolicy, Yum, YumConfig};

fn factory_cluster() -> BTreeMap<String, RpmDb> {
    limulus_hpc200()
        .nodes
        .iter()
        .map(|n| (n.hostname.clone(), limulus_factory_image()))
        .collect()
}

#[test]
fn overlay_reaches_compat_without_touching_factory_software() {
    let existing = factory_cluster();
    let before_names: Vec<String> = existing
        .values()
        .next()
        .unwrap()
        .names()
        .iter()
        .map(|s| s.to_string())
        .collect();

    let report = deploy_xnit_overlay(&existing, XnitSetupMethod::RepoRpm).unwrap();
    assert!(report.compat.is_compatible());
    assert!(report.preexisting_preserved);
    assert_eq!(report.nodes_reinstalled, 0);
    for db in report.node_dbs.values() {
        for name in &before_names {
            assert!(db.is_installed(name), "factory package {name} must survive");
        }
        assert!(db.verify().is_empty());
    }
}

#[test]
fn both_setup_methods_converge_to_same_package_set() {
    let a = deploy_xnit_overlay(&factory_cluster(), XnitSetupMethod::RepoRpm).unwrap();
    let b = deploy_xnit_overlay(&factory_cluster(), XnitSetupMethod::ManualRepoFile).unwrap();
    let names_a: Vec<_> = a.node_dbs["limulus"]
        .names()
        .iter()
        .map(|s| s.to_string())
        .collect();
    let names_b: Vec<_> = b.node_dbs["limulus"]
        .names()
        .iter()
        .map(|s| s.to_string())
        .collect();
    // method 1 additionally installs the xsede-release rpm
    let only_in_a: Vec<_> = names_a.iter().filter(|n| !names_b.contains(n)).collect();
    assert_eq!(only_in_a, vec!["xsede-release"]);
}

#[test]
fn scheduler_swap_in_one_transaction() {
    let mut db = limulus_factory_image();
    let mut yum = Yum::new(YumConfig::default());
    enable_xnit(&mut yum, &mut db, XnitSetupMethod::RepoRpm).unwrap();

    let torque = yum.solver().best_by_name("torque").unwrap().clone();
    let maui = yum.solver().best_by_name("maui").unwrap().clone();
    let mut tx = TransactionSet::new();
    tx.add_erase("slurm");
    tx.add_install(torque);
    tx.add_install(maui);
    assert!(tx.check(&db).is_empty(), "{:?}", tx.check(&db));
    tx.run(&mut db).unwrap();
    assert!(!db.is_installed("slurm"));
    assert!(db.is_installed("torque") && db.is_installed("maui"));
    assert!(
        db.is_installed("limulus-tools"),
        "factory tooling untouched"
    );
}

#[test]
fn update_lifecycle_staged_then_promoted() {
    let mut db = limulus_factory_image();
    let mut yum = Yum::new(YumConfig::default());
    enable_xnit(&mut yum, &mut db, XnitSetupMethod::RepoRpm).unwrap();
    yum.install(&mut db, &["gromacs"]).unwrap();

    // upstream publishes a new gromacs
    yum.repository_mut("xsede").unwrap().add_package(
        xcbc::rpm::PackageBuilder::new("gromacs", "4.6.7", "1.el6")
            .requires_simple("openmpi")
            .requires_simple("fftw")
            .requires_simple("gromacs-libs")
            .requires_simple("gromacs-common")
            .build(),
    );

    let mut test_db = db.clone();
    let notifier = UpdateNotifier::new(UpdatePolicy::StagedTest);
    let report = notifier
        .run_check(&mut yum, &mut db, Some(&mut test_db))
        .unwrap();
    assert_eq!(report.pending.len(), 1);
    // staged: the test node has the update, production does not yet
    assert_eq!(
        test_db.newest("gromacs").unwrap().package.evr().version,
        "4.6.7"
    );
    assert_eq!(db.newest("gromacs").unwrap().package.evr().version, "4.6.5");
    // after review, promote
    yum.update(&mut db, None).unwrap();
    assert_eq!(db.newest("gromacs").unwrap().package.evr().version, "4.6.7");
    assert!(db.verify().is_empty());
}

#[test]
fn power_managed_operation_saves_energy_with_full_service() {
    let cluster = limulus_hpc200();
    let demand: Vec<u32> = (0..24)
        .map(|h| if (8..18).contains(&h) { 2 } else { 0 })
        .collect();
    let always = PowerManager::new(PowerPolicy::AlwaysOn).simulate(&cluster, &demand, 24 * 30);
    let managed =
        PowerManager::new(PowerPolicy::on_demand(120.0)).simulate(&cluster, &demand, 24 * 30);
    assert!(
        managed.energy_kwh < always.energy_kwh * 0.9,
        "{managed:?} vs {always:?}"
    );
    assert!(managed.service_fraction > 0.95);
}

#[test]
fn mirror_failover_still_serves_metadata() {
    use rand::SeedableRng;
    let repo = xcbc::core::xnit_repository();
    let md = repo.metadata();
    assert!(md.package_count > 100);
    let list = xcbc::yum::MirrorList::new(vec![
        xcbc::yum::Mirror::new("http://dead.example.edu/xsederepo/", 100.0, 30.0)
            .with_failure_rate(1.0),
        xcbc::yum::Mirror::new("http://cb-repo.iu.xsede.org/xsederepo/", 80.0, 40.0),
    ]);
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let outcome = list
        .fetch_with(xcbc::yum::FetchOptions::new(md.total_size_bytes).sample_with(&mut rng))
        .outcome;
    assert!(outcome.succeeded());
    assert_eq!(outcome.failed.len(), 1);
}
