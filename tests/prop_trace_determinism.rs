//! Cross-crate determinism properties for the unified trace pipeline:
//! the sim clock, the rocks installer's span recorder, the fault
//! layer's post-mortem moments, and the core deployment report must
//! together replay byte-identically for a fixed fault-plan seed, and
//! the compatibility `Timeline` must stay a lossless view over the
//! recorded spans.

use proptest::prelude::*;
use xcbc::cluster::specs::littlefe_modified;
use xcbc::cluster::Timeline;
use xcbc::core::deploy::{deploy_from_scratch_resilient, DeploymentReport};
use xcbc::fault::{FaultPlan, InjectionPoint, InstallCheckpoint};
use xcbc::rocks::ResilienceConfig;
use xcbc::sim::{SimTime, TraceEvent};

fn run(seed: u64, boot_rate: f64, dhcp_rate: f64) -> Result<DeploymentReport, String> {
    let plan = FaultPlan::new(seed)
        .with_rate(InjectionPoint::NodeBoot, boot_rate)
        .with_rate(InjectionPoint::DhcpDiscover, dhcp_rate);
    deploy_from_scratch_resilient(
        &littlefe_modified(),
        &plan,
        &ResilienceConfig::default(),
        InstallCheckpoint::new(),
    )
    .map_err(|e| e.to_string())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Two deployments under the same fault plan yield byte-identical
    /// JSONL event logs and post-mortems.
    #[test]
    fn same_seed_replays_byte_identically(
        seed in 0u64..1000,
        boot_rate in 0.0f64..0.4,
        dhcp_rate in 0.0f64..0.4,
    ) {
        match (run(seed, boot_rate, dhcp_rate), run(seed, boot_rate, dhcp_rate)) {
            (Ok(a), Ok(b)) => {
                prop_assert!(!a.trace.is_empty());
                prop_assert_eq!(a.trace_jsonl(), b.trace_jsonl());
                prop_assert_eq!(
                    a.post_mortem.as_ref().unwrap().render(),
                    b.post_mortem.as_ref().unwrap().render()
                );
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "runs diverged: {a:?} vs {b:?}"),
        }
    }

    /// The compatibility `Timeline` is a pure view over the trace: its
    /// total equals the span-derived total exactly (both sides live on
    /// the same integer-nanosecond clock), and rebuilding it from the
    /// spans reproduces it phase for phase.
    #[test]
    fn timeline_total_equals_span_derived_total(
        seed in 0u64..1000,
        boot_rate in 0.0f64..0.3,
    ) {
        if let Ok(report) = run(seed, boot_rate, 0.1) {
            let span_end = report
                .trace
                .iter()
                .map(TraceEvent::end)
                .max()
                .unwrap_or(SimTime::ZERO);
            prop_assert_eq!(report.timeline.total_seconds(), span_end.as_secs_f64());
            prop_assert_eq!(&Timeline::from_spans(&report.trace), &report.timeline);
        }
    }
}
