//! Integration: the HTCondor roll's cycle scavenging alongside the batch
//! system, and the XSEDE-tools data path (Globus endpoint + GFFS) from a
//! freshly deployed campus cluster.

use xcbc::cluster::specs::littlefe_modified;
use xcbc::core::bridging::{setup_endpoint, transfer, Endpoint, GffsNamespace, TransferFile};
use xcbc::core::deploy::deploy_from_scratch;
use xcbc::sched::{ClusterSim, CondorPool, JobRequest, SchedPolicy};

#[test]
fn condor_scavenges_around_batch_demand() {
    // a LittleFe: 12 cores shared between torque (owner) and condor
    let mut condor = CondorPool::new(12);
    for i in 0..24 {
        condor.submit(&format!("param-sweep-{i}"), 600.0, true);
    }

    // mirror the batch system's demand with a simulator
    let mut batch = ClusterSim::new(6, 2, SchedPolicy::maui_default());
    batch.submit_at(0.0, JobRequest::new("mpi-burst", 6, 2, 1200.0, 1200.0));

    // hour 0: batch takes the whole machine, condor waits
    batch.run_until(0.0);
    condor.owner_claims(12);
    condor.advance(1200.0);
    assert_eq!(
        condor.completed(),
        0,
        "no scavenging while the owner computes"
    );
    assert_eq!(condor.goodput_s, 0.0);

    // batch job ends: condor gets the cores back and chews through work
    batch.run_to_completion();
    condor.owner_releases(12);
    condor.advance(1200.0);
    assert_eq!(condor.completed(), 24, "two waves of 12 across 1200s");
    assert_eq!(condor.badput_s, 0.0, "checkpointable jobs lose nothing");
}

#[test]
fn checkpointless_scavenging_pays_badput_under_churn() {
    let mut condor = CondorPool::new(4);
    for i in 0..4 {
        condor.submit(&format!("fragile-{i}"), 1000.0, false);
    }
    // owner churns: claim/release every 300s — jobs never finish
    for _ in 0..4 {
        condor.advance(300.0);
        condor.owner_claims(4);
        condor.advance(50.0);
        condor.owner_releases(4);
    }
    assert_eq!(condor.completed(), 0);
    assert!(
        condor.badput_s >= 4.0 * 300.0,
        "lost work accumulates: {}",
        condor.badput_s
    );
}

#[test]
fn deployed_cluster_can_stand_up_globus_and_move_data() {
    // full path: bare metal -> XCBC -> Globus endpoint -> GFFS -> transfer
    let report = deploy_from_scratch(&littlefe_modified()).unwrap();
    let head_db = &report.node_dbs["littlefe"];
    let campus = setup_endpoint("campus#littlefe", head_db, 80.0).unwrap();

    let stampede = Endpoint {
        name: "xsede#stampede".to_string(),
        wan_mb_s: 1000.0,
    };
    let mut gffs = GffsNamespace::new();
    gffs.export("/xsede/campus/iu/littlefe", &campus.name, "/export/data");

    let (ep, local) = gffs
        .resolve("/xsede/campus/iu/littlefe/gromacs-run/traj.xtc")
        .unwrap();
    assert_eq!(ep, "campus#littlefe");
    assert_eq!(local, "/export/data/gromacs-run/traj.xtc");

    let files = vec![
        TransferFile {
            path: local,
            bytes: 3 << 30,
        },
        TransferFile {
            path: "/export/data/topol.tpr".to_string(),
            bytes: 10 << 20,
        },
    ];
    let xfer = transfer(&campus, &stampede, &files, &["/export/data/topol.tpr"]);
    assert!(xfer.verified);
    assert_eq!(xfer.files, 2);
    assert_eq!(xfer.retried.len(), 1);
    // 3082 MB + 10 MB retry at 80 MB/s ≈ 38.7 s
    assert!((xfer.seconds - (3.0 * 1024.0 + 10.0 + 10.0) / 80.0).abs() < 1e-9);
}

#[test]
fn endpoint_setup_fails_without_xnit_software() {
    use xcbc::core::deploy::limulus_factory_image;
    // factory Limulus: no globus yet — the error points at XNIT
    let err = setup_endpoint("campus#limulus", &limulus_factory_image(), 80.0).unwrap_err();
    assert!(err.to_string().contains("install it from XNIT"));
}
