//! Determinism properties of the causal trace analyser: analysis is a
//! pure function of the recorded events, so it must be byte-stable
//! across re-runs, across fleet worker-thread counts, and across
//! checkpoint-resume stitched traces — and the critical path must
//! telescope exactly to the trace's span makespan on every seed.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;
use xcbc::cluster::specs::{limulus_hpc200, littlefe_modified};
use xcbc::core::campaign::{run_campaign, CampaignConfig, CampaignError, CanaryAction};
use xcbc::core::deploy::limulus_factory_image;
use xcbc::core::fleet::{Fleet, FleetSite};
use xcbc::core::scenario::littlefe_day_one;
use xcbc::core::{xnit_repository, XnitSetupMethod};
use xcbc::fault::{CampaignCheckpoint, FaultPlan, FaultWindow, InjectionPoint};
use xcbc::rpm::RpmDb;
use xcbc::sched::{JobRequest, ResourceManager, Slurm};
use xcbc::sim::{analyze, TraceEvent};
use xcbc::yum::{SolveCache, SolveRequest, YumConfig};

/// Every rendering of one analysis, concatenated — the widest possible
/// byte-equality net.
fn full_render(events: &[TraceEvent]) -> String {
    let a = analyze(events);
    format!(
        "{}\n{}\n{}\n{}",
        a.render(),
        a.flame(),
        a.folded(),
        a.top(10)
    )
}

fn limulus_dbs() -> BTreeMap<String, RpmDb> {
    limulus_hpc200()
        .nodes
        .iter()
        .map(|n| (n.hostname.clone(), limulus_factory_image()))
        .collect()
}

fn build_fleet(threads: usize, overlays: usize, seed: u64) -> Fleet {
    let mut fleet = Fleet::new().with_threads(threads);
    for i in 0..overlays {
        fleet = fleet.add_site(FleetSite::overlay(
            format!("overlay-{i}"),
            limulus_dbs(),
            XnitSetupMethod::RepoRpm,
        ));
    }
    fleet.add_site(FleetSite::from_scratch(
        "scratch-0",
        littlefe_modified(),
        seed,
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Re-analysing the same day-one trace is byte-identical, and the
    /// critical path telescopes exactly to the span makespan.
    #[test]
    fn day_one_analysis_is_stable_and_telescopes(seed in 0u64..500) {
        let run = littlefe_day_one(&FaultPlan::new(seed)).expect("clean day-one run");
        let a = analyze(&run.events);
        let b = analyze(&run.events);
        prop_assert_eq!(full_render(&run.events), full_render(&run.events));
        prop_assert_eq!(&a, &b);
        prop_assert!(a.spans > 0);
        prop_assert!(!a.path.segments.is_empty());
        prop_assert_eq!(a.path.total(), a.makespan, "critical path must telescope");
    }

    /// Per-site analysis is invariant under the fleet worker-thread
    /// count: the trace is, so the analysis derived from it must be.
    #[test]
    fn fleet_site_analysis_invariant_under_thread_count(
        seed in 0u64..500,
        overlays in 1usize..3,
    ) {
        let serial = build_fleet(1, overlays, seed).deploy();
        let parallel = build_fleet(8, overlays, seed).deploy();
        for (s, p) in serial.sites.iter().zip(parallel.sites.iter()) {
            prop_assert_eq!(&s.name, &p.name);
            let (Ok(sr), Ok(pr)) = (&s.result, &p.result) else {
                prop_assert!(false, "fault-free site deploy failed");
                unreachable!()
            };
            prop_assert_eq!(full_render(&sr.trace), full_render(&pr.trace));
            let a = analyze(&sr.trace);
            prop_assert_eq!(a.path.total(), a.makespan);
        }
    }
}

/// Killing a campaign at wave 1 and resuming from the round-tripped
/// checkpoint yields a stitched trace whose analysis is byte-identical
/// to the uninterrupted run's — the analyser can't tell a resumed run
/// from an unbroken one.
#[test]
fn campaign_resume_stitched_analysis_matches_uninterrupted() {
    let target = xcbc::core::campaign::CampaignTarget {
        repos: vec![xnit_repository()],
        config: YumConfig::default(),
        request: SolveRequest::install(["gromacs"]),
    };
    let cfg = CampaignConfig {
        canary: 1,
        waves: 3,
        threads: 1,
        drain_grace_s: 90.0,
        on_canary_failure: CanaryAction::Halt,
        retry_budget: 3,
        mutation: None,
    };
    let world = || {
        let dbs: BTreeMap<String, RpmDb> = (0..6)
            .map(|i| (format!("node-{i:02}"), limulus_factory_image()))
            .collect();
        let mut rm = Slurm::new("batch", 6, 4);
        rm.sim_mut()
            .submit(JobRequest::new("wrf-0", 1, 2, 40_000.0, 900.0));
        rm.advance_to(5.0);
        (dbs, rm)
    };

    let (mut dbs, mut rm) = world();
    let cache = Arc::new(SolveCache::new());
    let full = run_campaign(
        &target,
        &mut dbs,
        &mut rm,
        &FaultPlan::new(7),
        &cache,
        &cfg,
        None,
    )
    .expect("uninterrupted campaign completes");

    let killed_plan = FaultPlan::new(7).fail(
        InjectionPoint::CampaignDrain,
        Some("wave-1"),
        FaultWindow::Nth(0),
    );
    let (mut dbs, mut rm) = world();
    let cache = Arc::new(SolveCache::new());
    let mut stitched: Vec<TraceEvent> = Vec::new();
    match run_campaign(&target, &mut dbs, &mut rm, &killed_plan, &cache, &cfg, None) {
        Err(CampaignError::Aborted {
            checkpoint, trace, ..
        }) => {
            stitched.extend(trace);
            let reloaded =
                CampaignCheckpoint::parse(&checkpoint.to_text()).expect("checkpoint round-trips");
            let resumed = run_campaign(
                &target,
                &mut dbs,
                &mut rm,
                &killed_plan,
                &cache,
                &cfg,
                Some(&reloaded),
            )
            .expect("resume completes");
            stitched.extend(resumed.trace);
        }
        other => panic!("expected wave-1 abort, got {other:?}"),
    }
    assert_eq!(full_render(&full.trace), full_render(&stitched));
    let a = analyze(&stitched);
    assert_eq!(a.path.total(), a.makespan);
}
