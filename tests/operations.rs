//! Integration tests for the operational extensions: failure injection,
//! reservations, job arrays, package groups, metadata caching, update
//! rolls, cluster-fork, module collections, and the community pipeline.

use xcbc::cluster::specs::littlefe_modified;
use xcbc::cluster::{sample_failures, DegradedCluster, FailedComponent, Failure};
use xcbc::core::community::{RequestPipeline, RequesterGroup};
use xcbc::rocks::{build_update_roll, cluster_fork, Appliance, Distribution, RocksDb};
use xcbc::sched::{submit_array, ClusterSim, JobRequest, SchedPolicy};
use xcbc::yum::{group_install, MetadataCache, PackageGroupDef, Yum, YumConfig};

#[test]
fn maintenance_window_and_job_array_interact() {
    // a LittleFe with a maintenance reservation over the whole machine,
    // plus a 20-task parameter sweep: every task lands outside the window
    let mut sim = ClusterSim::new(6, 2, SchedPolicy::EasyBackfill);
    sim.add_reservation("kernel updates", (0..6).collect(), 500.0, 1000.0);
    let array = submit_array(
        &mut sim,
        &JobRequest::new("sweep", 1, 1, 300.0, 250.0),
        0..=19,
    );
    sim.run_to_completion();
    assert!(array.all_finished(&sim));
    for id in &array.member_ids {
        let job = sim.job(*id).unwrap();
        if let xcbc::sched::JobState::Completed { start_s, end_s } = job.state {
            let walltime_end = start_s + job.request.walltime_s;
            assert!(
                walltime_end <= 500.0 || start_s >= 1000.0,
                "job {} walltime window [{start_s}, {walltime_end}] overlaps the reservation",
                job.request.name
            );
            assert!(end_s <= 500.0 || end_s >= 1000.0);
        } else {
            panic!("unfinished array member");
        }
    }
}

#[test]
fn degraded_cluster_still_schedules_on_survivors() {
    let cluster = littlefe_modified();
    let degraded = DegradedCluster::new(
        cluster,
        vec![Failure {
            hostname: "compute-0-1".into(),
            component: FailedComponent::Cpu,
        }],
    );
    assert!(!degraded.can_run_full_linpack());
    let usable = degraded.usable_nodes().len();
    assert_eq!(usable, 5);
    // schedule on what's left
    let mut sim = ClusterSim::new(usable, 2, SchedPolicy::maui_default());
    sim.submit_at(
        0.0,
        JobRequest::new("reduced-hpl", usable as u32, 2, 100.0, 90.0),
    );
    sim.run_to_completion();
    assert_eq!(sim.completed().len(), 1);
}

#[test]
fn fleet_failure_survey_is_plausible() {
    // a year of operation at consumer-part rates: a handful of failures
    // per cluster, not zero, not everything
    let failures = sample_failures(&littlefe_modified(), 2e-5, 8760, 42);
    assert!(failures.len() < 12, "{failures:?}");
}

#[test]
fn xnit_group_install_on_top_of_catalog() {
    let mut yum = Yum::new(YumConfig::default());
    yum.add_repository(xcbc::core::xnit_repository());
    let groups = vec![PackageGroupDef::new("xsede-bio", "Bioinformatics")
        .mandatory_pkg("trinity")
        .mandatory_pkg("ncbi-blast")
        .default_pkg("bwa")
        .default_pkg("samtools")
        .optional_pkg("gatk")];
    let mut db = xcbc::rpm::RpmDb::new();
    group_install(&mut yum, &mut db, &groups, "xsede-bio", false).unwrap();
    for p in [
        "trinity",
        "ncbi-blast",
        "bwa",
        "samtools",
        "bowtie",
        "java-1.7.0-openjdk",
    ] {
        assert!(db.is_installed(p), "{p} (bowtie/java via deps)");
    }
    assert!(!db.is_installed("gatk"));
    assert!(db.verify().is_empty());
}

#[test]
fn metadata_cache_shields_mirror_until_expiry() {
    let repo = xcbc::core::xnit_repository();
    let mut cache = MetadataCache::with_default_expiry();
    cache.get(&repo, 0.0);
    for minute in 1..90 {
        let (_, fetched) = cache.get(&repo, minute as f64 * 60.0);
        assert!(!fetched, "minute {minute}");
    }
    let (_, fetched) = cache.get(&repo, 90.0 * 60.0);
    assert!(fetched);
    assert_eq!(cache.fetches, 2);
}

#[test]
fn rocks_update_roll_path_end_to_end() {
    // build the distribution from the standard rolls + XSEDE roll, then
    // produce an update roll from a newer XNIT snapshot
    let mut distro = Distribution::new();
    for roll in xcbc::rocks::standard_rolls() {
        distro.add_roll_and_rebuild(&roll);
    }
    distro.add_roll_and_rebuild(&xcbc::core::roll::xsede_roll());
    let gromacs_before = distro.version_of("gromacs").unwrap().clone();

    // upstream XNIT publishes newer gromacs
    let newer = vec![xcbc::rpm::PackageBuilder::new("gromacs", "4.6.7", "1.el6").build()];
    let update_roll = build_update_roll(&distro, &newer, "2015.06");
    assert_eq!(update_roll.packages.len(), 1);
    distro.add_roll_and_rebuild(&update_roll);
    assert!(distro.version_of("gromacs").unwrap() > &gromacs_before);
}

#[test]
fn cluster_fork_verifies_post_install_state() {
    let mut db = RocksDb::new("littlefe");
    db.add_frontend("ff", 2).unwrap();
    for i in 0..5 {
        db.add_host(Appliance::Compute, 0, &format!("aa:{i:02x}"), 2)
            .unwrap();
    }
    // one node missed the reinstall
    let report = cluster_fork(&db, "rpm -q gromacs", |host, _| {
        if host == "compute-0-4" {
            (1, "package gromacs is not installed\n".into())
        } else {
            (0, "gromacs-4.6.5-1.el6.x86_64\n".into())
        }
    });
    assert_eq!(report.failed_hosts(), vec!["compute-0-4"]);
}

#[test]
fn module_collection_portability_between_xcbc_clusters() {
    use xcbc::core::deploy::deploy_from_scratch;
    use xcbc::modules::{generate_from_rpmdb, CollectionStore, ModuleSystem};

    let report = deploy_from_scratch(&littlefe_modified()).unwrap();
    let mut campus = ModuleSystem::new();
    for m in generate_from_rpmdb(&report.node_dbs["compute-0-0"]) {
        campus.add(m);
    }
    campus.load("gromacs").unwrap();
    campus.load("valgrind").unwrap();
    let mut store = CollectionStore::new();
    store.save("thesis", &campus);

    // an XSEDE cluster built the same way restores the same environment
    let mut xsede = ModuleSystem::new();
    for m in generate_from_rpmdb(&report.node_dbs["compute-0-1"]) {
        xsede.add(m);
    }
    let loaded = store.restore("thesis", &mut xsede).unwrap();
    assert_eq!(loaded.len(), 2);
    assert_eq!(
        xsede.env(),
        campus.env(),
        "identical environments on both clusters"
    );
}

#[test]
fn community_pipeline_feeds_site_installs() {
    let mut repo = xcbc::core::xnit_repository();
    let mut pipeline = RequestPipeline::new();
    pipeline.submit(
        "openfoam",
        "2.3.0",
        RequesterGroup::CampusChampion,
        "Marshall",
        true,
        true,
    );
    pipeline.triage(&repo);
    pipeline.ship_release(&mut repo);

    let mut yum = Yum::new(YumConfig::default());
    yum.add_repository(repo);
    let mut db = xcbc::rpm::RpmDb::new();
    yum.install(&mut db, &["openfoam"]).unwrap();
    assert!(db.is_installed("openfoam"));
}
