//! Determinism properties for rolling update campaigns: the campaign
//! trace is byte-identical at any worker-thread count, and killing a
//! campaign between waves (`campaign.drain`) then resuming from the
//! persisted checkpoint converges to the same final per-node databases
//! with a stitched trace byte-identical to the uninterrupted run.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;
use xcbc::core::campaign::{
    run_campaign, CampaignConfig, CampaignError, CampaignReport, CampaignTarget, CanaryAction,
};
use xcbc::core::deploy::limulus_factory_image;
use xcbc::core::xnit_repository;
use xcbc::fault::{CampaignCheckpoint, FaultPlan, FaultWindow, InjectionPoint};
use xcbc::rpm::RpmDb;
use xcbc::sched::{JobRequest, ResourceManager, Slurm};
use xcbc::yum::{SolveCache, SolveRequest, YumConfig};

fn target() -> CampaignTarget {
    CampaignTarget {
        repos: vec![xnit_repository()],
        config: YumConfig::default(),
        request: SolveRequest::install(["gromacs", "paraview"]),
    }
}

fn world(nodes: usize, jobs: usize) -> (BTreeMap<String, RpmDb>, Slurm) {
    let dbs: BTreeMap<String, RpmDb> = (0..nodes)
        .map(|i| (format!("node-{i:02}"), limulus_factory_image()))
        .collect();
    let mut rm = Slurm::new("batch", nodes, 4);
    for j in 0..jobs {
        rm.sim_mut().submit(JobRequest::new(
            &format!("job-{j}"),
            1,
            2,
            40_000.0,
            2_000.0 + 250.0 * j as f64,
        ));
    }
    rm.advance_to(5.0);
    (dbs, rm)
}

fn base_plan(seed: u64, scriptlet_faults: u64) -> FaultPlan {
    let plan = FaultPlan::new(seed);
    if scriptlet_faults > 0 {
        plan.fail(
            InjectionPoint::RpmScriptlet,
            None,
            FaultWindow::FirstN(scriptlet_faults),
        )
    } else {
        plan
    }
}

fn config(canary: usize, waves: usize, threads: usize) -> CampaignConfig {
    CampaignConfig {
        canary,
        waves,
        threads,
        drain_grace_s: 90.0,
        on_canary_failure: CanaryAction::Halt,
        retry_budget: 3,
        mutation: None,
    }
}

/// Run one uninterrupted campaign, returning `(report, final dbs)`.
fn run_once(
    nodes: usize,
    jobs: usize,
    plan: &FaultPlan,
    cfg: &CampaignConfig,
) -> (CampaignReport, BTreeMap<String, RpmDb>) {
    let (mut dbs, mut rm) = world(nodes, jobs);
    let cache = Arc::new(SolveCache::new());
    let report = run_campaign(&target(), &mut dbs, &mut rm, plan, &cache, cfg, None)
        .expect("no drain fault scheduled: campaign must complete");
    (report, dbs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The campaign trace (and the final databases) are byte-identical
    /// at any worker-thread count.
    #[test]
    fn trace_is_byte_identical_at_any_thread_count(
        seed in 0u64..1000,
        nodes in 3usize..=8,
        canary in 1usize..=2,
        waves in 2usize..=4,
        jobs in 0usize..=3,
        scriptlet_faults in 0u64..=2,
    ) {
        let plan = base_plan(seed, scriptlet_faults);
        let (base_report, base_dbs) = run_once(nodes, jobs, &plan, &config(canary, waves, 1));
        prop_assert!(!base_report.trace.is_empty());
        for threads in [2usize, 7] {
            let (report, dbs) = run_once(nodes, jobs, &plan, &config(canary, waves, threads));
            prop_assert_eq!(
                base_report.trace_jsonl(),
                report.trace_jsonl(),
                "trace diverged between 1 and {} threads",
                threads
            );
            prop_assert_eq!(&base_dbs, &dbs);
        }
    }

    /// Killing the campaign before wave `k` and resuming from the
    /// round-tripped checkpoint yields the same final databases, and the
    /// pre-abort trace plus the resumed trace is byte-identical to the
    /// uninterrupted run's trace.
    #[test]
    fn kill_at_wave_k_then_resume_matches_uninterrupted(
        seed in 0u64..1000,
        nodes in 3usize..=8,
        canary in 1usize..=2,
        waves in 2usize..=4,
        jobs in 0usize..=3,
        scriptlet_faults in 0u64..=2,
        kill_pick in 0usize..16,
        threads in 1usize..=2,
    ) {
        let plan = base_plan(seed, scriptlet_faults);
        let cfg = config(canary, waves, threads);
        let (full_report, full_dbs) = run_once(nodes, jobs, &plan, &cfg);

        // Pick a kill wave among the waves the campaign actually has
        // (trailing empty waves are dropped by the planner).
        let actual_waves = 1 + (nodes - canary.min(nodes)).min(waves - 1);
        let kill = 1 + kill_pick % (actual_waves - 1).max(1);
        let killed_plan = plan.clone().fail(
            InjectionPoint::CampaignDrain,
            Some(&format!("wave-{kill}")),
            FaultWindow::Nth(0),
        );

        let (mut dbs, mut rm) = world(nodes, jobs);
        let cache = Arc::new(SolveCache::new());
        let mut stitched = String::new();
        match run_campaign(&target(), &mut dbs, &mut rm, &killed_plan, &cache, &cfg, None) {
            Ok(report) => {
                // The campaign ended (halt/rollback/fewer waves) before
                // reaching the kill point: it must equal the full run.
                stitched.push_str(&report.trace_jsonl());
            }
            Err(CampaignError::Aborted { wave, checkpoint, trace }) => {
                prop_assert_eq!(wave, kill);
                for ev in &trace {
                    stitched.push_str(&ev.to_jsonl());
                    stitched.push('\n');
                }
                // Persist + reload the checkpoint, as an operator would.
                let reloaded = CampaignCheckpoint::parse(&checkpoint.to_text())
                    .expect("checkpoint text round-trips");
                let resumed = run_campaign(
                    &target(),
                    &mut dbs,
                    &mut rm,
                    &killed_plan,
                    &cache,
                    &cfg,
                    Some(&reloaded),
                )
                .expect("one Nth(0) drain fault fires once: resume completes");
                prop_assert_eq!(resumed.resumed_from_wave, kill);
                stitched.push_str(&resumed.trace_jsonl());
            }
            Err(e) => prop_assert!(false, "campaign failed to run: {e}"),
        }
        prop_assert_eq!(full_report.trace_jsonl(), stitched);
        prop_assert_eq!(&full_dbs, &dbs);
    }
}
