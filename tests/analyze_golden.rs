//! Golden-file check of the seeded LittleFe trace analysis.
//!
//! `xcbc trace analyze littlefe --faults` must be byte-stable across
//! refactors: the critical-path report and the flame view are the
//! contract the docs' worked transcripts and the CI gate are built
//! against. This test replays the default (seed 42) day-one scenario
//! through the analyser and diffs the combined render (critical-path
//! table + flame lanes + folded stacks) against
//! `tests/golden/littlefe.analyze`.
//!
//! When an intentional change shifts the output, regenerate with:
//!
//! ```text
//! XCBC_BLESS=1 cargo test --test analyze_golden
//! ```

use xcbc::core::scenario::littlefe_day_one;
use xcbc::fault::FaultPlan;
use xcbc::sim::analyze;

const GOLDEN_PATH: &str = "tests/golden/littlefe.analyze";

#[test]
fn littlefe_trace_analysis_matches_golden() {
    let run = littlefe_day_one(&FaultPlan::new(42)).expect("clean day-one run");
    let analysis = analyze(&run.events);
    let actual = format!(
        "{}\n{}\n{}",
        analysis.render(),
        analysis.flame(),
        analysis.folded()
    );

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(GOLDEN_PATH);
    if std::env::var_os("XCBC_BLESS").is_some() {
        std::fs::write(&path, &actual).expect("bless golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "read {}: {e} (run with XCBC_BLESS=1 to create)",
            GOLDEN_PATH
        )
    });
    if actual != expected {
        let first_diff = actual
            .lines()
            .zip(expected.lines())
            .enumerate()
            .find(|(_, (a, e))| a != e);
        panic!(
            "analysis drifted from {GOLDEN_PATH} (first differing line: {:?}); \
             if intentional, regenerate with XCBC_BLESS=1 cargo test --test analyze_golden",
            first_diff
        );
    }
}
