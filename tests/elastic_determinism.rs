//! Determinism properties for the elastic membership engine: the
//! elastic trace is byte-identical at any worker-thread count, and
//! killing the engine between ticks (`elastic.scale-up`) then resuming
//! from the round-tripped checkpoint converges to the same final
//! membership ledger with a stitched trace byte-identical to the
//! uninterrupted run.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;
use xcbc::core::deploy::limulus_factory_image;
use xcbc::core::elastic::{
    run_elastic, BurstSite, ElasticConfig, ElasticError, ElasticReport, ElasticState, ElasticWorld,
    MemberState,
};
use xcbc::core::XnitSetupMethod;
use xcbc::fault::{ElasticCheckpoint, FaultPlan, FaultWindow, InjectionPoint};
use xcbc::sched::{JobRequest, TorqueServer};
use xcbc::yum::SolveCache;

/// A bursty world: an opening wave of single-node jobs (so queue
/// pressure actually drives scale-ups), a few long stragglers, and up
/// to two cloud sites joining mid-run (the second leaves again).
fn world(ticks: usize, wave: usize, stragglers: usize, sites: usize) -> ElasticWorld {
    let mut world = ElasticWorld::default();
    for i in 0..wave {
        world.workload.push((
            0,
            JobRequest::new(
                &format!("wave-{i}"),
                1,
                2,
                40_000.0,
                900.0 + 50.0 * i as f64,
            ),
        ));
    }
    for i in 0..stragglers {
        world.workload.push((
            1 + i % (ticks / 2).max(1),
            JobRequest::new(&format!("straggler-{i}"), 1, 1, 40_000.0, 2600.0),
        ));
    }
    world.workload.sort_by_key(|(t, _)| *t);
    for s in 0..sites {
        let existing: BTreeMap<_, _> = (0..2)
            .map(|n| (format!("cloud-{s}-n{n}"), limulus_factory_image()))
            .collect();
        let method = if s % 2 == 0 {
            XnitSetupMethod::RepoRpm
        } else {
            XnitSetupMethod::ManualRepoFile
        };
        let mut site = BurstSite::new(&format!("cloud-{s}"), 1 + s, existing, method);
        if s == 1 {
            site = site.leaving_at(1 + s + 3);
        }
        world.burst_sites.push(site);
    }
    world
}

fn config(min: usize, extra: usize, ticks: usize, threads: usize) -> ElasticConfig {
    ElasticConfig {
        min_nodes: min,
        max_nodes: min + extra,
        ticks,
        threads,
        ..ElasticConfig::default()
    }
}

/// One uninterrupted run, returning the report and the final ledger.
fn run_once(
    world: &ElasticWorld,
    plan: &FaultPlan,
    cfg: &ElasticConfig,
) -> (ElasticReport, Vec<(String, MemberState)>) {
    let mut state = ElasticState::new(cfg);
    let mut rm = TorqueServer::with_maui("elastic-head", cfg.min_nodes, 2);
    let cache = Arc::new(SolveCache::new());
    let report = run_elastic(world, &mut state, &mut rm, plan, &cache, cfg, None)
        .expect("no scale-up fault scheduled: run must complete");
    let ledger = state
        .membership
        .members()
        .map(|(n, s)| (n.to_string(), s))
        .collect();
    (report, ledger)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The elastic trace (and the decision stream) are byte-identical
    /// at any worker-thread count.
    #[test]
    fn trace_is_byte_identical_at_any_thread_count(
        seed in 0u64..1000,
        min in 1usize..=2,
        extra in 2usize..=4,
        ticks in 8usize..=14,
        wave in 4usize..=8,
        stragglers in 0usize..=3,
        sites in 0usize..=2,
    ) {
        let w = world(ticks, wave, stragglers, sites);
        let plan = FaultPlan::new(seed);
        let (base_report, base_ledger) = run_once(&w, &plan, &config(min, extra, ticks, 1));
        prop_assert!(!base_report.trace.is_empty());
        for threads in [2usize, 7] {
            let (report, ledger) = run_once(&w, &plan, &config(min, extra, ticks, threads));
            prop_assert_eq!(
                base_report.trace_jsonl(),
                report.trace_jsonl(),
                "trace diverged between 1 and {} threads",
                threads
            );
            prop_assert_eq!(&base_report.ticks, &report.ticks);
            prop_assert_eq!(&base_ledger, &ledger);
        }
    }

    /// Killing the engine before tick `k` and resuming from the
    /// round-tripped checkpoint yields the same final ledger, and the
    /// pre-abort trace plus the resumed trace is byte-identical to the
    /// uninterrupted run's trace. The fault key matches by substring,
    /// so one spec can abort several (settle) ticks — every abort
    /// resumes from its own persisted checkpoint.
    #[test]
    fn kill_between_ticks_then_resume_matches_uninterrupted(
        seed in 0u64..1000,
        min in 1usize..=2,
        extra in 2usize..=4,
        ticks in 8usize..=14,
        wave in 4usize..=8,
        stragglers in 0usize..=3,
        sites in 0usize..=2,
        kill_pick in 0usize..16,
        threads in 1usize..=2,
    ) {
        let w = world(ticks, wave, stragglers, sites);
        let plan = FaultPlan::new(seed);
        let cfg = config(min, extra, ticks, threads);
        let (full_report, full_ledger) = run_once(&w, &plan, &cfg);

        let kill = 1 + kill_pick % (ticks - 1);
        let killed_plan = plan.clone().fail(
            InjectionPoint::ScaleUp,
            Some(&format!("tick-{kill}")),
            FaultWindow::Nth(0),
        );

        let mut state = ElasticState::new(&cfg);
        let mut rm = TorqueServer::with_maui("elastic-head", cfg.min_nodes, 2);
        let cache = Arc::new(SolveCache::new());
        let mut checkpoint_text: Option<String> = None;
        let mut stitched = String::new();
        let mut aborts = 0usize;
        let mut final_report = None;
        // each resume completes at least one tick; horizon + settle
        // bounds the total, and the cap only guards a livelock bug
        for _ in 0..=ticks + cfg.max_settle_ticks {
            let resume_cp = checkpoint_text
                .as_deref()
                .map(|t| ElasticCheckpoint::parse(t).expect("checkpoint text round-trips"));
            match run_elastic(&w, &mut state, &mut rm, &killed_plan, &cache, &cfg, resume_cp.as_ref()) {
                Ok(report) => {
                    stitched.push_str(&report.trace_jsonl());
                    final_report = Some(report);
                    break;
                }
                Err(ElasticError::Aborted { tick, checkpoint, trace, .. }) => {
                    if aborts == 0 {
                        prop_assert_eq!(tick, kill);
                    }
                    aborts += 1;
                    for ev in &trace {
                        stitched.push_str(&ev.to_jsonl());
                        stitched.push('\n');
                    }
                    checkpoint_text = Some(checkpoint.to_text());
                }
                Err(e) => prop_assert!(false, "elastic run failed: {e}"),
            }
        }
        let final_report = final_report.expect("kill/resume loop must converge");
        prop_assert!(aborts >= 1, "the tick-{} fault never fired", kill);
        prop_assert_eq!(full_report.trace_jsonl(), stitched);
        prop_assert_eq!(&full_report.verdict, &final_report.verdict);
        let ledger: Vec<(String, MemberState)> = state
            .membership
            .members()
            .map(|(n, s)| (n.to_string(), s))
            .collect();
        prop_assert_eq!(&full_ledger, &ledger);
    }
}
