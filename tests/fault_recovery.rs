//! End-to-end fault-recovery tests across the whole stack: a deployment
//! hit by a power loss mid-install checkpoints, resumes without
//! reinstalling committed nodes, and converges to the exact package
//! state of a fault-free deployment. Determinism is the contract: the
//! same fault-plan seed must reproduce the same deployment byte for
//! byte.

use proptest::prelude::*;
use xcbc::cluster::specs::littlefe_modified;
use xcbc::core::deploy::{deploy_from_scratch, deploy_from_scratch_resilient};
use xcbc::fault::{FaultPlan, FaultWindow, InjectionPoint, InstallCheckpoint};
use xcbc::rocks::{InstallErrorKind, ResilienceConfig};

#[test]
fn power_loss_then_resume_matches_fault_free_deploy() {
    let cluster = littlefe_modified();
    let fault_free = deploy_from_scratch(&cluster).unwrap();

    // Pull the plug right after compute-0-2 commits its packages.
    let plan = FaultPlan::new(2015).fail(
        InjectionPoint::PowerLoss,
        Some("compute-0-2"),
        FaultWindow::Nth(0),
    );

    let err = deploy_from_scratch_resilient(
        &cluster,
        &plan,
        &ResilienceConfig::default(),
        InstallCheckpoint::new(),
    )
    .unwrap_err();
    assert!(matches!(err.kind, InstallErrorKind::PowerLoss));
    assert_eq!(err.progress.aborted_on.as_deref(), Some("compute-0-2"));
    let committed = err.progress.completed.clone();
    assert!(
        committed.iter().any(|n| n == "compute-0-2"),
        "the node that triggered the outage had already committed: {committed:?}"
    );
    assert!(
        committed.len() < cluster.nodes.len(),
        "outage struck mid-install"
    );

    // The checkpoint survives serialization, like a file on the frontend
    // disk would.
    let on_disk = err.progress.checkpoint.to_text();
    let restored = InstallCheckpoint::parse(&on_disk).unwrap();

    // Resume under the SAME plan: committed nodes are skipped, so the
    // power-loss fault keyed to compute-0-2 never re-fires.
    let report =
        deploy_from_scratch_resilient(&cluster, &plan, &ResilienceConfig::default(), restored)
            .unwrap();

    // Converged to exactly the fault-free package state...
    assert_eq!(report.node_dbs, fault_free.node_dbs);
    assert!(report.compat.is_compatible());
    assert!(report.degraded.is_none());

    // ...without reinstalling anything that had committed: no install
    // phases for those hosts appear in the resumed timeline.
    for host in &committed {
        assert!(
            !report
                .timeline
                .phases()
                .iter()
                .any(|p| p.label.starts_with(&format!("{host}:"))),
            "{host} was reinstalled on resume"
        );
    }
    let pm = report.post_mortem.as_ref().unwrap();
    for host in &committed {
        assert!(
            pm.resumed_nodes.contains(host),
            "{host} missing from post-mortem resume list"
        );
    }
    assert!(pm.render().contains("resumed from checkpoint"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Identical fault-plan seeds yield byte-identical deployment
    /// reports, even with probabilistic fault rates in play.
    #[test]
    fn identical_seeds_yield_byte_identical_reports(seed in 0u64..1000) {
        let run = || {
            let plan = FaultPlan::new(seed)
                .with_rate(InjectionPoint::DhcpDiscover, 0.3)
                .with_rate(InjectionPoint::NodeBoot, 0.15);
            let report = deploy_from_scratch_resilient(
                &littlefe_modified(),
                &plan,
                &ResilienceConfig::default(),
                InstallCheckpoint::new(),
            )
            .expect("rate faults quarantine, they never abort");
            (
                report.render(),
                report.timeline.render(),
                report.checkpoint.as_ref().unwrap().to_text(),
                report.node_dbs.clone(),
            )
        };
        prop_assert_eq!(run(), run());
    }
}
