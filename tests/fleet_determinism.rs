//! Fleet-level determinism properties: parallelism must be an
//! implementation detail. A site deployed inside an N-thread fleet must
//! produce the same per-site trace JSONL as the same site deployed on a
//! single worker — and the same fleet run twice must replay
//! byte-identically, merged report included.

use proptest::prelude::*;
use std::collections::BTreeMap;
use xcbc::cluster::specs::{limulus_hpc200, littlefe_modified};
use xcbc::core::deploy::limulus_factory_image;
use xcbc::core::fleet::{Fleet, FleetReport, FleetSite, FleetTelemetry};
use xcbc::core::XnitSetupMethod;
use xcbc::fault::{FaultPlan, InjectionPoint};
use xcbc::rpm::RpmDb;

fn limulus_dbs() -> BTreeMap<String, RpmDb> {
    limulus_hpc200()
        .nodes
        .iter()
        .map(|n| (n.hostname.clone(), limulus_factory_image()))
        .collect()
}

/// A fleet mixing both deployment paths: `overlays` XNIT sites plus one
/// from-scratch site under a seeded fault plan.
fn build_fleet(threads: usize, overlays: usize, seed: u64, boot_rate: f64) -> Fleet {
    let mut fleet = Fleet::new().with_threads(threads);
    for i in 0..overlays {
        let method = if i % 2 == 0 {
            XnitSetupMethod::RepoRpm
        } else {
            XnitSetupMethod::ManualRepoFile
        };
        fleet = fleet.add_site(FleetSite::overlay(
            format!("overlay-{i}"),
            limulus_dbs(),
            method,
        ));
    }
    let plan = FaultPlan::new(seed).with_rate(InjectionPoint::NodeBoot, boot_rate);
    fleet.add_site(FleetSite::from_scratch_with_faults(
        "scratch-0",
        littlefe_modified(),
        plan,
    ))
}

fn site_traces(report: &FleetReport) -> Vec<(String, Option<String>)> {
    report
        .sites
        .iter()
        .map(|o| (o.name.clone(), report.site_trace_jsonl(&o.name)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Per-site traces are invariant under the worker thread count:
    /// deploying on 1 thread and on 8 threads yields byte-identical
    /// JSONL for every site, and the merged fleet log matches too.
    #[test]
    fn site_traces_invariant_under_thread_count(
        seed in 0u64..500,
        overlays in 1usize..4,
        boot_rate in 0.0f64..0.3,
    ) {
        let serial = build_fleet(1, overlays, seed, boot_rate).deploy();
        let parallel = build_fleet(8, overlays, seed, boot_rate).deploy();

        prop_assert_eq!(serial.sites.len(), overlays + 1);
        prop_assert_eq!(site_traces(&serial), site_traces(&parallel));
        prop_assert_eq!(serial.merged_jsonl(), parallel.merged_jsonl());
    }

    /// The telemetry rollup is derived purely from the per-site traces,
    /// so the fleet-wide Prometheus and Ganglia XML expositions must be
    /// byte-identical at any worker thread count.
    #[test]
    fn telemetry_exposition_invariant_under_thread_count(
        seed in 0u64..500,
        overlays in 1usize..4,
        boot_rate in 0.0f64..0.3,
    ) {
        let serial = FleetTelemetry::from_report(&build_fleet(1, overlays, seed, boot_rate).deploy());
        let parallel = FleetTelemetry::from_report(&build_fleet(4, overlays, seed, boot_rate).deploy());

        prop_assert_eq!(serial.prometheus(), parallel.prometheus());
        prop_assert_eq!(serial.ganglia_xml(), parallel.ganglia_xml());
    }

    /// The same fleet deployed twice at the same thread count replays
    /// byte-identically, per-site success pattern included.
    #[test]
    fn same_fleet_replays_byte_identically(
        seed in 0u64..500,
        threads in 1usize..6,
        boot_rate in 0.0f64..0.4,
    ) {
        let a = build_fleet(threads, 2, seed, boot_rate).deploy();
        let b = build_fleet(threads, 2, seed, boot_rate).deploy();

        let ok_a: Vec<bool> = a.sites.iter().map(|o| o.succeeded()).collect();
        let ok_b: Vec<bool> = b.sites.iter().map(|o| o.succeeded()).collect();
        prop_assert_eq!(ok_a, ok_b);
        prop_assert_eq!(a.merged_jsonl(), b.merged_jsonl());
    }
}

/// Non-proptest smoke check kept here so a plain `cargo test
/// fleet_determinism` exercises the invariant even with proptest cases
/// dialed down: identical overlay sites must share solve-cache entries.
#[test]
fn overlay_fleet_reports_cache_hits() {
    let fleet = build_fleet(4, 3, 7, 0.0);
    let report = fleet.deploy();
    assert!(report.all_succeeded(), "fleet failed:\n{}", report.render());
    assert!(
        report.cache.hits > 0,
        "identical overlay sites should hit the shared solve cache: {:?}",
        report.cache
    );
}
