//! End-to-end: the paper's primary workflow — a modified LittleFe built
//! from scratch with Rocks + the XSEDE roll — exercised across every
//! crate in the workspace.

use xcbc::cluster::specs::littlefe_modified;
use xcbc::cluster::thermal::LITTLEFE_BAY_CLEARANCE_MM;
use xcbc::core::compat::check_compatibility;
use xcbc::core::deploy::deploy_from_scratch;
use xcbc::core::roll::xsede_roll;
use xcbc::modules::{generate_from_rpmdb, ModuleSystem};
use xcbc::rocks::{standard_rolls, Appliance, ClusterInstall, KickstartGraph};
use xcbc::sched::{JobRequest, ResourceManager, TorqueServer};

#[test]
fn hardware_passes_all_design_constraints() {
    let c = littlefe_modified();
    assert!(c.power_budget_ok());
    for n in &c.nodes {
        assert!(xcbc::cluster::check_node_thermals(n, LITTLEFE_BAY_CLEARANCE_MM).is_empty());
        assert!(
            !n.is_diskless(),
            "every node carries the Crucial mSATA drive"
        );
    }
    let (ok, _) = c.rocks_installable();
    assert!(ok);
}

#[test]
fn full_install_produces_consistent_nodes() {
    let mut rolls = standard_rolls();
    rolls.push(xsede_roll());
    let report = ClusterInstall::new(littlefe_modified(), rolls)
        .run()
        .unwrap();

    assert_eq!(report.node_dbs.len(), 6);
    for (host, db) in &report.node_dbs {
        assert!(db.verify().is_empty(), "{host} rpmdb inconsistent");
        assert!(db.is_installed("gromacs"), "{host}");
        assert!(db.is_installed("maui"), "{host}");
        assert!(db.len() > 120, "{host} only has {} packages", db.len());
    }
    // the rocks database knows every node with valid IPs
    assert_eq!(report.rocks_db.host_count(), 6);
    for h in report.rocks_db.hosts() {
        assert!(h.ip.starts_with("10.1.255."));
    }
}

#[test]
fn installed_cluster_is_xsede_compatible_and_modular() {
    let report = deploy_from_scratch(&littlefe_modified()).unwrap();
    for db in report.node_dbs.values() {
        let compat = check_compatibility(db);
        assert!(compat.is_compatible(), "{}", compat.render());
    }
    // environment modules can be generated and loaded for the software
    let db = &report.node_dbs["compute-0-0"];
    let mut system = ModuleSystem::new();
    let generated = generate_from_rpmdb(db);
    assert!(
        generated.len() >= 20,
        "only {} modulefiles",
        generated.len()
    );
    for m in generated {
        system.add(m);
    }
    system.load("gromacs").unwrap();
    assert!(system.env().get("PATH").unwrap().contains("/usr/bin"));
}

#[test]
fn graph_traversal_matches_install_contents() {
    let mut graph = KickstartGraph::standard();
    graph
        .merge_roll_nodes(
            &xsede_roll().graph_nodes,
            &[Appliance::Frontend, Appliance::Compute],
        )
        .unwrap();
    let compute_pkgs = graph.packages_for(Appliance::Compute).unwrap();

    let mut rolls = standard_rolls();
    rolls.push(xsede_roll());
    let report = ClusterInstall::new(littlefe_modified(), rolls)
        .run()
        .unwrap();
    let db = &report.node_dbs["compute-0-0"];
    for pkg in &compute_pkgs {
        assert!(db.is_installed(pkg), "graph says compute gets {pkg}");
    }
}

#[test]
fn cluster_runs_a_realistic_job_mix() {
    use xcbc::sched::{SimMetrics, WorkloadSpec};
    let mut torque = TorqueServer::with_maui("littlefe", 5, 2);
    for (t, req) in WorkloadSpec::teaching_lab().generate(99, 5, 2, 60) {
        torque.advance_to(t);
        torque.submit(req);
    }
    torque.drain();
    let m: SimMetrics = torque.metrics();
    assert_eq!(m.jobs_finished, 60);
    assert!(m.utilization > 0.0 && m.utilization <= 1.0);
}

#[test]
fn single_mpi_job_uses_whole_machine() {
    let mut torque = TorqueServer::with_maui("littlefe", 5, 2);
    let id = torque.qsub(JobRequest::new("hpl", 5, 2, 3600.0, 1800.0));
    assert_eq!(id, "1.littlefe");
    torque.drain();
    let m = torque.metrics();
    assert_eq!(m.jobs_finished, 1);
    assert!(
        (m.utilization - 1.0).abs() < 1e-9,
        "sole full-machine job: {m:?}"
    );
}
